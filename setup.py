"""Setuptools shim.

All metadata lives in pyproject.toml. This file exists so the package
can be installed on machines without the ``wheel`` package (no network):
``python setup.py develop`` side-steps the PEP-517 wheel build that
``pip install -e .`` needs.
"""

from setuptools import setup

setup()
