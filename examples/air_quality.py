"""Air-quality analytics on a budget: the paper's OpenAQ scenario.

An analyst wants several dashboards over a large measurement corpus:
per-country pollutant averages, year-over-year change of black carbon,
and a CUBE rollup — all refreshed often enough that full scans hurt.
One CVOPT sample, optimized jointly for all three queries, serves every
dashboard.

Run:  python examples/air_quality.py
"""

import numpy as np

from repro import CVOptSampler, execute_sql, generate_openaq
from repro.aqp import compare_results
from repro.baselines import UniformSampler
from repro.core.spec import specs_from_sql
from repro.queries import get_query

DASHBOARDS = ["AQ3", "AQ1", "AQ7"]  # averages, bc change, cube rollup
RATE = 0.02


def main() -> None:
    table = generate_openaq(num_rows=200_000, seed=7)
    print(f"corpus: {table.num_rows} rows")

    # Jointly optimize one sample for all three dashboards: the specs of
    # each query are merged, the finest stratification is the union of
    # their group-by attributes (paper Section 4).
    specs, derived = [], []
    for name in DASHBOARDS:
        s, d = specs_from_sql(get_query(name).sql)
        specs.extend(s)
        derived.extend(d)
    sampler = CVOptSampler(specs, derived=derived)
    sample = sampler.sample_rate(table, RATE, seed=1)
    print(
        f"one sample for {len(DASHBOARDS)} dashboards: {sample.num_rows} "
        f"rows over {sample.allocation.num_strata} strata "
        f"(stratified by {', '.join(sample.allocation.by)})"
    )

    uniform = UniformSampler().sample_rate(table, RATE, seed=1)

    print(f"\n{'dashboard':<10} {'groups':>7} {'CVOPT err':>10} {'Uniform err':>12}")
    for name in DASHBOARDS:
        query = get_query(name)
        exact = execute_sql(query.sql, {"OpenAQ": table})
        approx = sample.answer(query.sql, "OpenAQ")
        baseline = uniform.answer(query.sql, "OpenAQ")
        err = compare_results(exact, approx)
        err_uniform = compare_results(exact, baseline)
        print(
            f"{name:<10} {exact.num_rows:>7} "
            f"{err.mean_error():>9.2%} {err_uniform.mean_error():>11.2%}"
        )

    # Drill-down: which countries saw black carbon worsen the most?
    print("\nblack-carbon increase by country (from the sample):")
    aq1 = sample.answer(get_query("AQ1").sql, "OpenAQ")
    rows = sorted(
        aq1.iter_rows(), key=lambda r: -abs(r["avg_incre"])
    )[:5]
    for row in rows:
        direction = "worse" if row["avg_incre"] > 0 else "better"
        print(
            f"  {row['country']}: {row['avg_incre']:+.4f} ug/m3 "
            f"({direction}), high-level days {row['cnt_incre']:+.0f}"
        )

    # The sample also supports ad-hoc slices it was never built for.
    adhoc = """
    SELECT parameter, AVG(value) avg_value, COUNT(*) n
    FROM OpenAQ
    WHERE latitude > 0 AND YEAR(local_time) = 2018
    GROUP BY parameter
    ORDER BY parameter
    """
    print("\nad-hoc slice (northern hemisphere, 2018):")
    exact = execute_sql(adhoc, {"OpenAQ": table})
    approx = sample.answer(adhoc, "OpenAQ")
    err = compare_results(exact, approx)
    print(f"  mean error vs full scan: {err.mean_error():.2%}")
    scan_rows = table.num_rows
    sample_rows = sample.num_rows
    print(
        f"  rows touched: {sample_rows} vs {scan_rows} "
        f"({scan_rows / sample_rows:.0f}x fewer)"
    )


if __name__ == "__main__":
    main()
