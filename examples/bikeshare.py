"""Bike-share operations: per-station estimates with error bars.

The Bikes scenario from the paper: station-level statistics over a
skewed network (a few huge downtown stations, a long tail of small
ones). Uniform sampling starves the tail; CVOPT covers it, and the
estimation API reports a confidence interval next to each approximate
answer — what an operations dashboard would actually display.

Run:  python examples/bikeshare.py
"""

import numpy as np

from repro import CVOptInfSampler, CVOptSampler, execute_sql, generate_bikes
from repro.aqp import compare_results, estimate_groups
from repro.queries import get_query

RATE = 0.05


def main() -> None:
    table = generate_bikes(num_rows=150_000, num_stations=200, seed=11)
    print(f"trips: {table.num_rows}, stations: 200")

    query = get_query("B1")  # AVG(age), AVG(trip_duration) per station
    sampler = CVOptSampler.from_sql(query.sql)
    sample = sampler.sample_rate(table, RATE, seed=3)
    print(f"sample: {sample}")

    # --- station dashboard with confidence intervals -----------------
    estimates = estimate_groups(
        sample, ["from_station_id"], "trip_duration", "AVG",
        predicate="trip_duration > 0",
    )
    print("\nbusiest stations, estimated mean trip duration (95% CI):")
    by_support = sorted(
        estimates.values(), key=lambda e: -e.supporting_rows
    )
    for est in by_support[:6]:
        lo, hi = est.confidence_interval()
        print(
            f"  station {est.key[0]:>4}: {est.value:7.0f}s "
            f"[{lo:7.0f}, {hi:7.0f}]  (cv {est.cv:.3f}, "
            f"{est.supporting_rows} sampled trips)"
        )

    # --- how good are the answers? -----------------------------------
    exact = execute_sql(query.sql, {"Bikes": table})
    approx = sample.answer(query.sql, "Bikes")
    errors = compare_results(exact, approx)
    print(
        f"\nB1 against ground truth: mean error {errors.mean_error():.2%}, "
        f"max {errors.max_error():.2%} over {exact.num_rows} stations"
    )

    # --- worst-case-sensitive variant ---------------------------------
    # If the dashboard's SLO is on the WORST station, build the sample
    # with CVOPT-INF (minimizes the maximum CV, paper Section 5).
    b2 = get_query("B2")
    linf = CVOptInfSampler.from_sql(b2.sql).sample_rate(table, RATE, seed=3)
    l2 = CVOptSampler.from_sql(b2.sql).sample_rate(table, RATE, seed=3)
    exact2 = execute_sql(b2.sql, {"Bikes": table})
    for label, s in (("l2 (CVOPT)", l2), ("l-inf (CVOPT-INF)", linf)):
        err = compare_results(exact2, s.answer(b2.sql, "Bikes"))
        print(
            f"  {label:<18} median {err.median_error():.2%}  "
            f"max {err.max_error():.2%}"
        )

    # --- year-over-year rollup from the same sample -------------------
    rollup = """
    SELECT year, COUNT(*) trips, AVG(trip_duration) avg_duration
    FROM Bikes GROUP BY year ORDER BY year
    """
    print("\nyearly rollup (reusing the B1 sample):")
    approx = sample.answer(rollup, "Bikes")
    for row in approx.iter_rows():
        print(
            f"  {row['year']}: ~{row['trips']:,.0f} trips, "
            f"mean duration {row['avg_duration']:.0f}s"
        )


if __name__ == "__main__":
    main()
