"""Workload-driven sample tuning (paper Section 4.3).

A data warehouse knows its scheduled queries and how often each runs.
CVOPT turns that workload into per-result weights: the frequency of
each *aggregation group* — (aggregation column, group assignment),
predicates applied — becomes its weight, so the sample spends budget
where the workload actually looks.

This example first reproduces the paper's worked Student example
(Tables 1-3), then tunes a sample for a skewed OpenAQ workload and
shows the hot queries getting more accurate at the cold ones' expense.

Run:  python examples/workload_tuning.py
"""

import numpy as np

from repro import (
    CVOptSampler,
    Workload,
    execute_sql,
    generate_openaq,
    specs_from_workload,
    student_table,
    student_workload,
)
from repro.aqp import compare_results
from repro.workload import derive_aggregation_groups


def student_example() -> None:
    print("=== Paper Tables 1-3: the Student workload ===")
    table = student_table()
    workload = student_workload()
    groups = derive_aggregation_groups(workload, table)
    print(f"{workload.total_queries} queries -> {len(groups)} aggregation groups:")
    for group in sorted(
        groups, key=lambda g: (-g.frequency, g.agg_column, g.assignment)
    ):
        print(f"  {group.describe():<28} frequency {group.frequency}")
    print(
        "(the text's derivation gives 20 / 35 / 10 — the paper's "
        "Table 3 prints 25 for the first set, inconsistent with its "
        "own Table 2)"
    )


def warehouse_example() -> None:
    print("\n=== Workload-tuned OpenAQ sample ===")
    table = generate_openaq(num_rows=200_000, seed=7)

    hot = (
        "SELECT parameter, AVG(value) a FROM OpenAQ "
        "WHERE parameter = 'pm25' GROUP BY parameter"
    )
    warm = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
    cold = (
        "SELECT country, parameter, AVG(value) a FROM OpenAQ "
        "GROUP BY country, parameter"
    )
    workload = Workload()
    workload.add(hot, repeats=60, name="hot: pm25 watchboard")
    workload.add(warm, repeats=10, name="warm: country overview")
    workload.add(cold, repeats=1, name="cold: full matrix")

    specs, derived = specs_from_workload(workload, table)
    tuned = CVOptSampler(specs, derived=derived).sample_rate(
        table, 0.01, seed=5
    )
    untuned = CVOptSampler.from_sql(cold).sample_rate(table, 0.01, seed=5)

    print(f"{'query':<24} {'tuned err':>10} {'untuned err':>12}")
    for name, sql in (("hot", hot), ("warm", warm), ("cold", cold)):
        exact = execute_sql(sql, {"OpenAQ": table})
        tuned_err = compare_results(
            exact, tuned.answer(sql, "OpenAQ")
        ).mean_error()
        untuned_err = compare_results(
            exact, untuned.answer(sql, "OpenAQ")
        ).mean_error()
        print(f"{name:<24} {tuned_err:>9.2%} {untuned_err:>11.2%}")

    print(
        "\nthe tuned sample trades accuracy on the cold full matrix for "
        "the queries the warehouse actually runs."
    )


if __name__ == "__main__":
    student_example()
    warehouse_example()
