"""Accuracy planning: size the sample before drawing it.

The CV formula that drives CVOPT's allocation also predicts accuracy
ahead of time. This example answers the operational questions a
warehouse owner actually asks:

  1. "How many rows do I need so every country's estimate is within
     ~5%?"  -> required_budget / plan_sample_rate
  2. "At my current 1% sample, which groups should I *not* trust?"
     -> predict_group_cvs + chebyshev_error_bound

Run:  python examples/accuracy_planning.py
"""

import numpy as np

from repro import CVOptSampler, execute_sql, generate_openaq
from repro.aqp import (
    chebyshev_error_bound,
    compare_results,
    plan_sample_rate,
    required_budget,
)
from repro.aqp.planning import predicted_cvs_for_allocation
from repro.engine.statistics import collect_strata_statistics

GROUP_BY = ("country",)
COLUMN = "value"
SQL = "SELECT country, AVG(value) average FROM OpenAQ GROUP BY country"


def main() -> None:
    table = generate_openaq(num_rows=200_000, seed=7)
    stats = collect_strata_statistics(table, GROUP_BY, [COLUMN])
    print(
        f"data: {table.num_rows} rows, {stats.num_strata} countries, "
        f"data CVs from {np.nanmin(stats.stats_for(COLUMN).cv()):.2f} "
        f"to {np.nanmax(stats.stats_for(COLUMN).cv()):.2f}"
    )

    # --- 1. size the sample for a target --------------------------------
    print(f"\n{'target max CV':>13} {'rows needed':>12} {'rate':>8}")
    for target in (0.10, 0.05, 0.02, 0.01):
        budget = required_budget(
            table, group_by=GROUP_BY, column=COLUMN, target=target
        )
        print(f"{target:>13.0%} {budget:>12,} {budget / table.num_rows:>8.2%}")

    # --- 2. draw at the 5% plan and verify ------------------------------
    target = 0.05
    rate = plan_sample_rate(table, GROUP_BY, COLUMN, target=target)
    sampler = CVOptSampler.from_sql(SQL)
    sample = sampler.sample_rate(table, rate, seed=0)
    exact = execute_sql(SQL, {"OpenAQ": table})
    errors = compare_results(exact, sample.answer(SQL, "OpenAQ"))
    print(
        f"\nplanned for max CV {target:.0%} -> drew {sample.num_rows} rows; "
        f"measured mean error {errors.mean_error():.2%}, "
        f"max {errors.max_error():.2%}"
    )

    # --- 3. trust report for an existing small sample -------------------
    small = sampler.sample_rate(table, 0.002, seed=0)
    cvs = predicted_cvs_for_allocation(small.allocation, stats, COLUMN)
    print(
        f"\nat a 0.2% sample ({small.num_rows} rows), the least "
        "trustworthy countries (95% Chebyshev bound on relative error):"
    )
    order = np.argsort(-cvs)
    for idx in order[:5]:
        key = small.allocation.keys[idx][0]
        bound = chebyshev_error_bound(cvs[idx], confidence=0.95)
        print(
            f"  {key}: predicted CV {cvs[idx]:.1%} -> "
            f"error <= {bound:.0%} w.p. 95% "
            f"({small.allocation.sizes[idx]} sampled rows)"
        )


if __name__ == "__main__":
    main()
