"""One-pass sampling over a stream (paper Section 8, future work).

Measurements arrive one record at a time; there is no second pass. The
StreamingCVOptSampler keeps per-stratum statistics and reservoirs,
re-balances the budget toward high-CV strata on a doubling schedule
(shrink-only, so within-stratum uniformity is preserved), and
materializes a query-ready stratified sample at any point.

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro import CVOptSampler, execute_sql, generate_openaq
from repro.aqp import compare_results
from repro.core.spec import GroupByQuerySpec
from repro.core.streaming import StreamingCVOptSampler

QUERY = """
SELECT country, AVG(value) average
FROM OpenAQ
GROUP BY country
"""
BUDGET = 2000


def main() -> None:
    table = generate_openaq(num_rows=120_000, seed=7)
    # Shuffle into arrival order (a stream has no convenient clustering).
    rng = np.random.default_rng(0)
    stream = table.take(rng.permutation(table.num_rows))

    # Track two aggregate columns: "value" (the primary, driving the
    # re-balance) and "latitude" — the sampler keeps exact per-stratum
    # moments for both, so either AVG(value) or AVG(latitude) contracts
    # can be predicted from the finished sample.
    sampler = StreamingCVOptSampler(
        group_by=("country",),
        value_columns=("value", "latitude"),
        budget=BUDGET,
        pilot_rows=10_000,
        seed=1,
    )

    exact = execute_sql(QUERY, {"OpenAQ": table})
    checkpoints = {30_000, 60_000, 120_000}
    print(f"streaming {stream.num_rows} records, budget {BUDGET} rows\n")
    print(f"{'records seen':>12} {'strata':>7} {'retained':>9} {'mean err':>9}")
    for i, record in enumerate(stream.iter_rows(), start=1):
        sampler.observe(record)
        if i in checkpoints:
            snapshot = sampler.finalize()
            errors = compare_results(
                exact, snapshot.answer(QUERY, "OpenAQ")
            )
            print(
                f"{i:>12} {snapshot.allocation.num_strata:>7} "
                f"{snapshot.num_rows:>9} {errors.mean_error():>8.2%}"
            )

    final = sampler.finalize()

    # Compare with the two-pass (offline) CVOPT at the same budget.
    offline = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country",))
    ).sample(table, BUDGET, seed=1)
    for label, sample in (("one-pass stream", final), ("two-pass CVOPT", offline)):
        errors = compare_results(exact, sample.answer(QUERY, "OpenAQ"))
        print(
            f"\n{label}: {sample.num_rows} rows, "
            f"mean error {errors.mean_error():.2%}, "
            f"max {errors.max_error():.2%}"
        )

    stats = final.allocation.stats
    print(
        "\nper-column moments tracked by the stream "
        f"({', '.join(stats.columns)}):"
    )
    for column, summary in stats.column_summaries().items():
        print(
            f"  {column}: {summary['populated_strata']} strata, "
            f"mean data CV {summary['mean_data_cv']:.3f}"
        )

    print(
        "\nthe stream sample answers any dialect query, like its "
        "offline counterpart:"
    )
    adhoc = (
        "SELECT country, COUNT(*) n FROM OpenAQ "
        "WHERE parameter = 'pm25' GROUP BY country ORDER BY n DESC LIMIT 3"
    )
    for row in final.answer(adhoc, "OpenAQ").iter_rows():
        print(f"  {row['country']}: ~{row['n']:,.0f} pm25 measurements")


if __name__ == "__main__":
    main()
