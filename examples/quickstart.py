"""Quickstart: build a CVOPT sample and answer a group-by query.

Run:  python examples/quickstart.py
"""

from repro import CVOptSampler, execute_sql, generate_openaq
from repro.aqp import compare_results

QUERY = """
SELECT country, parameter, AVG(value) average
FROM OpenAQ
GROUP BY country, parameter
"""


def main() -> None:
    # 1. A table. Here: the synthetic OpenAQ-like dataset (200k rows of
    #    air-quality measurements; heavily skewed group sizes).
    table = generate_openaq(num_rows=200_000, seed=7)
    print(f"data: {table.num_rows} rows, columns {table.column_names}")

    # 2. Build a sampler optimized for the query (group-by attributes
    #    and aggregation columns are read straight from the SQL), and
    #    draw a 1% stratified sample. Two passes over the data: one for
    #    statistics, one for the draw.
    sampler = CVOptSampler.from_sql(QUERY)
    sample = sampler.sample_rate(table, rate=0.01, seed=0)
    print(f"sample: {sample}")

    # 3. Answer the query approximately from the sample...
    approx = sample.answer(QUERY, table_name="OpenAQ")

    # 4. ...and compare with the exact answer.
    exact = execute_sql(QUERY, {"OpenAQ": table})
    errors = compare_results(exact, approx)
    print(
        f"groups: {exact.num_rows}   "
        f"mean relative error: {errors.mean_error():.2%}   "
        f"max: {errors.max_error():.2%}"
    )

    # 5. The same sample answers queries it was never optimized for:
    #    new predicates, coarser groupings.
    reused = """
    SELECT country, AVG(value) average
    FROM OpenAQ WHERE latitude > 0
    GROUP BY country
    """
    approx2 = sample.answer(reused, table_name="OpenAQ")
    exact2 = execute_sql(reused, {"OpenAQ": table})
    errors2 = compare_results(exact2, approx2)
    print(
        f"reused for a new query -> mean error {errors2.mean_error():.2%}"
    )

    # 6. Peek at a few rows of the approximate answer.
    print("\ncountry  parameter  average (approx)")
    for row in list(approx.iter_rows())[:8]:
        print(
            f"{row['country']:7s}  {row['parameter']:9s}  "
            f"{row['average']:.4f}"
        )


if __name__ == "__main__":
    main()
