"""CUBE analytics from one sample (paper Section 4.1 / Figure 5).

`GROUP BY a, b WITH CUBE` asks for every grouping set at once — the
finest cells, both one-attribute rollups, and the grand total. CVOPT
optimizes a single stratified sample *jointly* for all grouping sets
(one spec per subset, finest stratification, the general beta formula),
so one sample serves the whole cube.

Run:  python examples/cube_analysis.py
"""

from repro import CVOptSampler, execute_sql, generate_bikes
from repro.aqp import compare_results
from repro.baselines import CongressSampler, UniformSampler
from repro.core.spec import specs_from_sql
from repro.engine.groupby import ALL_MARKER
from repro.queries import get_query

RATE = 0.05


def main() -> None:
    table = generate_bikes(num_rows=150_000, num_stations=150, seed=11)
    query = get_query("B3")  # SUM(trip_duration) CUBE station x year
    print("cube query:", " ".join(query.sql.split()))

    exact = execute_sql(query.sql, {"Bikes": table})
    print(f"\nexact cube: {exact.num_rows} result rows")

    specs, derived = specs_from_sql(query.sql)
    print(
        "grouping sets optimized jointly:",
        [spec.group_by for spec in specs],
    )

    samplers = {
        "Uniform": UniformSampler(),
        "CS (scaled congress)": CongressSampler(specs, derived=derived),
        "CVOPT": CVOptSampler(specs, derived=derived),
    }
    samples = {}
    print(f"\n{'method':<22} {'mean err':>9} {'max err':>9} {'missing':>8}")
    for label, sampler in samplers.items():
        sample = sampler.sample_rate(table, RATE, seed=2)
        samples[label] = sample
        errors = compare_results(
            exact, sample.answer(query.sql, "Bikes")
        )
        print(
            f"{label:<22} {errors.mean_error():>8.2%} "
            f"{errors.max_error():>8.2%} {errors.missing_groups:>8}"
        )

    # Slice the estimated cube three ways, from the CVOPT sample only.
    approx = samples["CVOPT"].answer(query.sql, "Bikes")
    rows = list(approx.iter_rows())

    grand = [
        r for r in rows
        if r["from_station_id"] == ALL_MARKER and r["year"] == ALL_MARKER
    ][0]
    print(f"\ngrand total ride-seconds (estimated): {grand['total']:,.0f}")

    print("\nby year (stations rolled up):")
    for r in sorted(
        (
            r for r in rows
            if r["from_station_id"] == ALL_MARKER and r["year"] != ALL_MARKER
        ),
        key=lambda r: r["year"],
    ):
        print(f"  {r['year']}: {r['total']:,.0f}")

    print("\ntop stations (years rolled up):")
    stations = [
        r for r in rows
        if r["year"] == ALL_MARKER and r["from_station_id"] != ALL_MARKER
    ]
    for r in sorted(stations, key=lambda r: -r["total"])[:5]:
        print(f"  station {r['from_station_id']}: {r['total']:,.0f}")

    # Internal consistency: the estimated rollups add up.
    per_year = sum(
        r["total"] for r in rows
        if r["from_station_id"] == ALL_MARKER and r["year"] != ALL_MARKER
    )
    print(
        f"\nconsistency: sum of yearly rollups {per_year:,.0f} "
        f"== grand total {grand['total']:,.0f}"
    )


if __name__ == "__main__":
    main()
