import numpy as np
import pytest

from repro.core.spec import (
    AggregateSpec,
    DerivedColumn,
    GroupByQuerySpec,
    apply_derived_columns,
    specs_from_sql,
)
from repro.engine.expr import BinOp, ColumnRef, Literal, Star
from repro.engine.table import Table


class TestAggregateSpec:
    def test_defaults(self):
        agg = AggregateSpec("gpa")
        assert agg.weight == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            AggregateSpec("gpa", weight=-1)


class TestGroupByQuerySpec:
    def test_strings_coerced_to_aggregate_specs(self):
        spec = GroupByQuerySpec(group_by=("a",), aggregates=("x", "y"))
        assert all(isinstance(a, AggregateSpec) for a in spec.aggregates)
        assert spec.agg_columns == ("x", "y")

    def test_requires_aggregates(self):
        with pytest.raises(ValueError):
            GroupByQuerySpec(group_by=("a",), aggregates=())

    def test_single_constructor(self):
        spec = GroupByQuerySpec.single("gpa", by=("major", "year"))
        assert spec.group_by == ("major", "year")
        assert spec.agg_columns == ("gpa",)

    def test_effective_weight_layers(self):
        agg = AggregateSpec("x", weight=2.0)
        spec = GroupByQuerySpec(
            group_by=("g",),
            aggregates=(agg,),
            weight=3.0,
            group_weights={("a",): 5.0},
            cell_weights={(("a",), "x"): 7.0},
        )
        assert spec.effective_weight(("a",), agg) == pytest.approx(2 * 3 * 5 * 7)
        assert spec.effective_weight(("b",), agg) == pytest.approx(6.0)

    def test_reweighted(self):
        spec = GroupByQuerySpec(group_by=("g",), aggregates=("x", "y"))
        new = spec.reweighted([0.1, 0.9])
        assert new.aggregates[0].weight == 0.1
        assert new.aggregates[1].weight == 0.9
        assert spec.aggregates[0].weight == 1.0  # original untouched

    def test_reweighted_length_check(self):
        spec = GroupByQuerySpec(group_by=("g",), aggregates=("x",))
        with pytest.raises(ValueError):
            spec.reweighted([1.0, 2.0])


class TestApplyDerivedColumns:
    def test_expression_column(self, simple_table):
        derived = [
            DerivedColumn("big", BinOp(">", ColumnRef("x"), Literal(5)))
        ]
        out = apply_derived_columns(simple_table, derived)
        assert list(out["big"]) == [1.0, 1.0, 0.0, 0.0, 0.0, 1.0]

    def test_star_column_is_ones(self, simple_table):
        out = apply_derived_columns(
            simple_table, [DerivedColumn("one", Star())]
        )
        assert list(out["one"]) == [1.0] * 6

    def test_idempotent(self, simple_table):
        derived = [DerivedColumn("one", Star())]
        once = apply_derived_columns(simple_table, derived)
        twice = apply_derived_columns(once, derived)
        assert twice.column_names == once.column_names


class TestSpecsFromSql:
    def test_sasg(self):
        specs, derived = specs_from_sql(
            "SELECT major, AVG(gpa) FROM S GROUP BY major"
        )
        assert len(specs) == 1
        assert specs[0].group_by == ("major",)
        assert specs[0].agg_columns == ("gpa",)
        assert derived == []

    def test_masg_multiple_aggregates(self):
        specs, _ = specs_from_sql(
            "SELECT g, AVG(a) x, SUM(b) y FROM S GROUP BY g"
        )
        assert specs[0].agg_columns == ("a", "b")

    def test_count_star_derives_constant(self):
        specs, derived = specs_from_sql(
            "SELECT g, SUM(v) a, COUNT(*) b FROM S GROUP BY g"
        )
        assert specs[0].agg_columns == ("v", "__const_one")
        assert any(d.name == "__const_one" for d in derived)

    def test_count_if_derives_indicator(self):
        specs, derived = specs_from_sql(
            "SELECT g, COUNT_IF(v > 0.04) c FROM S GROUP BY g"
        )
        assert len(derived) == 1
        assert specs[0].agg_columns == (derived[0].name,)

    def test_duplicate_agg_columns_merged(self):
        specs, _ = specs_from_sql(
            "SELECT g, AVG(v), SUM(v) FROM S GROUP BY g"
        )
        assert specs[0].agg_columns == ("v",)

    def test_cte_query_yields_spec_per_block(self):
        sql = """
        WITH a AS (SELECT g, AVG(v) m FROM S GROUP BY g),
             b AS (SELECT g, AVG(v) m FROM S GROUP BY g)
        SELECT g, a.m - b.m FROM a JOIN b ON a.g = b.g
        """
        specs, _ = specs_from_sql(sql)
        assert len(specs) == 2
        assert all(s.group_by == ("g",) for s in specs)

    def test_subquery_group_keys(self):
        sql = """
        SELECT AVG(value), country, CONCAT(month, '_', year)
        FROM (SELECT value, MONTH(t) AS month, YEAR(t) AS year, country
              FROM S WHERE p = 'co')
        GROUP BY country, month, year
        """
        specs, _ = specs_from_sql(sql)
        assert specs[0].group_by == ("country", "month", "year")

    def test_cube_expands_grouping_sets(self):
        specs, _ = specs_from_sql(
            "SELECT a, b, SUM(v) FROM S GROUP BY a, b WITH CUBE"
        )
        groupings = {s.group_by for s in specs}
        assert groupings == {("a", "b"), ("a",), ("b",), ()}

    def test_non_aggregate_rejected(self):
        with pytest.raises(ValueError):
            specs_from_sql("SELECT a FROM S")

    def test_predicates_ignored(self):
        specs, _ = specs_from_sql(
            "SELECT g, AVG(v) FROM S WHERE v > 100 GROUP BY g"
        )
        assert len(specs) == 1  # predicate does not change the spec

    def test_literal_aggregate_argument_skipped(self):
        specs, derived = specs_from_sql(
            "SELECT g, AVG(v) m, SUM(1) s FROM S GROUP BY g"
        )
        assert specs[0].agg_columns == ("v",)
