import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.sample import WEIGHT_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.core.streaming import StreamingCVOptSampler
from repro.datasets.synthetic import make_grouped_table


@pytest.fixture()
def table():
    return make_grouped_table(
        sizes=[6000, 3000, 1000],
        means=[100.0, 50.0, 10.0],
        stds=[10.0, 20.0, 4.0],
        seed=4,
        exact_moments=True,
    )


def shuffled(table, seed=0):
    rng = np.random.default_rng(seed)
    return table.take(rng.permutation(table.num_rows))


class TestValidation:
    def test_positive_budget(self):
        with pytest.raises(ValueError):
            StreamingCVOptSampler(("g",), "v", budget=0, pilot_rows=10)

    def test_positive_pilot(self):
        with pytest.raises(ValueError):
            StreamingCVOptSampler(("g",), "v", budget=10, pilot_rows=0)

    def test_headroom_bound(self):
        with pytest.raises(ValueError):
            StreamingCVOptSampler(
                ("g",), "v", budget=10, pilot_rows=5, headroom=0.5
            )

    def test_needs_a_value_column(self):
        with pytest.raises(ValueError):
            StreamingCVOptSampler(("g",), (), budget=10, pilot_rows=5)

    def test_primary_must_be_tracked(self):
        with pytest.raises(ValueError, match="primary column"):
            StreamingCVOptSampler(
                ("g",), ("v",), budget=10, pilot_rows=5,
                primary_column="other",
            )


class TestMultiColumn:
    def test_statistics_cover_every_tracked_column(self, table):
        from repro.engine.schema import DType
        from repro.engine.table import Column

        v = np.asarray(table["v"], dtype=float)
        x = v * 0.5 + np.random.default_rng(0).normal(10.0, 1.0, len(v))
        table = table.with_column("x", Column(DType.FLOAT64, x))
        sampler = StreamingCVOptSampler(
            ("g",), ("v", "x"), budget=100, pilot_rows=500, seed=1
        )
        sampler.observe_table(shuffled(table))
        stats = sampler.statistics()
        assert set(stats.columns) == {"v", "x"}
        full_v = np.asarray(table["v"], dtype=float)
        full_x = np.asarray(table["x"], dtype=float)
        np.testing.assert_allclose(
            stats.stats_for("v").total.sum(), full_v.sum(), rtol=1e-9
        )
        np.testing.assert_allclose(
            stats.stats_for("x").total.sum(), full_x.sum(), rtol=1e-9
        )

    def test_value_column_alias_is_primary(self):
        sampler = StreamingCVOptSampler(
            ("g",), ("a", "b"), budget=10, pilot_rows=5,
            primary_column="b",
        )
        assert sampler.value_column == "b"
        assert sampler.value_columns == ("a", "b")

    def test_single_string_still_accepted(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=50, pilot_rows=200, seed=1
        )
        sampler.observe_table(shuffled(table))
        assert set(sampler.statistics().columns) == {"v"}


class TestStreamingSampler:
    def test_budget_respected(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=200, pilot_rows=1000, seed=1
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        assert sample.num_rows <= 200
        assert sample.num_rows >= 150  # budget largely used

    def test_all_strata_represented(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=200, pilot_rows=1000, seed=1
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        assert set(sample.table["g"]) == {0, 1, 2}

    def test_populations_are_exact_stream_counts(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=150, pilot_rows=500, seed=2
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        by_key = dict(
            zip(
                [k[0] for k in sample.allocation.keys],
                sample.allocation.populations,
            )
        )
        assert by_key == {0: 6000, 1: 3000, 2: 1000}

    def test_ht_weights_reconstruct_stream_size(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=150, pilot_rows=500, seed=2
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        weights = np.asarray(sample.table[WEIGHT_COLUMN])
        assert weights.sum() == pytest.approx(table.num_rows, rel=1e-9)

    def test_group_counts_exact(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=150, pilot_rows=500, seed=3
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        out = sample.answer(
            "SELECT g, COUNT(*) c FROM T GROUP BY g ORDER BY g", "T"
        )
        np.testing.assert_allclose(out["c"], [6000, 3000, 1000], rtol=1e-9)

    def test_avg_estimates_reasonable(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=300, pilot_rows=1000, seed=4
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        np.testing.assert_allclose(out["a"], [100.0, 50.0, 10.0], rtol=0.2)

    def test_allocation_tracks_cv(self, table):
        """Group 1 has the largest data CV (20/50); it should receive
        disproportionately many slots relative to its frequency."""
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=300, pilot_rows=2000, seed=5
        )
        sampler.observe_table(shuffled(table))
        sample = sampler.finalize()
        by_key = dict(
            zip(
                [k[0] for k in sample.allocation.keys],
                sample.allocation.sizes,
            )
        )
        share_of_budget = by_key[1] / sample.num_rows
        share_of_stream = 3000 / 10_000
        assert share_of_budget > share_of_stream

    def test_group_ordered_stream_recovers(self, table):
        """Strata appearing after the pilot still get folded in by the
        doubling re-balance schedule."""
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=200, pilot_rows=1000, seed=6
        )
        sampler.observe_table(table)  # group-ordered: g=0 first
        sample = sampler.finalize()
        assert sample.num_rows <= 200
        assert set(sample.table["g"]) == {0, 1, 2}

    def test_comparable_to_two_pass(self, table):
        """The one-pass sample's error is within a modest factor of the
        two-pass CVOPT sample at the same budget."""
        from repro.aqp.errors import compare_results
        from repro.engine.sql.executor import execute_sql

        sql = "SELECT g, AVG(v) a FROM T GROUP BY g"
        truth = execute_sql(sql, {"T": table})
        budget = 300

        stream_errors, batch_errors = [], []
        for seed in range(5):
            sampler = StreamingCVOptSampler(
                ("g",), "v", budget=budget, pilot_rows=1500, seed=seed
            )
            sampler.observe_table(shuffled(table, seed=seed))
            stream_errors.append(
                compare_results(
                    truth, sampler.finalize().answer(sql, "T")
                ).mean_error()
            )
            batch = CVOptSampler(
                GroupByQuerySpec.single("v", by=("g",))
            ).sample(table, budget, seed=seed)
            batch_errors.append(
                compare_results(truth, batch.answer(sql, "T")).mean_error()
            )
        assert np.mean(stream_errors) <= np.mean(batch_errors) * 3 + 0.02

    def test_finalize_empty_stream(self):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=10, pilot_rows=5
        )
        sample = sampler.finalize()
        assert sample.num_rows == 0

    def test_rows_seen_counter(self, table):
        sampler = StreamingCVOptSampler(
            ("g",), "v", budget=10, pilot_rows=50
        )
        for i, row in enumerate(table.iter_rows()):
            sampler.observe(row)
            if i == 99:
                break
        assert sampler.rows_seen == 100
        assert sampler.rebalanced


class TestMultiColumnRebalance:
    """Re-balance optimizes the combined objective over every tracked
    column, not just the primary."""

    @staticmethod
    def _two_column_table(seed=9, n=4000):
        # Column v is flat everywhere; column w is wildly variable in
        # stratum "b" only. A primary-only (v) re-balance would see no
        # reason to favor "b"; the combined objective must.
        rng = np.random.default_rng(seed)
        half = n // 2
        g = np.array(["a"] * half + ["b"] * (n - half))
        v = np.full(n, 100.0) + rng.normal(0, 1.0, n)
        w = np.concatenate(
            [
                np.full(half, 50.0) + rng.normal(0, 1.0, half),
                np.abs(rng.normal(0, 500.0, n - half)),
            ]
        )
        from repro.engine.table import Table

        return Table.from_pydict({"g": g, "v": v, "w": w})

    def _sizes(self, sampler, table):
        sampler.observe_table(shuffled(table, seed=1))
        sample = sampler.finalize()
        alloc = sample.allocation
        return {
            tuple(k): int(s)
            for k, s in zip(alloc.keys, alloc.sizes)
        }

    def test_secondary_column_attracts_budget(self):
        table = self._two_column_table()
        multi = StreamingCVOptSampler(
            ("g",),
            ("v", "w"),
            budget=400,
            pilot_rows=800,
            seed=0,
            primary_column="v",
        )
        single = StreamingCVOptSampler(
            ("g",), ("v",), budget=400, pilot_rows=800, seed=0
        )
        sizes_multi = self._sizes(multi, table)
        sizes_single = self._sizes(single, table)
        # v alone is homogeneous -> roughly balanced allocation; the
        # combined objective must shift budget toward the stratum where
        # w is noisy.
        assert sizes_multi[("b",)] > sizes_single[("b",)]
        assert sizes_multi[("b",)] > sizes_multi[("a",)]

    def test_single_column_unchanged(self, table):
        # With one tracked column the combined objective degenerates to
        # the old primary-only behavior, bit for bit.
        a = StreamingCVOptSampler(("g",), "v", budget=120, pilot_rows=500, seed=3)
        b = StreamingCVOptSampler(("g",), ("v",), budget=120, pilot_rows=500, seed=3)
        sa = self._sizes(a, table)
        sb = self._sizes(b, table)
        assert sa == sb
