import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.cvopt_inf import CVOptInfSampler
from repro.core.lp_norm import CVOptLpSampler, lp_fractional_allocation
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


def estimate_cvs(populations, cvs, sizes):
    populations = np.asarray(populations, dtype=float)
    cvs = np.asarray(cvs, dtype=float)
    sizes = np.asarray(sizes, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        return cvs * np.sqrt(
            (populations - sizes) / (populations * sizes)
        )


def lp_objective(populations, cvs, sizes, p):
    est = estimate_cvs(populations, cvs, sizes)
    return float((est**p).sum())


class TestLpFractionalAllocation:
    def test_p2_matches_lemma1_shape(self):
        populations = np.asarray([100_000, 100_000])
        cvs = np.asarray([0.3, 0.1])
        out = lp_fractional_allocation(cvs, populations, 400, p=2)
        # Lemma 1: 3:1 split (fpc negligible at these populations).
        assert out[0] / out[1] == pytest.approx(3.0, rel=0.02)

    def test_budget_respected(self):
        populations = np.asarray([1000, 1000, 1000])
        cvs = np.asarray([0.2, 0.5, 1.0])
        out = lp_fractional_allocation(cvs, populations, 300, p=4)
        assert out.sum() == pytest.approx(300, rel=1e-4)
        assert (out <= populations + 1e-9).all()

    def test_caps_respected(self):
        populations = np.asarray([20, 100_000])
        cvs = np.asarray([2.0, 0.1])
        out = lp_fractional_allocation(cvs, populations, 500, p=3)
        assert out[0] <= 20 + 1e-9
        assert out.sum() == pytest.approx(500, rel=1e-4)

    def test_zero_cv_gets_floor_only(self):
        populations = np.asarray([1000, 1000])
        cvs = np.asarray([0.0, 0.5])
        out = lp_fractional_allocation(
            cvs, populations, 100, p=2, min_per_stratum=1
        )
        assert out[0] == pytest.approx(1.0)

    def test_p_below_two_rejected(self):
        with pytest.raises(ValueError, match="p >= 2"):
            lp_fractional_allocation(
                np.asarray([0.1]), np.asarray([10]), 5, p=1.5
            )

    def test_larger_p_lowers_max_cv(self):
        """Increasing p interpolates toward the l-infinity optimum."""
        populations = np.asarray([10_000, 10_000, 10_000])
        cvs = np.asarray([0.1, 0.3, 0.9])
        budget = 600
        max_cv = []
        for p in (2, 4, 8, 16):
            sizes = lp_fractional_allocation(cvs, populations, budget, p=p)
            max_cv.append(estimate_cvs(populations, cvs, sizes).max())
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(max_cv, max_cv[1:])
        )

    def test_optimality_vs_perturbation(self, rng):
        populations = rng.integers(1000, 50_000, 6).astype(float)
        cvs = rng.uniform(0.05, 1.5, 6)
        budget = 800
        p = 4
        out = lp_fractional_allocation(cvs, populations, budget, p=p)
        base = lp_objective(populations, cvs, out, p)
        for _ in range(50):
            i, j = rng.choice(6, 2, replace=False)
            delta = min(out[i] * 0.3, populations[j] - out[j])
            if delta <= 0:
                continue
            perturbed = out.copy()
            perturbed[i] -= delta
            perturbed[j] += delta
            assert lp_objective(populations, cvs, perturbed, p) >= base - 1e-9

    def test_empty(self):
        out = lp_fractional_allocation(
            np.zeros(0), np.zeros(0), 10, p=2
        )
        assert len(out) == 0


class TestCVOptLpSampler:
    @pytest.fixture()
    def table(self):
        return make_grouped_table(
            sizes=[5000, 5000, 5000],
            means=[100.0, 100.0, 100.0],
            stds=[10.0, 30.0, 90.0],
            exact_moments=True,
        )

    def test_p2_matches_cvopt(self, table):
        spec = GroupByQuerySpec.single("v", by=("g",))
        lp = CVOptLpSampler(spec, p=2).allocation(table, 600)
        l2 = CVOptSampler(spec).allocation(table, 600)
        lp_by = dict(zip([k[0] for k in lp.keys], lp.sizes))
        l2_by = dict(zip([k[0] for k in l2.keys], l2.sizes))
        for key in lp_by:
            assert abs(lp_by[key] - l2_by[key]) <= 1

    def test_interpolates_between_l2_and_inf(self, table):
        spec = GroupByQuerySpec.single("v", by=("g",))
        budget = 600
        l2 = CVOptSampler(spec).allocation(table, budget)
        inf = CVOptInfSampler(spec).allocation(table, budget)
        mid = CVOptLpSampler(spec, p=6).allocation(table, budget)

        def hardest_share(alloc):
            by = dict(zip([k[0] for k in alloc.keys], alloc.sizes))
            return by[2] / alloc.total  # group 2 = highest CV

        assert (
            hardest_share(l2)
            <= hardest_share(mid)
            <= hardest_share(inf) + 0.02
        )

    def test_sampler_name_reflects_p(self):
        spec = GroupByQuerySpec.single("v", by=("g",))
        assert CVOptLpSampler(spec, p=4).name == "CVOPT-L4"

    def test_end_to_end_sampling(self, table):
        spec = GroupByQuerySpec.single("v", by=("g",))
        sample = CVOptLpSampler(spec, p=4).sample(table, 300, seed=0)
        assert sample.num_rows == 300
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        np.testing.assert_allclose(
            out["a"], [100.0, 100.0, 100.0], rtol=0.25
        )

    def test_multiple_groupby_rejected(self):
        specs = [
            GroupByQuerySpec.single("v", by=("a",)),
            GroupByQuerySpec.single("v", by=("b",)),
        ]
        with pytest.raises(NotImplementedError):
            CVOptLpSampler(specs)

    def test_invalid_p(self):
        spec = GroupByQuerySpec.single("v", by=("g",))
        with pytest.raises(ValueError):
            CVOptLpSampler(spec, p=1.0)

    def test_multiple_aggregates(self, table):
        from repro.engine.schema import DType
        from repro.engine.table import Column

        v = np.asarray(table["v"], dtype=float)
        table = table.with_column(
            "w", Column(DType.FLOAT64, v * 2.0)
        )
        spec = GroupByQuerySpec(group_by=("g",), aggregates=("v", "w"))
        allocation = CVOptLpSampler(spec, p=3).allocation(table, 300)
        assert allocation.total == 300
