import numpy as np
import pytest

from repro.core.allocation import (
    allocate,
    box_constrained_allocation,
    integerize,
    lemma1_allocation,
)


def objective(alphas, sizes):
    """Lemma 1 objective sum(alpha_i / s_i)."""
    alphas = np.asarray(alphas, dtype=float)
    sizes = np.asarray(sizes, dtype=float)
    mask = alphas > 0
    return float((alphas[mask] / sizes[mask]).sum())


class TestLemma1:
    def test_closed_form(self):
        # alphas 1, 4, 9 -> roots 1, 2, 3 -> shares 1/6, 2/6, 3/6.
        out = lemma1_allocation([1.0, 4.0, 9.0], 60)
        np.testing.assert_allclose(out, [10.0, 20.0, 30.0])

    def test_budget_preserved(self):
        out = lemma1_allocation([3.0, 5.0, 11.0], 100)
        assert out.sum() == pytest.approx(100.0)

    def test_zero_alpha_gets_zero(self):
        out = lemma1_allocation([0.0, 4.0], 10)
        assert out[0] == 0.0 and out[1] == 10.0

    def test_all_zero_spreads_evenly(self):
        out = lemma1_allocation([0.0, 0.0], 10)
        np.testing.assert_allclose(out, [5.0, 5.0])

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            lemma1_allocation([-1.0], 10)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            lemma1_allocation([1.0], -1)

    def test_optimality_against_perturbations(self, rng):
        """Moving budget between any two strata cannot help (Lemma 1)."""
        alphas = rng.uniform(0.5, 10.0, 8)
        optimal = lemma1_allocation(alphas, 100)
        base = objective(alphas, optimal)
        for _ in range(100):
            i, j = rng.choice(8, size=2, replace=False)
            delta = rng.uniform(0, optimal[i] * 0.5)
            perturbed = optimal.copy()
            perturbed[i] -= delta
            perturbed[j] += delta
            assert objective(alphas, perturbed) >= base - 1e-9


class TestBoxConstrained:
    def test_matches_lemma1_when_unconstrained(self):
        alphas = np.asarray([1.0, 4.0, 9.0])
        lower = np.zeros(3)
        upper = np.full(3, 1e9)
        out = box_constrained_allocation(alphas, 60, lower, upper)
        np.testing.assert_allclose(out, [10.0, 20.0, 30.0], rtol=1e-6)

    def test_respects_upper_bounds(self):
        alphas = np.asarray([100.0, 1.0])
        out = box_constrained_allocation(
            alphas, 100, np.zeros(2), np.asarray([10.0, 1000.0])
        )
        assert out[0] == pytest.approx(10.0)
        assert out[1] == pytest.approx(90.0)

    def test_respects_lower_bounds(self):
        alphas = np.asarray([100.0, 0.0])
        out = box_constrained_allocation(
            alphas, 100, np.asarray([0.0, 5.0]), np.asarray([1000.0, 1000.0])
        )
        assert out[1] >= 5.0 - 1e-9
        assert out.sum() == pytest.approx(100.0)

    def test_budget_below_floors_clips(self):
        out = box_constrained_allocation(
            np.asarray([1.0, 1.0]), 1,
            np.asarray([2.0, 2.0]), np.asarray([10.0, 10.0]),
        )
        assert out.sum() == pytest.approx(4.0)  # clipped to sum of lowers

    def test_budget_above_caps_takes_everything(self):
        out = box_constrained_allocation(
            np.asarray([1.0, 1.0]), 1000,
            np.zeros(2), np.asarray([3.0, 4.0]),
        )
        assert out.sum() == pytest.approx(7.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            box_constrained_allocation(
                np.asarray([1.0]), 10, np.asarray([5.0]), np.asarray([2.0])
            )

    def test_optimal_vs_scipy_reference(self, rng):
        scipy = pytest.importorskip("scipy.optimize")
        alphas = rng.uniform(0.1, 5.0, 6)
        lower = np.full(6, 1.0)
        upper = rng.uniform(10.0, 60.0, 6)
        budget = 0.6 * upper.sum()
        ours = box_constrained_allocation(alphas, budget, lower, upper)

        res = scipy.minimize(
            lambda s: float((alphas / s).sum()),
            x0=np.clip(np.full(6, budget / 6), lower, upper),
            bounds=list(zip(lower, upper)),
            constraints=[
                {"type": "eq", "fun": lambda s: s.sum() - budget}
            ],
            method="SLSQP",
        )
        assert objective(alphas, ours) <= objective(alphas, res.x) + 1e-6


class TestIntegerize:
    def test_exact_total(self):
        out = integerize(np.asarray([3.3, 3.3, 3.4]), 10, np.asarray([10, 10, 10]))
        assert out.sum() == 10

    def test_largest_remainder_priority(self):
        out = integerize(
            np.asarray([1.9, 1.1, 1.0]), 4, np.asarray([10, 10, 10])
        )
        assert out.sum() == 4
        assert out[0] == 2  # .9 remainder rounded up first

    def test_caps_respected(self):
        out = integerize(np.asarray([5.6, 5.6]), 11, np.asarray([3, 20]))
        assert out[0] <= 3
        assert out.sum() == 11

    def test_budget_above_total_caps(self):
        out = integerize(np.asarray([2.0, 2.0]), 100, np.asarray([3, 4]))
        assert out.sum() == 7

    def test_reduction_when_over(self):
        out = integerize(np.asarray([6.0, 6.0]), 10, np.asarray([10, 10]))
        assert out.sum() == 10

    def test_non_negative(self, rng):
        for _ in range(20):
            n = rng.integers(1, 10)
            frac = rng.uniform(0, 5, n)
            caps = rng.integers(1, 10, n)
            budget = int(rng.integers(0, 30))
            out = integerize(frac, budget, caps)
            assert (out >= 0).all()
            assert (out <= caps).all()
            assert out.sum() == min(budget, caps.sum())


class TestAllocate:
    def test_end_to_end(self):
        out = allocate(
            np.asarray([1.0, 4.0, 9.0]), 60, np.asarray([100, 100, 100])
        )
        assert out.sum() == 60
        # Ordering follows the scores.
        assert out[0] < out[1] < out[2]

    def test_min_per_stratum(self):
        out = allocate(
            np.asarray([0.0, 100.0]), 10, np.asarray([50, 50]),
            min_per_stratum=1,
        )
        assert out[0] >= 1

    def test_min_respects_small_population(self):
        out = allocate(
            np.asarray([1.0, 1.0]), 10, np.asarray([1, 100]),
            min_per_stratum=3,
        )
        assert out[0] == 1  # cannot exceed population

    def test_budget_smaller_than_strata_count(self):
        alphas = np.asarray([5.0, 1.0, 3.0, 2.0])
        out = allocate(alphas, 2, np.asarray([10, 10, 10, 10]))
        assert out.sum() == 2
        # The highest-pressure strata keep their floor.
        assert out[0] == 1

    def test_budget_exceeds_population(self):
        out = allocate(np.asarray([1.0, 1.0]), 1000, np.asarray([5, 7]))
        assert list(out) == [5, 7]

    def test_empty(self):
        out = allocate(np.asarray([]), 10, np.asarray([], dtype=np.int64))
        assert len(out) == 0

    def test_caps_never_exceeded(self, rng):
        for trial in range(25):
            n = int(rng.integers(1, 12))
            alphas = rng.uniform(0, 10, n)
            pops = rng.integers(1, 50, n)
            budget = int(rng.integers(1, 200))
            out = allocate(alphas, budget, pops)
            assert (out <= pops).all()
            assert out.sum() == min(budget, pops.sum())
