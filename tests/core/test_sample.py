import numpy as np
import pytest

from repro.core.sample import (
    STRATUM_COLUMN,
    WEIGHT_COLUMN,
    Allocation,
    StratifiedSample,
    StratifiedSampler,
)
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


class TestAllocation:
    def test_alignment_checks(self):
        with pytest.raises(ValueError, match="align"):
            Allocation(
                by=("g",),
                keys=[(0,), (1,)],
                populations=np.asarray([10]),
                sizes=np.asarray([1, 1]),
            )

    def test_size_exceeding_population_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            Allocation(
                by=("g",),
                keys=[(0,)],
                populations=np.asarray([5]),
                sizes=np.asarray([6]),
            )

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Allocation(
                by=("g",),
                keys=[(0,)],
                populations=np.asarray([5]),
                sizes=np.asarray([-1]),
            )

    def test_totals(self):
        allocation = Allocation(
            by=("g",),
            keys=[(0,), (1,)],
            populations=np.asarray([10, 20]),
            sizes=np.asarray([2, 3]),
        )
        assert allocation.total == 5
        assert allocation.num_strata == 2


class FixedSampler(StratifiedSampler):
    """Test double with a hard-coded allocation."""

    name = "fixed"

    def __init__(self, sizes):
        self._sizes = sizes

    def allocation(self, table, budget):
        from repro.engine.statistics import collect_strata_statistics

        stats = collect_strata_statistics(table, ("g",), [])
        order = np.argsort([k[0] for k in stats.keys])
        sizes = np.zeros(stats.num_strata, dtype=np.int64)
        for pos, size in zip(order, self._sizes):
            sizes[pos] = size
        return Allocation(
            by=("g",),
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
        )


class TestStratifiedSamplerBase:
    @pytest.fixture()
    def table(self):
        return make_grouped_table(
            sizes=[100, 50, 10],
            means=[10.0, 20.0, 30.0],
            stds=[1.0, 2.0, 3.0],
            exact_moments=True,
        )

    def test_sample_sizes_match_allocation(self, table):
        sample = FixedSampler([10, 5, 2]).sample(table, 17, seed=0)
        strata = np.asarray(sample.table[STRATUM_COLUMN])
        counts = np.bincount(strata, minlength=3)
        # stratum ids are allocation-ordered; totals must match.
        assert sorted(counts.tolist()) == [2, 5, 10]
        assert sample.num_rows == 17

    def test_weights_are_scaleups(self, table):
        sample = FixedSampler([10, 5, 2]).sample(table, 17, seed=0)
        weights = np.asarray(sample.table[WEIGHT_COLUMN])
        groups = np.asarray(sample.table["g"])
        by_group = {g: w for g, w in zip(groups, weights)}
        assert by_group[0] == pytest.approx(100 / 10)
        assert by_group[1] == pytest.approx(50 / 5)
        assert by_group[2] == pytest.approx(10 / 2)

    def test_weighted_count_unbiased_exactly_on_census(self, table):
        """If every stratum is fully sampled, the weighted answer is
        exact."""
        sample = FixedSampler([100, 50, 10]).sample(table, 160, seed=0)
        out = sample.answer(
            "SELECT g, COUNT(*) c, AVG(v) a FROM T GROUP BY g ORDER BY g",
            "T",
        )
        assert list(out["c"]) == [100.0, 50.0, 10.0]
        np.testing.assert_allclose(out["a"], [10.0, 20.0, 30.0], rtol=1e-9)

    def test_seed_reproducibility(self, table):
        s1 = FixedSampler([10, 5, 2]).sample(table, 17, seed=123)
        s2 = FixedSampler([10, 5, 2]).sample(table, 17, seed=123)
        assert list(s1.table["v"]) == list(s2.table["v"])

    def test_different_seeds_differ(self, table):
        s1 = FixedSampler([10, 5, 2]).sample(table, 17, seed=1)
        s2 = FixedSampler([10, 5, 2]).sample(table, 17, seed=2)
        assert list(s1.table["v"]) != list(s2.table["v"])

    def test_generator_seed_accepted(self, table):
        rng = np.random.default_rng(0)
        sample = FixedSampler([1, 1, 1]).sample(table, 3, seed=rng)
        assert sample.num_rows == 3

    def test_budget_positive(self, table):
        with pytest.raises(ValueError):
            FixedSampler([1, 1, 1]).sample(table, 0)

    def test_sample_rate(self, table):
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        sample = sampler.sample_rate(table, 0.10, seed=0)
        assert sample.num_rows == 16
        assert sample.sampling_rate == pytest.approx(0.1)

    def test_sample_rate_validation(self, table):
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        with pytest.raises(ValueError):
            sampler.sample_rate(table, 0.0)
        with pytest.raises(ValueError):
            sampler.sample_rate(table, 1.5)

    def test_repr(self, table):
        sample = FixedSampler([1, 1, 1]).sample(table, 3, seed=0)
        assert "fixed" in repr(sample)
        assert "strata=3" in repr(sample)

    def test_save(self, table, tmp_path):
        sample = FixedSampler([5, 3, 1]).sample(table, 9, seed=0)
        sample.save(tmp_path / "s")
        from repro.engine.table import Table

        rows = Table.load(tmp_path / "s.rows.npz")
        assert rows.num_rows == 9
        meta = Table.load(tmp_path / "s.meta.npz")
        assert meta.num_rows == 3
