import numpy as np
import pytest

from repro.core.cvopt import (
    CVOptSampler,
    compute_betas,
    finest_stratification,
    masg_fractional_allocation,
    project_parents,
    sasg_fractional_allocation,
)
from repro.core.spec import AggregateSpec, GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table
from repro.engine.statistics import collect_strata_statistics


class TestTheorem1:
    """SASG closed form: s_i proportional to sqrt(w_i) sigma_i / mu_i."""

    def test_proportionality(self):
        out = sasg_fractional_allocation(
            budget=100,
            means=[10.0, 10.0],
            stds=[3.0, 1.0],
        )
        # CVs are 0.3 and 0.1 -> shares 3:1.
        np.testing.assert_allclose(out, [75.0, 25.0])

    def test_weights_enter_under_sqrt(self):
        out = sasg_fractional_allocation(
            budget=100,
            means=[10.0, 10.0],
            stds=[1.0, 1.0],
            weights=[4.0, 1.0],
        )
        # sqrt(4):sqrt(1) = 2:1.
        np.testing.assert_allclose(out, [200 / 3, 100 / 3])

    def test_same_cv_equal_split(self):
        out = sasg_fractional_allocation(
            budget=10, means=[1.0, 100.0], stds=[0.5, 50.0]
        )
        np.testing.assert_allclose(out, [5.0, 5.0])

    def test_paper_intro_example(self):
        """Two groups, same size and mean, sigma1 >> sigma2: group 1
        must receive more samples (Section 1 / Section 3.1)."""
        out = sasg_fractional_allocation(
            budget=100, means=[100.0, 100.0], stds=[50.0, 2.0]
        )
        assert out[0] > out[1]
        assert out[0] / out[1] == pytest.approx(25.0)


class TestTheorem2:
    def test_alpha_sums_over_aggregates(self):
        means = [[10.0, 100.0], [10.0, 100.0]]
        stds = [[1.0, 10.0], [2.0, 20.0]]
        out = masg_fractional_allocation(100, means, stds)
        # alpha_i = sum_j (sigma/mu)^2 -> [0.02, 0.08]; sqrt ratio 1:2.
        np.testing.assert_allclose(out, [100 / 3, 200 / 3])

    def test_weights_scale_aggregates(self):
        means = [[10.0, 10.0]] * 2
        stds = [[1.0, 2.0]] * 2
        w_first = masg_fractional_allocation(
            100, means, stds, weights=[[1.0, 0.0]] * 2
        )
        np.testing.assert_allclose(w_first, [50.0, 50.0])

    def test_single_aggregate_reduces_to_theorem1(self):
        means = [[10.0], [20.0]]
        stds = [[2.0], [2.0]]
        masg = masg_fractional_allocation(60, means, stds)
        sasg = sasg_fractional_allocation(60, [10.0, 20.0], [2.0, 2.0])
        np.testing.assert_allclose(masg, sasg)


class TestFinestStratification:
    def test_union_in_order(self):
        specs = [
            GroupByQuerySpec(group_by=("a", "b"), aggregates=("x",)),
            GroupByQuerySpec(group_by=("b", "c"), aggregates=("x",)),
        ]
        assert finest_stratification(specs) == ("a", "b", "c")

    def test_empty_grouping_contributes_nothing(self):
        specs = [
            GroupByQuerySpec(group_by=(), aggregates=("x",)),
            GroupByQuerySpec(group_by=("a",), aggregates=("x",)),
        ]
        assert finest_stratification(specs) == ("a",)


class TestProjectParents:
    def test_projection(self):
        keys = [("m1", "y1"), ("m1", "y2"), ("m2", "y1")]
        gids, parents = project_parents(keys, ("major", "year"), ("major",))
        assert parents == [("m1",), ("m2",)]
        assert list(gids) == [0, 0, 1]

    def test_projection_to_full_set_is_identity(self):
        keys = [("a", 1), ("b", 2)]
        gids, parents = project_parents(keys, ("g", "h"), ("g", "h"))
        assert parents == [("a", 1), ("b", 2)]
        assert list(gids) == [0, 1]

    def test_projection_to_empty_is_single_parent(self):
        keys = [("a",), ("b",)]
        gids, parents = project_parents(keys, ("g",), ())
        assert parents == [()]
        assert list(gids) == [0, 0]

    def test_reordered_attrs(self):
        keys = [("m1", "y1"), ("m2", "y2")]
        gids, parents = project_parents(keys, ("major", "year"), ("year", "major"))
        assert parents == [("y1", "m1"), ("y2", "m2")]


class TestComputeBetas:
    def test_sasg_beta_equals_weighted_cv_squared(self):
        table = make_grouped_table(
            sizes=[100, 200],
            means=[10.0, 20.0],
            stds=[2.0, 8.0],
            exact_moments=True,
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        stats = collect_strata_statistics(table, ("g",), ["v"])
        betas = compute_betas(stats, [spec])
        by_key = dict(zip([k[0] for k in stats.keys], betas))
        assert by_key[0] == pytest.approx((2.0 / 10.0) ** 2)
        assert by_key[1] == pytest.approx((8.0 / 20.0) ** 2)

    def test_group_weight_scales_beta(self):
        table = make_grouped_table(
            sizes=[100, 100], means=[10.0, 10.0], stds=[2.0, 2.0],
            exact_moments=True,
        )
        spec = GroupByQuerySpec(
            group_by=("g",),
            aggregates=(AggregateSpec("v"),),
            group_weights={(0,): 9.0},
        )
        stats = collect_strata_statistics(table, ("g",), ["v"])
        betas = compute_betas(stats, [spec])
        assert betas[0] == pytest.approx(9.0 * betas[1])

    def test_zero_variance_stratum_zero_beta(self):
        table = make_grouped_table(
            sizes=[50, 50], means=[5.0, 5.0], stds=[0.0, 1.0],
            exact_moments=True,
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        stats = collect_strata_statistics(table, ("g",), ["v"])
        betas = compute_betas(stats, [spec])
        assert betas[0] == pytest.approx(0.0)
        assert betas[1] > 0

    def test_all_zero_means_raise(self):
        from repro.engine.table import Table

        # Exactly-zero group mean: CV undefined.
        table = Table.from_pydict({"g": [0, 0], "v": [1.0, -1.0]})
        spec = GroupByQuerySpec.single("v", by=("g",))
        stats = collect_strata_statistics(table, ("g",), ["v"])
        with pytest.raises(ValueError, match="non-zero means"):
            compute_betas(stats, [spec])

    def test_samg_beta_formula_by_hand(self):
        """Two group-bys over a 2x2 stratification; check Lemma 2's
        beta_c against a direct hand computation."""
        # strata: (a1,b1) n=100, (a1,b2) n=300, (a2,b1) n=100, (a2,b2) n=100
        import itertools

        sizes = {
            ("a1", "b1"): 100, ("a1", "b2"): 300,
            ("a2", "b1"): 100, ("a2", "b2"): 100,
        }
        means = {
            ("a1", "b1"): 10.0, ("a1", "b2"): 20.0,
            ("a2", "b1"): 30.0, ("a2", "b2"): 40.0,
        }
        stds = {k: 4.0 for k in sizes}
        keys = list(sizes)
        table = make_grouped_table(
            sizes=[sizes[k] for k in keys],
            means=[means[k] for k in keys],
            stds=[stds[k] for k in keys],
            exact_moments=True,
        )
        # Attach explicit A/B key columns derived from the group index.
        from repro.engine.table import Column, Table

        g = np.asarray(table["g"])
        a_col = Column.from_strings(
            np.asarray([keys[i][0] for i in g], dtype=object)
        )
        b_col = Column.from_strings(
            np.asarray([keys[i][1] for i in g], dtype=object)
        )
        table = table.with_column("A", a_col).with_column("B", b_col)

        specs = [
            GroupByQuerySpec.single("v", by=("A",)),
            GroupByQuerySpec.single("v", by=("B",)),
        ]
        stats = collect_strata_statistics(table, ("A", "B"), ["v"])
        betas = compute_betas(stats, specs)

        # Hand computation of group-level statistics.
        def group_stats(attr_index, value):
            members = [k for k in keys if k[attr_index] == value]
            n = sum(sizes[k] for k in members)
            mu = sum(sizes[k] * means[k] for k in members) / n
            return n, mu

        expected = {}
        for key in keys:
            n_c = sizes[key]
            sigma_sq = stds[key] ** 2
            na, mua = group_stats(0, key[0])
            nb, mub = group_stats(1, key[1])
            expected[key] = n_c**2 * sigma_sq * (
                1.0 / (na**2 * mua**2) + 1.0 / (nb**2 * mub**2)
            )
        got = dict(zip([tuple(k) for k in stats.keys], betas))
        for key in keys:
            assert got[key] == pytest.approx(expected[key], rel=1e-6)


class TestCVOptSampler:
    def test_allocation_follows_cv(self):
        table = make_grouped_table(
            sizes=[10_000, 10_000],
            means=[100.0, 100.0],
            stds=[50.0, 2.0],
            exact_moments=True,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 260)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        # 25:1 CV ratio -> group 0 gets the lion's share.
        assert by_key[0] > 20 * by_key[1] * 0.8
        assert allocation.total == 260

    def test_zero_variance_gets_floor_only(self):
        table = make_grouped_table(
            sizes=[1000, 1000], means=[10.0, 10.0], stds=[0.0, 5.0],
            exact_moments=True,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 100)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[0] == 1
        assert by_key[1] == 99

    def test_min_per_stratum_zero_drops_constant_groups(self):
        table = make_grouped_table(
            sizes=[1000, 1000], means=[10.0, 10.0], stds=[0.0, 5.0],
            exact_moments=True,
        )
        sampler = CVOptSampler(
            GroupByQuerySpec.single("v", by=("g",)), min_per_stratum=0
        )
        allocation = sampler.allocation(table, 100)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[0] == 0

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            CVOptSampler([])

    def test_from_sql(self, openaq_small):
        sampler = CVOptSampler.from_sql(
            "SELECT country, AVG(value) FROM OpenAQ GROUP BY country"
        )
        sample = sampler.sample(openaq_small, 500, seed=0)
        assert sample.num_rows == 500
        assert sample.allocation.by == ("country",)

    def test_multiple_groupby_stratifies_by_union(self, openaq_small):
        specs = [
            GroupByQuerySpec.single("value", by=("country",)),
            GroupByQuerySpec.single("value", by=("parameter",)),
        ]
        sampler = CVOptSampler(specs)
        allocation = sampler.allocation(openaq_small, 1000)
        assert allocation.by == ("country", "parameter")

    def test_objective_beats_senate_and_uniform_allocations(self):
        """The l2 objective at CVOPT's allocation is no worse than at
        senate/proportional allocations (it is provably optimal)."""
        rng = np.random.default_rng(0)
        sizes = rng.integers(500, 5000, 10)
        means = rng.uniform(10, 1000, 10)
        stds = means * rng.uniform(0.05, 1.5, 10)
        table = make_grouped_table(
            sizes=sizes, means=means, stds=stds, exact_moments=True
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        sampler = CVOptSampler(spec, min_per_stratum=0)
        budget = 500
        allocation = sampler.allocation(table, budget)

        stats = collect_strata_statistics(table, ("g",), ["v"])
        order = np.argsort([k[0] for k in stats.keys])

        def objective(s):
            s = np.asarray(s, dtype=float)
            n = stats.sizes.astype(float)
            cs = stats.stats_for("v")
            mask = s > 0
            cv_sq = (
                cs.variance[mask]
                * (n[mask] - s[mask])
                / (n[mask] * s[mask] * cs.mean[mask] ** 2)
            )
            # Unsampled strata contribute "infinite" CV; penalize hard.
            penalty = 1e6 * (~mask).sum()
            return cv_sq.sum() + penalty

        ours = objective(allocation.sizes)
        senate = objective(np.full(10, budget // 10))
        proportional = objective(
            np.maximum((budget * stats.sizes / stats.sizes.sum()), 1).astype(int)
        )
        assert ours <= senate + 1e-9
        assert ours <= proportional + 1e-9
