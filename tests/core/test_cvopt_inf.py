import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.cvopt_inf import (
    CVOptInfSampler,
    cvopt_inf_sizes,
    linf_sizes_from_cv_bounds,
)
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


def estimate_cvs(populations, means, stds, sizes):
    """CV[y_i] = (sigma_i/mu_i) sqrt((n_i - s_i) / (n_i s_i))."""
    populations = np.asarray(populations, dtype=float)
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    sizes = np.asarray(sizes, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        return (stds / means) * np.sqrt(
            (populations - sizes) / (populations * sizes)
        )


class TestCvoptInfSizes:
    def test_equalizes_cvs(self):
        populations = np.asarray([10_000, 10_000, 10_000])
        means = np.asarray([100.0, 100.0, 100.0])
        stds = np.asarray([10.0, 30.0, 90.0])
        sizes = cvopt_inf_sizes(populations, means, stds, budget=600)
        cvs = estimate_cvs(populations, means, stds, sizes)
        # Lemma 4: at the optimum all CVs are (approximately) equal.
        assert cvs.max() / cvs.min() < 1.25

    def test_respects_budget_up_to_rounding(self):
        populations = np.asarray([5000] * 8)
        means = np.full(8, 50.0)
        stds = np.linspace(1.0, 40.0, 8)
        sizes = cvopt_inf_sizes(populations, means, stds, budget=400)
        # ceil-rounding may exceed by at most one per stratum (paper).
        assert sizes.sum() <= 400 + 8

    def test_caps_at_population(self):
        populations = np.asarray([10, 10_000])
        means = np.asarray([10.0, 10.0])
        stds = np.asarray([9.0, 1.0])
        sizes = cvopt_inf_sizes(populations, means, stds, budget=500)
        assert sizes[0] <= 10

    def test_zero_variance_gets_floor(self):
        populations = np.asarray([1000, 1000])
        means = np.asarray([10.0, 10.0])
        stds = np.asarray([0.0, 5.0])
        sizes = cvopt_inf_sizes(populations, means, stds, budget=100)
        assert sizes[0] == 1

    def test_all_zero_variance(self):
        populations = np.asarray([100, 100])
        sizes = cvopt_inf_sizes(
            populations,
            np.asarray([5.0, 5.0]),
            np.asarray([0.0, 0.0]),
            budget=10,
        )
        assert (sizes <= 1).all()

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            cvopt_inf_sizes(
                np.asarray([10]), np.asarray([1.0]), np.asarray([1.0]), 0
            )

    def test_zero_means_raise(self):
        with pytest.raises(ValueError):
            cvopt_inf_sizes(
                np.asarray([10]), np.asarray([0.0]), np.asarray([1.0]), 5
            )

    def test_lower_max_cv_than_l2(self):
        """The defining property (Figure 6): CVOPT-INF's max CV is no
        worse than l2-CVOPT's max CV."""
        rng = np.random.default_rng(3)
        populations = rng.integers(1000, 50_000, 12)
        means = rng.uniform(10, 500, 12)
        stds = means * rng.uniform(0.05, 2.0, 12)
        budget = 1500

        inf_sizes = cvopt_inf_sizes(populations, means, stds, budget)
        from repro.core.allocation import allocate

        alphas = (stds / means) ** 2
        l2_sizes = allocate(alphas, budget, populations)

        max_inf = estimate_cvs(populations, means, stds, inf_sizes).max()
        max_l2 = estimate_cvs(populations, means, stds, l2_sizes).max()
        assert max_inf <= max_l2 * 1.05  # rounding tolerance


class TestLinfFromCvBounds:
    def test_matches_q_search(self):
        populations = np.asarray([8000, 12_000, 20_000])
        means = np.asarray([100.0, 50.0, 10.0])
        stds = np.asarray([20.0, 25.0, 8.0])
        budget = 900
        a = cvopt_inf_sizes(populations, means, stds, budget)
        b = linf_sizes_from_cv_bounds(populations, stds / means, budget)
        cv_a = estimate_cvs(populations, means, stds, a).max()
        cv_b = estimate_cvs(populations, means, stds, b).max()
        assert cv_a == pytest.approx(cv_b, rel=0.1)

    def test_budget_bound(self):
        populations = np.asarray([1000] * 5)
        cv = np.linspace(0.1, 2.0, 5)
        sizes = linf_sizes_from_cv_bounds(populations, cv, 200)
        assert sizes.sum() <= 200 + 5

    def test_zero_cv_strata_get_floor(self):
        populations = np.asarray([100, 100])
        sizes = linf_sizes_from_cv_bounds(
            populations, np.asarray([0.0, 1.0]), 50
        )
        assert sizes[0] == 1


class TestCVOptInfSampler:
    def test_sasg_end_to_end(self):
        table = make_grouped_table(
            sizes=[5000, 5000, 5000],
            means=[100.0, 100.0, 100.0],
            stds=[10.0, 30.0, 90.0],
            exact_moments=True,
        )
        sampler = CVOptInfSampler(GroupByQuerySpec.single("v", by=("g",)))
        sample = sampler.sample(table, 600, seed=0)
        assert sample.method == "CVOPT-INF"
        by_key = dict(
            zip(
                [k[0] for k in sample.allocation.keys],
                sample.allocation.sizes,
            )
        )
        assert by_key[0] < by_key[1] < by_key[2]

    def test_masg_uses_worst_aggregate(self):
        table = make_grouped_table(
            sizes=[5000, 5000], means=[100.0, 100.0],
            stds=[10.0, 10.0], exact_moments=True,
        )
        # Second aggregate: same values scaled (same CV) plus one group
        # with extra dispersion.
        import numpy as np
        from repro.engine.schema import DType
        from repro.engine.table import Column

        v = np.asarray(table["v"], dtype=float)
        g = np.asarray(table["g"])
        w = np.where(g == 1, (v - 100.0) * 5 + 100.0, v)
        table = table.with_column("w", Column(DType.FLOAT64, w))
        spec = GroupByQuerySpec(group_by=("g",), aggregates=("v", "w"))
        sampler = CVOptInfSampler(spec)
        allocation = sampler.allocation(table, 500)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[1] > by_key[0]

    def test_multiple_groupby_not_implemented(self):
        specs = [
            GroupByQuerySpec.single("v", by=("a",)),
            GroupByQuerySpec.single("v", by=("b",)),
        ]
        with pytest.raises(NotImplementedError):
            CVOptInfSampler(specs)

    def test_from_sql(self, openaq_small):
        sampler = CVOptInfSampler.from_sql(
            "SELECT country, AVG(value) FROM OpenAQ GROUP BY country"
        )
        sample = sampler.sample(openaq_small, 400, seed=1)
        assert sample.allocation.by == ("country",)

    def test_inf_vs_l2_max_error_on_table(self):
        """Figure 6's qualitative claim on real allocations."""
        rng = np.random.default_rng(9)
        sizes = rng.integers(2000, 30_000, 10)
        means = rng.uniform(20, 200, 10)
        stds = means * rng.uniform(0.1, 1.2, 10)
        table = make_grouped_table(
            sizes=sizes, means=means, stds=stds, exact_moments=True
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        budget = 1000
        inf_alloc = CVOptInfSampler(spec).allocation(table, budget)
        l2_alloc = CVOptSampler(spec).allocation(table, budget)

        def max_cv(alloc):
            order = np.argsort([k[0] for k in alloc.keys])
            return estimate_cvs(
                alloc.populations[order],
                means,
                stds,
                np.maximum(alloc.sizes[order], 1),
            ).max()

        assert max_cv(inf_alloc) <= max_cv(l2_alloc) * 1.1
