"""Full-pipeline integration tests: dataset -> sampler -> SQL answer ->
error metrics, with statistical assertions on method ordering."""

import numpy as np
import pytest

from repro.aqp.errors import compare_results
from repro.aqp.runner import QueryTask, ground_truth, run_experiment
from repro.baselines import make_samplers
from repro.core.cvopt import CVOptSampler
from repro.core.cvopt_inf import CVOptInfSampler
from repro.core.spec import specs_from_sql
from repro.datasets.synthetic import make_grouped_table
from repro.queries import get_query, task_for


class TestSyntheticHeterogeneity:
    """On strongly heterogeneous groups, CVOPT must beat Uniform and
    Senate-style allocations on max error (the paper's core claim)."""

    @pytest.fixture(scope="class")
    def table(self):
        rng = np.random.default_rng(0)
        sizes = np.maximum((30_000 * np.arange(1, 16) ** -1.2).astype(int), 40)
        sizes[-1] = 30  # one genuinely tiny group (uniform misses it)
        means = rng.uniform(10, 1000, 15)
        stds = means * rng.uniform(0.05, 1.5, 15)
        return make_grouped_table(
            sizes=sizes, means=means, stds=stds, exact_moments=True
        )

    @pytest.fixture(scope="class")
    def outcome(self, table):
        sql = "SELECT g, AVG(v) a FROM T GROUP BY g"
        specs, derived = specs_from_sql(sql)
        samplers = make_samplers(specs, derived)
        task = QueryTask(name="avg", sql=sql, table_name="T")
        return run_experiment(
            table, [task], samplers, rate=0.01, repetitions=5, seed=3
        )

    def test_cvopt_beats_uniform_max_error(self, outcome):
        assert (
            outcome.get("CVOPT", "avg").max_error()
            < outcome.get("Uniform", "avg").max_error()
        )

    def test_cvopt_beats_cs_max_error(self, outcome):
        assert (
            outcome.get("CVOPT", "avg").max_error()
            < outcome.get("CS", "avg").max_error()
        )

    def test_cvopt_mean_error_competitive(self, outcome):
        best_other = min(
            outcome.get(m, "avg").mean_error()
            for m in ("Uniform", "Sample+Seek", "CS", "RL")
        )
        assert outcome.get("CVOPT", "avg").mean_error() <= best_other * 1.5

    def test_uniform_misses_small_groups(self, outcome):
        assert (
            outcome.get("Uniform", "avg").summary()["missing_groups"] > 0
        )


class TestPaperQueriesEndToEnd:
    def test_aq1_pipeline(self, openaq_small):
        query = get_query("AQ1")
        sampler = CVOptSampler.from_sql(query.sql)
        sample = sampler.sample_rate(openaq_small, 0.05, seed=0)
        estimate = sample.answer(query.sql, "OpenAQ")
        truth = ground_truth(task_for("AQ1"), openaq_small)
        errors = compare_results(truth, estimate)
        assert errors.num_cells > 0

    def test_aq2_masg(self, openaq_small):
        query = get_query("AQ2")
        sampler = CVOptSampler.from_sql(query.sql)
        sample = sampler.sample_rate(openaq_small, 0.05, seed=0)
        estimate = sample.answer(query.sql, "OpenAQ")
        truth = ground_truth(task_for("AQ2"), openaq_small)
        errors = compare_results(truth, estimate)
        assert errors.missing_groups == 0  # every stratum floored
        assert errors.mean_error() < 0.5

    def test_cube_query_pipeline(self, bikes_small):
        query = get_query("B3")
        sampler = CVOptSampler.from_sql(query.sql)
        sample = sampler.sample_rate(bikes_small, 0.10, seed=0)
        estimate = sample.answer(query.sql, "Bikes")
        truth = ground_truth(task_for("B3"), bikes_small)
        errors = compare_results(truth, estimate)
        assert errors.mean_error() < 0.6

    def test_count_estimates_exact_without_predicate(self, openaq_small):
        """COUNT per stratum is exactly n_c when no predicate filters
        the sample (weights sum to the stratum population)."""
        sql = "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country"
        sampler = CVOptSampler.from_sql(sql)
        sample = sampler.sample_rate(openaq_small, 0.02, seed=1)
        estimate = sample.answer(sql, "OpenAQ")
        truth = ground_truth(
            QueryTask(name="c", sql=sql, table_name="OpenAQ"), openaq_small
        )
        errors = compare_results(truth, estimate)
        assert errors.max_error() == pytest.approx(0.0, abs=1e-9)

    def test_reuse_with_new_predicate(self, openaq_small):
        """A sample built for AQ3 answers AQ3.a (unseen predicate)."""
        sampler = CVOptSampler.from_sql(get_query("AQ3").sql)
        sample = sampler.sample_rate(openaq_small, 0.05, seed=2)
        variant = get_query("AQ3.a")
        estimate = sample.answer(variant.sql, "OpenAQ")
        truth = ground_truth(task_for("AQ3.a"), openaq_small)
        errors = compare_results(truth, estimate)
        assert errors.mean_error() < 0.8

    def test_reuse_with_new_grouping(self, openaq_small):
        """A sample stratified on (country, parameter, unit) answers a
        country-only rollup (coarsening)."""
        sampler = CVOptSampler.from_sql(get_query("AQ3").sql)
        sample = sampler.sample_rate(openaq_small, 0.05, seed=2)
        sql = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        estimate = sample.answer(sql, "OpenAQ")
        truth = ground_truth(
            QueryTask(name="q", sql=sql, table_name="OpenAQ"), openaq_small
        )
        errors = compare_results(truth, estimate)
        assert errors.mean_error() < 0.3


class TestCvoptVsInf:
    def test_inf_has_lower_max_higher_median(self):
        """Figure 6's qualitative shape, averaged over repetitions."""
        rng = np.random.default_rng(1)
        sizes = np.maximum((50_000 * np.arange(1, 13) ** -1.3).astype(int), 50)
        means = rng.uniform(50, 500, 12)
        stds = means * rng.uniform(0.1, 1.2, 12)
        table = make_grouped_table(
            sizes=sizes, means=means, stds=stds, exact_moments=True
        )
        sql = "SELECT g, AVG(v) a FROM T GROUP BY g"
        truth = ground_truth(QueryTask("q", sql, "T"), table)

        max_l2, max_inf = [], []
        seeds = np.random.default_rng(7)
        for _ in range(8):
            l2 = CVOptSampler.from_sql(sql).sample_rate(
                table, 0.01, seed=seeds
            )
            inf = CVOptInfSampler.from_sql(sql).sample_rate(
                table, 0.01, seed=seeds
            )
            max_l2.append(
                compare_results(truth, l2.answer(sql, "T")).max_error()
            )
            max_inf.append(
                compare_results(truth, inf.answer(sql, "T")).max_error()
            )
        assert np.mean(max_inf) <= np.mean(max_l2) * 1.1


class TestWeightedAggregates:
    def test_weight_shifts_error_between_aggregates(self, bikes_small):
        """Figure 2's mechanism: upweighting agg1 lowers its error."""
        from repro.core.spec import specs_from_sql

        sql = get_query("B1").sql
        truth = ground_truth(task_for("B1"), bikes_small)
        specs, derived = specs_from_sql(sql)
        spec = specs[0]

        def mean_error_of(agg_index, weights, seed):
            weighted = spec.reweighted(weights)
            sampler = CVOptSampler(weighted, derived=derived)
            rng = np.random.default_rng(seed)
            errs = []
            for _ in range(5):
                sample = sampler.sample_rate(bikes_small, 0.05, seed=rng)
                errors = compare_results(
                    truth, sample.answer(sql, "Bikes")
                )
                per_agg = [
                    e
                    for (key, col), e in errors.errors.items()
                    if col == f"agg{agg_index + 1}"
                ]
                errs.append(np.mean(per_agg))
            return np.mean(errs)

        favored = mean_error_of(0, [0.95, 0.05], seed=11)
        unfavored = mean_error_of(0, [0.05, 0.95], seed=11)
        assert favored <= unfavored * 1.05
