"""Failure injection: degenerate data, empty results, extreme budgets.

Every path a production user would eventually hit: the system must
either produce a well-defined answer or raise a clear error — never a
crash or a silently wrong number.
"""

import numpy as np
import pytest

from repro.aqp.errors import compare_results
from repro.baselines import make_samplers
from repro.core.cvopt import CVOptSampler
from repro.core.cvopt_inf import CVOptInfSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table
from repro.engine.sql.executor import execute_sql
from repro.engine.table import Table


SPEC = GroupByQuerySpec.single("v", by=("g",))


class TestDegenerateData:
    def test_single_row_table(self):
        table = Table.from_pydict({"g": ["a"], "v": [1.0]})
        sample = CVOptSampler(SPEC).sample(table, 1, seed=0)
        out = sample.answer("SELECT g, AVG(v) a FROM T GROUP BY g", "T")
        assert out.num_rows == 1
        assert out["a"][0] == 1.0

    def test_all_groups_constant(self):
        table = make_grouped_table(
            sizes=[100, 100], means=[5.0, 7.0], stds=[0.0, 0.0],
            exact_moments=True,
        )
        sample = CVOptSampler(SPEC).sample(table, 10, seed=0)
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        # Constant groups are estimated exactly from the floor rows.
        np.testing.assert_allclose(out["a"], [5.0, 7.0])

    def test_single_group(self):
        table = make_grouped_table(
            sizes=[500], means=[10.0], stds=[2.0], exact_moments=True
        )
        sample = CVOptSampler(SPEC).sample(table, 50, seed=0)
        assert sample.allocation.num_strata == 1
        assert sample.num_rows == 50

    def test_every_row_its_own_group(self):
        table = Table.from_pydict(
            {"g": list(range(40)), "v": [float(i) for i in range(40)]}
        )
        sample = CVOptSampler(SPEC).sample(table, 40, seed=0)
        out = sample.answer("SELECT g, AVG(v) a FROM T GROUP BY g", "T")
        assert out.num_rows == 40  # census: all exact

    def test_negative_values(self):
        table = make_grouped_table(
            sizes=[300, 300], means=[-50.0, -10.0], stds=[5.0, 1.0],
            exact_moments=True,
        )
        sample = CVOptSampler(SPEC).sample(table, 60, seed=0)
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        np.testing.assert_allclose(out["a"], [-50.0, -10.0], rtol=0.2)

    def test_extreme_scale_values(self):
        table = make_grouped_table(
            sizes=[200, 200], means=[1e12, 1e-6], stds=[1e11, 1e-7],
            exact_moments=True,
        )
        sample = CVOptSampler(SPEC).sample(table, 40, seed=0)
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        assert np.isfinite(np.asarray(out["a"])).all()


class TestExtremeBudgets:
    @pytest.fixture()
    def table(self):
        return make_grouped_table(
            sizes=[1000, 100, 10], means=[10.0, 20.0, 30.0],
            stds=[2.0, 4.0, 6.0], exact_moments=True,
        )

    def test_budget_one(self, table):
        sample = CVOptSampler(SPEC).sample(table, 1, seed=0)
        assert sample.num_rows == 1

    def test_budget_below_strata_count(self, table):
        sample = CVOptSampler(SPEC).sample(table, 2, seed=0)
        assert sample.num_rows == 2

    def test_budget_equals_table(self, table):
        sample = CVOptSampler(SPEC).sample(table, table.num_rows, seed=0)
        assert sample.num_rows == table.num_rows
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        np.testing.assert_allclose(out["a"], [10.0, 20.0, 30.0], rtol=1e-9)

    def test_budget_above_table(self, table):
        sample = CVOptSampler(SPEC).sample(table, 10**9, seed=0)
        assert sample.num_rows == table.num_rows

    def test_all_baselines_handle_extremes(self, table):
        for budget in (1, 3, table.num_rows, 10**6):
            for name, sampler in make_samplers(SPEC).items():
                sample = sampler.sample(table, budget, seed=0)
                assert sample.num_rows <= min(budget, table.num_rows), (
                    name, budget,
                )


class TestEmptyResults:
    @pytest.fixture()
    def sample(self):
        table = make_grouped_table(
            sizes=[500, 500], means=[10.0, 20.0], stds=[2.0, 2.0],
            exact_moments=True,
        )
        return CVOptSampler(SPEC).sample(table, 100, seed=0)

    def test_predicate_selecting_nothing(self, sample):
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T WHERE v > 1e18 GROUP BY g", "T"
        )
        assert out.num_rows == 0

    def test_full_table_aggregate_on_empty_selection(self, sample):
        out = sample.answer(
            "SELECT COUNT(*) c, SUM(v) s FROM T WHERE v > 1e18", "T"
        )
        assert out.num_rows == 1
        assert out["c"][0] == 0.0
        assert out["s"][0] == 0.0

    def test_having_filtering_everything(self, sample):
        out = sample.answer(
            "SELECT g, COUNT(*) c FROM T GROUP BY g HAVING COUNT(*) > 1e9",
            "T",
        )
        assert out.num_rows == 0

    def test_compare_results_with_empty_estimate(self, sample):
        truth = Table.from_pydict({"g": [0, 1], "a": [10.0, 20.0]})
        empty = Table.from_pydict({"g": [], "a": []})
        errors = compare_results(truth, empty)
        assert errors.missing_groups == 2
        assert errors.max_error() == 1.0

    def test_empty_table_queries(self):
        empty = Table.from_pydict({"g": [], "v": []})
        out = execute_sql(
            "SELECT g, AVG(v) a FROM T GROUP BY g", {"T": empty}
        )
        assert out.num_rows == 0
        out = execute_sql("SELECT COUNT(*) c FROM T", {"T": empty})
        assert out["c"][0] == 0.0


class TestDegenerateSpecs:
    def test_groupby_attr_missing_from_table(self):
        table = Table.from_pydict({"g": ["a"], "v": [1.0]})
        spec = GroupByQuerySpec.single("v", by=("nope",))
        with pytest.raises(KeyError):
            CVOptSampler(spec).sample(table, 1, seed=0)

    def test_agg_column_missing_from_table(self):
        table = Table.from_pydict({"g": ["a"], "v": [1.0]})
        spec = GroupByQuerySpec.single("missing", by=("g",))
        with pytest.raises(KeyError):
            CVOptSampler(spec).sample(table, 1, seed=0)

    def test_string_agg_column_rejected(self):
        table = Table.from_pydict({"g": ["a"], "s": ["x"], "v": [1.0]})
        spec = GroupByQuerySpec.single("s", by=("g",))
        with pytest.raises(TypeError):
            CVOptSampler(spec).sample(table, 1, seed=0)

    def test_cvopt_inf_on_degenerate_group(self):
        table = make_grouped_table(
            sizes=[100], means=[10.0], stds=[0.0], exact_moments=True
        )
        sample = CVOptInfSampler(SPEC).sample(table, 10, seed=0)
        assert sample.num_rows >= 1


class TestUnicodeAndOddStrings:
    def test_unicode_group_keys(self):
        table = Table.from_pydict(
            {
                "g": ["北京", "北京", "Ålesund", "Ålesund", "--", "--"],
                "v": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            }
        )
        sample = CVOptSampler(SPEC).sample(table, 6, seed=0)
        out = sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        assert out.num_rows == 3
        lookup = dict(zip(out["g"], out["a"]))
        assert lookup["北京"] == pytest.approx(1.5)

    def test_quote_in_predicate_literal(self):
        table = Table.from_pydict({"g": ["o'brien", "x"], "v": [1.0, 2.0]})
        out = execute_sql(
            "SELECT COUNT(*) c FROM T WHERE g = 'o''brien'", {"T": table}
        )
        assert out["c"][0] == 1.0

    def test_empty_string_category(self):
        table = Table.from_pydict({"g": ["", "", "a"], "v": [1.0, 2.0, 3.0]})
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM T GROUP BY g", {"T": table}
        )
        lookup = dict(zip(out["g"], out["c"]))
        assert lookup[""] == 2.0
