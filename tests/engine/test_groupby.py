import numpy as np
import pytest

from repro.engine.groupby import (
    ALL_MARKER,
    compute_group_keys,
    cube_grouping_sets,
    factorize,
    group_by_aggregate,
)
from repro.engine.table import Table

from helpers import reference_group_by


class TestFactorize:
    def test_dense_codes(self):
        codes, first = factorize(np.asarray([5, 3, 5, 7, 3]))
        assert codes.max() == 2
        assert len(first) == 3
        # codes are consistent: same value -> same code
        assert codes[0] == codes[2]
        assert codes[1] == codes[4]

    def test_first_index_points_to_value(self):
        arr = np.asarray([9, 4, 9, 1])
        codes, first = factorize(arr)
        for code, idx in enumerate(first):
            assert codes[idx] == code

    def test_empty(self):
        codes, first = factorize(np.empty(0, dtype=np.int64))
        assert len(codes) == 0 and len(first) == 0


class TestComputeGroupKeys:
    def test_single_column(self, simple_table):
        keys = compute_group_keys(simple_table, ["g"])
        assert keys.num_groups == 3
        assert sorted(keys.key_tuples(simple_table)) == [("a",), ("b",), ("c",)]

    def test_two_columns(self, simple_table):
        keys = compute_group_keys(simple_table, ["g", "h"])
        expected = {("a", 1), ("a", 2), ("b", 1), ("b", 2), ("c", 1)}
        assert set(keys.key_tuples(simple_table)) == expected
        assert keys.num_groups == 5

    def test_gids_are_dense(self, simple_table):
        keys = compute_group_keys(simple_table, ["g", "h"])
        assert set(keys.gids) == set(range(keys.num_groups))

    def test_empty_by_single_group(self, simple_table):
        keys = compute_group_keys(simple_table, [])
        assert keys.num_groups == 1
        assert all(keys.gids == 0)
        assert keys.key_tuples(simple_table) == [()]

    def test_empty_table(self):
        table = Table.from_pydict({"a": []})
        keys = compute_group_keys(table, [])
        assert keys.num_groups == 0

    def test_rows_map_to_right_group(self, simple_table):
        keys = compute_group_keys(simple_table, ["g"])
        tuples = keys.key_tuples(simple_table)
        g = list(simple_table["g"])
        for row, gid in enumerate(keys.gids):
            assert tuples[gid] == (g[row],)


class TestGroupByAggregate:
    def test_avg_matches_reference(self, simple_table):
        values = simple_table.column("x").values_numeric()
        out = group_by_aggregate(
            simple_table, ["g"], [("avg_x", "AVG", values)]
        )
        ref = reference_group_by(
            list(simple_table.iter_rows()), ["g"], "x"
        )
        got = {
            (k,): v
            for k, v in zip(out["g"], out["avg_x"])
        }
        for key, vals in ref.items():
            assert got[key] == pytest.approx(np.mean(vals))

    def test_multiple_aggregates(self, simple_table):
        values = simple_table.column("x").values_numeric()
        out = group_by_aggregate(
            simple_table,
            ["g"],
            [("s", "SUM", values), ("c", "COUNT", None)],
        )
        lookup = {k: (s, c) for k, s, c in zip(out["g"], out["s"], out["c"])}
        assert lookup["a"] == (30.0, 2.0)
        assert lookup["b"] == (6.0, 3.0)
        assert lookup["c"] == (100.0, 1.0)

    def test_weighted(self, simple_table):
        values = simple_table.column("x").values_numeric()
        weights = np.asarray([2.0, 2.0, 1.0, 1.0, 1.0, 4.0])
        out = group_by_aggregate(
            simple_table, ["g"], [("c", "COUNT", None)], weights=weights
        )
        lookup = dict(zip(out["g"], out["c"]))
        assert lookup["a"] == 4.0 and lookup["c"] == 4.0

    def test_no_keys_single_row(self, simple_table):
        values = simple_table.column("x").values_numeric()
        out = group_by_aggregate(simple_table, [], [("s", "SUM", values)])
        assert out.num_rows == 1
        assert out["s"][0] == pytest.approx(136.0)


class TestCubeGroupingSets:
    def test_two_attrs(self):
        sets = cube_grouping_sets(["a", "b"])
        assert sets == [("a", "b"), ("a",), ("b",), ()]

    def test_three_attrs_count(self):
        sets = cube_grouping_sets(["a", "b", "c"])
        assert len(sets) == 8
        assert sets[0] == ("a", "b", "c")
        assert sets[-1] == ()

    def test_sizes_descend(self):
        sets = cube_grouping_sets(["a", "b", "c"])
        sizes = [len(s) for s in sets]
        assert sizes == sorted(sizes, reverse=True)

    def test_single_attr(self):
        assert cube_grouping_sets(["x"]) == [("x",), ()]

    def test_empty(self):
        assert cube_grouping_sets([]) == [()]

    def test_all_marker_is_string(self):
        assert isinstance(ALL_MARKER, str)


class TestGroupByOnDataset(object):
    def test_matches_reference_on_openaq(self, openaq_small):
        sub = openaq_small.head(2000)
        keys = compute_group_keys(sub, ["country", "parameter"])
        ref = reference_group_by(
            list(sub.iter_rows()), ["country", "parameter"], "value"
        )
        assert keys.num_groups == len(ref)
        values = sub.column("value").values_numeric()
        out = group_by_aggregate(
            sub, ["country", "parameter"], [("avg", "AVG", values)]
        )
        got = {
            (c, p): v
            for c, p, v in zip(out["country"], out["parameter"], out["avg"])
        }
        for key, vals in ref.items():
            assert got[key] == pytest.approx(np.mean(vals))


class TestCombinedCodeOverflow:
    """Wide/high-cardinality keys must not wrap the combined int64 code."""

    def _wide_table(self, num_rows=1000, num_cols=8, seed=11):
        # Each column draws from ~num_rows distinct large ints, so the
        # cardinality product is ~num_rows**num_cols >> 2**63 while the
        # table itself stays tiny.
        rng = np.random.default_rng(seed)
        data = {
            f"k{i}": rng.integers(0, 2**40, size=num_rows)
            for i in range(num_cols)
        }
        return Table.from_pydict(data)

    def test_routes_to_sorted_path(self, monkeypatch):
        import repro.engine.groupby as gb

        table = self._wide_table()
        called = {}
        real = gb._group_keys_from_codes

        def spy(by, codes, n):
            called["hit"] = True
            return real(by, codes, n)

        monkeypatch.setattr(gb, "_group_keys_from_codes", spy)
        compute_group_keys(table, list(table.column_names))
        assert called.get("hit"), "overflow-prone keys should sort"

    def test_matches_reference_groups(self):
        table = self._wide_table()
        by = list(table.column_names)
        keys = compute_group_keys(table, by)
        rows = [
            tuple(row[c] for c in by) for row in table.iter_rows()
        ]
        expected = {}
        for gid, row in zip(keys.gids, rows):
            expected.setdefault(row, set()).add(int(gid))
        # one dense gid per distinct key tuple, no aliasing
        assert keys.num_groups == len(set(rows))
        assert all(len(gids) == 1 for gids in expected.values())
        assigned = {next(iter(g)) for g in expected.values()}
        assert assigned == set(range(keys.num_groups))

    def test_agrees_with_sorted_variant(self):
        from repro.engine.groupby import compute_group_keys_sorted

        table = self._wide_table(num_rows=900, num_cols=8, seed=7)
        by = list(table.column_names)
        hashed = compute_group_keys(table, by)
        srt = compute_group_keys_sorted(table, by)
        assert hashed.num_groups == srt.num_groups
        assert np.array_equal(hashed.gids, srt.gids)
        assert np.array_equal(hashed.representative, srt.representative)

    def test_small_keys_still_hash(self, simple_table, monkeypatch):
        import repro.engine.groupby as gb

        called = {}
        real = gb._group_keys_from_codes

        def spy(by, codes, n):
            called["hit"] = True
            return real(by, codes, n)

        monkeypatch.setattr(gb, "_group_keys_from_codes", spy)
        keys = compute_group_keys(simple_table, ["g", "h"])
        assert keys.num_groups == 5
        assert "hit" not in called
