"""Composed-query integration tests for the SQL layer: the shapes the
paper's queries combine (CTE + join + aggregates + predicates), plus
corner combinations the unit tests don't cover."""

import numpy as np
import pytest

from repro.engine.sql.executor import QueryExecutionError, execute_sql
from repro.engine.table import Table


@pytest.fixture()
def sales():
    return Table.from_pydict(
        {
            "region": ["N", "N", "N", "S", "S", "E", "E", "E", "E"],
            "year": [2020, 2020, 2021, 2020, 2021, 2020, 2021, 2021, 2021],
            "amount": [10.0, 20.0, 35.0, 5.0, 8.0, 100.0, 110.0, 95.0, 105.0],
            "units": [1, 2, 3, 1, 1, 10, 11, 9, 10],
        },
        name="sales",
    )


class TestNestedComposition:
    def test_two_level_subquery(self, sales):
        out = execute_sql(
            """
            SELECT region, AVG(doubled) a FROM
              (SELECT region, amount * 2 AS doubled FROM
                (SELECT region, amount FROM sales WHERE year = 2021))
            GROUP BY region ORDER BY region
            """,
            {"sales": sales},
        )
        lookup = dict(zip(out["region"], out["a"]))
        assert lookup["N"] == pytest.approx(70.0)
        assert lookup["E"] == pytest.approx(
            2 * np.mean([110.0, 95.0, 105.0])
        )

    def test_cte_referencing_cte(self, sales):
        out = execute_sql(
            """
            WITH recent AS (SELECT region, amount FROM sales WHERE year = 2021),
                 big AS (SELECT region, amount FROM recent WHERE amount > 50)
            SELECT region, COUNT(*) c FROM big GROUP BY region
            """,
            {"sales": sales},
        )
        assert dict(zip(out["region"], out["c"])) == {"E": 3.0}

    def test_paper_aq1_shape(self, sales):
        """CTE per year, join, difference of aggregates."""
        out = execute_sql(
            """
            WITH y20 AS (
                SELECT region, AVG(amount) m, COUNT_IF(amount > 15) k
                FROM sales WHERE year = 2020 GROUP BY region),
            y21 AS (
                SELECT region, AVG(amount) m, COUNT_IF(amount > 15) k
                FROM sales WHERE year = 2021 GROUP BY region)
            SELECT region, y21.m - y20.m AS dm, y21.k - y20.k AS dk
            FROM y20 JOIN y21 ON y20.region = y21.region
            ORDER BY region
            """,
            {"sales": sales},
        )
        lookup = {
            r: (dm, dk)
            for r, dm, dk in zip(out["region"], out["dm"], out["dk"])
        }
        # E: mean 100 -> (110+95+105)/3; count>15: 1 -> 3.
        assert lookup["E"][0] == pytest.approx(np.mean([110, 95, 105]) - 100)
        assert lookup["E"][1] == pytest.approx(2.0)
        # N: 15 -> 35; count>15: 1 -> 1.
        assert lookup["N"] == (pytest.approx(20.0), pytest.approx(0.0))

    def test_three_way_join(self):
        a = Table.from_pydict({"k": [1, 2], "x": [10, 20]})
        b = Table.from_pydict({"k": [1, 2], "y": [100, 200]})
        c = Table.from_pydict({"k": [1, 2], "z": [1000, 2000]})
        out = execute_sql(
            "SELECT x, y, z FROM A JOIN B ON A.k = B.k "
            "JOIN C ON B.k = C.k ORDER BY x",
            {"A": a, "B": b, "C": c},
        )
        assert list(out["z"]) == [1000, 2000]


class TestMixedFeatures:
    def test_group_by_expression_and_order(self, sales):
        out = execute_sql(
            """
            SELECT CONCAT(region, '_', year) period, SUM(amount) s
            FROM sales GROUP BY region, year ORDER BY s DESC LIMIT 2
            """,
            {"sales": sales},
        )
        assert list(out["period"]) == ["E_2021", "E_2020"]

    def test_having_with_expression_over_aggs(self, sales):
        out = execute_sql(
            """
            SELECT region, SUM(amount) / COUNT(*) avg_amt
            FROM sales GROUP BY region
            HAVING SUM(amount) / COUNT(*) > 20 ORDER BY region
            """,
            {"sales": sales},
        )
        assert list(out["region"]) == ["E", "N"]

    def test_where_with_in_and_between(self, sales):
        out = execute_sql(
            """
            SELECT COUNT(*) c FROM sales
            WHERE region IN ('N', 'S') AND amount BETWEEN 8 AND 20
            """,
            {"sales": sales},
        )
        assert out["c"][0] == 3.0  # 10, 20 (N) and 8 (S)

    def test_arithmetic_between_aggregates_of_different_columns(self, sales):
        out = execute_sql(
            """
            SELECT region, SUM(amount) / SUM(units) price
            FROM sales GROUP BY region ORDER BY region
            """,
            {"sales": sales},
        )
        lookup = dict(zip(out["region"], out["price"]))
        assert lookup["N"] == pytest.approx(65.0 / 6.0)

    def test_not_in_predicate(self, sales):
        out = execute_sql(
            "SELECT COUNT(*) c FROM sales WHERE region NOT IN ('E')",
            {"sales": sales},
        )
        assert out["c"][0] == 5.0

    def test_boolean_literals_in_predicate(self, sales):
        out = execute_sql(
            "SELECT COUNT(*) c FROM sales WHERE TRUE", {"sales": sales}
        )
        assert out["c"][0] == 9.0
        out = execute_sql(
            "SELECT COUNT(*) c FROM sales WHERE FALSE", {"sales": sales}
        )
        assert out["c"][0] == 0.0

    def test_distinct_tolerated_on_group_by(self, sales):
        out = execute_sql(
            "SELECT DISTINCT region, COUNT(*) c FROM sales GROUP BY region",
            {"sales": sales},
        )
        assert out.num_rows == 3


class TestCubeComposition:
    def test_cube_with_predicate(self, sales):
        out = execute_sql(
            """
            SELECT region, year, SUM(amount) s FROM sales
            WHERE units >= 2 GROUP BY region, year WITH CUBE
            """,
            {"sales": sales},
        )
        from repro.engine.groupby import ALL_MARKER

        total = [
            s
            for r, y, s in zip(out["region"], out["year"], out["s"])
            if r == ALL_MARKER and y == ALL_MARKER
        ]
        # rows with units >= 2: 20+35+100+110+95+105 = 465.
        assert total == [465.0]

    def test_cube_with_having(self, sales):
        out = execute_sql(
            """
            SELECT region, year, COUNT(*) c FROM sales
            GROUP BY region, year WITH CUBE
            """,
            {"sales": sales},
        )
        # 6 finest (region,year) + 3 regions + 2 years + 1 total = 12.
        assert out.num_rows == 12

    def test_three_attribute_cube(self):
        table = Table.from_pydict(
            {
                "a": ["x", "x", "y"],
                "b": [1, 2, 1],
                "c": ["p", "p", "q"],
                "v": [1.0, 2.0, 3.0],
            }
        )
        out = execute_sql(
            "SELECT a, b, c, SUM(v) s FROM T GROUP BY a, b, c WITH CUBE",
            {"T": table},
        )
        # Distinct keys per grouping set: (a,b,c)=3, (a,b)=3, (a,c)=2,
        # (b,c)=3, (a)=2, (b)=2, (c)=2, ()=1.
        assert out.num_rows == 3 + 3 + 2 + 3 + 2 + 2 + 2 + 1


class TestErrorPaths:
    def test_order_by_unknown_column(self, sales):
        with pytest.raises(QueryExecutionError):
            execute_sql(
                "SELECT region FROM sales ORDER BY nope", {"sales": sales}
            )

    def test_join_without_cross_side_keys(self, sales):
        other = Table.from_pydict({"kk": ["N"], "w": [1]})
        with pytest.raises(QueryExecutionError, match="equality"):
            execute_sql(
                "SELECT region FROM sales JOIN O ON region = region",
                {"sales": sales, "O": other},
            )

    def test_string_aggregation_rejected(self, sales):
        with pytest.raises(QueryExecutionError, match="string"):
            execute_sql(
                "SELECT SUM(region) FROM sales", {"sales": sales}
            )
