"""Physical operators: group strategies, cost rule, pipeline equality."""

import numpy as np
import pytest

from repro.engine.groupby import compute_group_keys, compute_group_keys_sorted
from repro.engine.sql.executor import execute_sql, plan_query
from repro.engine.sql.operators import (
    HashGroupStrategy,
    SortGroupStrategy,
    choose_group_strategy,
)
from repro.engine.sql.parser import parse_query
from repro.engine.table import Table


def _assert_tables_equal(a: Table, b: Table):
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        da, db = a.column(name).decode(), b.column(name).decode()
        if da.dtype.kind == "f":
            same = (da == db) | (np.isnan(da) & np.isnan(db))
            assert same.all(), name
        else:
            assert (da == db).all(), name


class TestSortedGroupKeys:
    @pytest.mark.parametrize("by", [["g"], ["g", "h"], ["h", "g"], []])
    def test_matches_hash_on_simple_table(self, simple_table, by):
        hashed = compute_group_keys(simple_table, by)
        sorted_ = compute_group_keys_sorted(simple_table, by)
        assert hashed.num_groups == sorted_.num_groups
        assert (hashed.gids == sorted_.gids).all()
        assert (hashed.representative == sorted_.representative).all()

    def test_matches_hash_on_dataset(self, openaq_small):
        sub = openaq_small.head(5000)
        by = ["country", "parameter", "unit"]
        hashed = compute_group_keys(sub, by)
        sorted_ = compute_group_keys_sorted(sub, by)
        assert (hashed.gids == sorted_.gids).all()
        assert (hashed.representative == sorted_.representative).all()

    def test_empty_table(self):
        table = Table.from_pydict({"a": []})
        keys = compute_group_keys_sorted(table, ["a"])
        assert keys.num_groups == 0


class TestCostRule:
    def test_single_key_hashes(self, simple_table):
        assert choose_group_strategy(simple_table, ["g"]) is HashGroupStrategy

    def test_narrow_keys_hash(self, simple_table):
        assert (
            choose_group_strategy(simple_table, ["g", "h"])
            is HashGroupStrategy
        )

    def test_wide_keys_sort(self, simple_table):
        keys = ["g", "h", "x", "y"]
        assert choose_group_strategy(simple_table, keys) is SortGroupStrategy

    def test_overflow_risk_sorts(self, simple_table, monkeypatch):
        from repro.engine.sql import operators

        # With a tiny key-space limit the same two-column key must be
        # routed to the sort path.
        monkeypatch.setattr(operators, "_HASH_KEYSPACE_LIMIT", 2)
        assert (
            choose_group_strategy(simple_table, ["g", "h"])
            is SortGroupStrategy
        )


class TestStrategyInterchangeability:
    QUERIES = [
        "SELECT g, h, SUM(x) s, COUNT(*) c FROM T GROUP BY g, h",
        "SELECT g, h, AVG(x) a FROM T GROUP BY g, h WITH CUBE",
        "SELECT g, h, MEDIAN(x) m FROM T GROUP BY g, h ORDER BY g, h",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_hash_and_sort_agree(self, simple_table, sql):
        query = parse_query(sql)
        hashed = plan_query(query, group_strategy="hash").run(
            {"T": simple_table}
        )
        sorted_ = plan_query(query, group_strategy="sort").run(
            {"T": simple_table}
        )
        _assert_tables_equal(hashed, sorted_)

    def test_agree_on_dataset(self, openaq_small):
        sub = openaq_small.head(8000)
        sql = (
            "SELECT country, parameter, AVG(value) a, COUNT(*) c "
            "FROM OpenAQ GROUP BY country, parameter"
        )
        query = parse_query(sql)
        hashed = plan_query(query, group_strategy="hash").run({"OpenAQ": sub})
        sorted_ = plan_query(query, group_strategy="sort").run({"OpenAQ": sub})
        _assert_tables_equal(hashed, sorted_)

    def test_weighted_agree(self, simple_table):
        weighted = simple_table.with_column(
            "__weight__",
            simple_table.column("y"),
        )
        query = parse_query("SELECT g, h, SUM(x) s FROM T GROUP BY g, h")
        hashed = plan_query(query, "__weight__", "hash").run({"T": weighted})
        sorted_ = plan_query(query, "__weight__", "sort").run({"T": weighted})
        _assert_tables_equal(hashed, sorted_)


class TestOrderByBooleanKey:
    def test_descending_boolean_expression(self, simple_table):
        out = execute_sql(
            "SELECT g, x FROM T ORDER BY x > 5 DESC, x ASC",
            {"T": simple_table},
        )
        xs = list(out["x"])
        # rows with x > 5 first, each block ascending by x
        assert xs == [10.0, 20.0, 100.0, 1.0, 2.0, 3.0]


class TestPlanExecutionEquivalence:
    """plan_query + run is exactly execute_sql (the public contract)."""

    QUERIES = [
        "SELECT g, COUNT(*) c FROM T GROUP BY g HAVING COUNT(*) > 1",
        "SELECT UPPER(g) ug, SUM(x) s FROM T GROUP BY UPPER(g)",
        "WITH f AS (SELECT g, x FROM T WHERE x > 1) "
        "SELECT g, SUM(x) s FROM f GROUP BY g ORDER BY s DESC",
        "SELECT t.g, u.m FROM T t "
        "JOIN (SELECT g, MAX(x) m FROM T GROUP BY g) u ON t.g = u.g",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_equivalent(self, simple_table, sql):
        query = parse_query(sql)
        via_plan = plan_query(query).run({"T": simple_table})
        via_api = execute_sql(sql, {"T": simple_table})
        _assert_tables_equal(via_plan, via_api)
