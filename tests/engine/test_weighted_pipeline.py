"""Weight-column propagation through the operator pipeline.

The Horvitz-Thompson contract: with per-row weights ``w``, ``SUM(x)``
estimates ``sum(w * x)``, ``COUNT(*)`` estimates ``sum(w)``, ``AVG``
their ratio — and the weight column must survive filters, projections,
subqueries, CTEs and joins untouched until the first aggregation
consumes it. Every expectation here is computed by hand from the
fixture rows, so any regression in the planner's weighting rewrite or
the operators' pass-through logic shows up as a numeric mismatch.
"""

import numpy as np
import pytest

from repro.engine.groupby import ALL_MARKER
from repro.engine.sql.executor import execute_sql
from repro.engine.table import Table

W = "__weight__"


@pytest.fixture()
def sample():
    """A hand-built 'sample' with non-uniform HT weights."""
    return Table.from_pydict(
        {
            "g": ["a", "a", "b", "b", "c"],
            "h": [1, 2, 1, 2, 1],
            "x": [10.0, 20.0, 2.0, 4.0, 100.0],
            W: [2.0, 2.0, 3.0, 3.0, 5.0],
        },
        name="S",
    )


@pytest.fixture()
def dimension():
    return Table.from_pydict(
        {"g": ["a", "b", "c"], "label": ["A", "B", "C"]}, name="D"
    )


def _lookup(table, key_col, value_col):
    return dict(zip(table[key_col], table[value_col]))


class TestWeightedAggregates:
    def test_sum_count_avg(self, sample):
        out = execute_sql(
            "SELECT g, SUM(x) s, COUNT(*) c, AVG(x) a FROM S GROUP BY g",
            {"S": sample},
            weight_column=W,
        )
        s = _lookup(out, "g", "s")
        c = _lookup(out, "g", "c")
        a = _lookup(out, "g", "a")
        # group a: 2*10 + 2*20 = 60 over weight 4
        assert s["a"] == pytest.approx(60.0)
        assert c["a"] == pytest.approx(4.0)
        assert a["a"] == pytest.approx(15.0)
        # group b: 3*2 + 3*4 = 18 over weight 6
        assert s["b"] == pytest.approx(18.0)
        assert c["b"] == pytest.approx(6.0)
        assert a["b"] == pytest.approx(3.0)
        # group c: 5*100 = 500 over weight 5
        assert s["c"] == pytest.approx(500.0)
        assert c["c"] == pytest.approx(5.0)

    def test_filter_keeps_weights(self, sample):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM S WHERE x < 50 GROUP BY g",
            {"S": sample},
            weight_column=W,
        )
        c = _lookup(out, "g", "c")
        assert c["a"] == pytest.approx(4.0)
        assert c["b"] == pytest.approx(6.0)
        assert "c" not in c


class TestWeightedSubqueries:
    def test_subquery_projection_carries_weight(self, sample):
        out = execute_sql(
            "SELECT g, SUM(x) s FROM (SELECT g, x FROM S WHERE x > 3) i "
            "GROUP BY g",
            {"S": sample},
            weight_column=W,
        )
        s = _lookup(out, "g", "s")
        assert s["a"] == pytest.approx(60.0)
        assert s["b"] == pytest.approx(12.0)  # only x=4 row survives: 3*4
        assert s["c"] == pytest.approx(500.0)

    def test_cte_carries_weight(self, sample):
        out = execute_sql(
            "WITH f AS (SELECT g, h, x FROM S) "
            "SELECT h, COUNT(*) c FROM f GROUP BY h",
            {"S": sample},
            weight_column=W,
        )
        c = _lookup(out, "h", "c")
        assert c[1] == pytest.approx(2.0 + 3.0 + 5.0)
        assert c[2] == pytest.approx(2.0 + 3.0)

    def test_weight_consumed_at_first_aggregation(self, sample):
        # The inner aggregate consumes the weights; the outer block sees
        # exact (already scaled) numbers and must NOT rescale them.
        out = execute_sql(
            "WITH per_g AS (SELECT g, SUM(x) s FROM S GROUP BY g) "
            "SELECT COUNT(*) n, SUM(s) total FROM per_g",
            {"S": sample},
            weight_column=W,
        )
        assert out["n"][0] == pytest.approx(3.0)
        assert out["total"][0] == pytest.approx(60.0 + 18.0 + 500.0)


class TestWeightedJoins:
    def test_sample_join_dimension(self, sample, dimension):
        out = execute_sql(
            "SELECT d.label, SUM(s.x) total FROM S s "
            "JOIN D d ON s.g = d.g GROUP BY d.label",
            {"S": sample, "D": dimension},
            weight_column=W,
        )
        total = _lookup(out, "label", "total")
        assert total["A"] == pytest.approx(60.0)
        assert total["B"] == pytest.approx(18.0)
        assert total["C"] == pytest.approx(500.0)

    def test_joining_two_weighted_samples_refused(self, sample):
        from repro.engine.sql.executor import QueryExecutionError

        other = Table.from_pydict(
            {"g": ["a"], "y": [1.0], W: [2.0]}, name="O"
        )
        with pytest.raises(QueryExecutionError, match="future work"):
            execute_sql(
                "SELECT COUNT(*) c FROM S s JOIN O o ON s.g = o.g",
                {"S": sample, "O": other},
                weight_column=W,
            )


class TestWeightedCube:
    def test_cube_scales_every_grouping_set(self, sample):
        out = execute_sql(
            "SELECT g, h, SUM(x) s FROM S GROUP BY g, h WITH CUBE",
            {"S": sample},
            weight_column=W,
        )
        cells = {
            (g, h): v
            for g, h, v in zip(out["g"], out["h"], out["s"])
        }
        # finest cells
        assert cells[("a", "1")] == pytest.approx(20.0)
        assert cells[("a", "2")] == pytest.approx(40.0)
        assert cells[("b", "1")] == pytest.approx(6.0)
        assert cells[("b", "2")] == pytest.approx(12.0)
        # one-attribute roll-ups
        assert cells[("a", ALL_MARKER)] == pytest.approx(60.0)
        assert cells[(ALL_MARKER, "1")] == pytest.approx(20.0 + 6.0 + 500.0)
        # grand total
        assert cells[(ALL_MARKER, ALL_MARKER)] == pytest.approx(578.0)

    def test_cube_weighted_count(self, sample):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM S GROUP BY g WITH CUBE",
            {"S": sample},
            weight_column=W,
        )
        cells = dict(zip(out["g"], out["c"]))
        assert cells[ALL_MARKER] == pytest.approx(15.0)


class TestUnweightedBaseline:
    """Without weight_column the same queries are exact — guard that the
    weighting rewrite is opt-in."""

    def test_no_weight_column_is_exact(self, sample):
        out = execute_sql(
            "SELECT g, COUNT(*) c, SUM(x) s FROM S GROUP BY g",
            {"S": sample},
        )
        c = _lookup(out, "g", "c")
        s = _lookup(out, "g", "s")
        assert c["a"] == 2.0 and s["a"] == 30.0

    def test_missing_weight_column_ignored(self, sample):
        # weight_column set but absent from the table: exact execution.
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM S GROUP BY g",
            {"S": sample.without_columns([W])},
            weight_column=W,
        )
        assert _lookup(out, "g", "c")["a"] == 2.0
