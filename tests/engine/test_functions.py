import datetime as dt

import numpy as np
import pytest

from repro.engine.functions import (
    SCALAR_FUNCTIONS,
    register_scalar_function,
    sql_concat,
    sql_day,
    sql_dayofweek,
    sql_hour,
    sql_if,
    sql_minute,
    sql_month,
    sql_year,
)


def epoch(*args) -> int:
    return int(
        dt.datetime(*args, tzinfo=dt.timezone.utc).timestamp()
    )


class TestCalendarFunctions:
    def test_year(self):
        ts = np.asarray([epoch(2015, 1, 1), epoch(2018, 12, 31, 23, 59)])
        assert list(sql_year(ts)) == [2015, 2018]

    def test_month(self):
        ts = np.asarray([epoch(2017, 1, 15), epoch(2017, 12, 1)])
        assert list(sql_month(ts)) == [1, 12]

    def test_day(self):
        ts = np.asarray([epoch(2017, 3, 1), epoch(2017, 3, 31)])
        assert list(sql_day(ts)) == [1, 31]

    def test_hour(self):
        ts = np.asarray([epoch(2017, 3, 1, 0), epoch(2017, 3, 1, 23)])
        assert list(sql_hour(ts)) == [0, 23]

    def test_minute(self):
        ts = np.asarray([epoch(2017, 3, 1, 5, 42)])
        assert list(sql_minute(ts)) == [42]

    def test_dayofweek_convention(self):
        # 1970-01-01 was a Thursday => 5 in the 1=Sunday convention.
        assert sql_dayofweek(np.asarray([0]))[0] == 5
        # 2017-01-01 was a Sunday.
        assert sql_dayofweek(np.asarray([epoch(2017, 1, 1)]))[0] == 1

    def test_leap_year_day(self):
        ts = np.asarray([epoch(2016, 2, 29, 12)])
        assert sql_month(ts)[0] == 2
        assert sql_day(ts)[0] == 29

    def test_calendar_roundtrip_many(self):
        rng = np.random.default_rng(0)
        ts = rng.integers(0, 2_000_000_000, size=500)
        years = sql_year(ts)
        months = sql_month(ts)
        days = sql_day(ts)
        hours = sql_hour(ts)
        for t, y, m, d, h in zip(ts, years, months, days, hours):
            expected = dt.datetime.fromtimestamp(int(t), dt.timezone.utc)
            assert (y, m, d, h) == (
                expected.year,
                expected.month,
                expected.day,
                expected.hour,
            )


class TestStringFunctions:
    def test_concat_strings(self):
        out = sql_concat(
            np.asarray(["a", "b"], dtype=object),
            np.asarray(["_x", "_y"], dtype=object),
        )
        assert list(out) == ["a_x", "b_y"]

    def test_concat_mixed_numeric(self):
        out = sql_concat(
            np.asarray([1, 2]),
            np.asarray(["_", "_"], dtype=object),
            np.asarray([2017, 2018]),
        )
        assert list(out) == ["1_2017", "2_2018"]

    def test_concat_integral_floats_render_without_decimal(self):
        out = sql_concat(np.asarray([3.0, 12.0]))
        assert list(out) == ["3", "12"]

    def test_concat_requires_args(self):
        with pytest.raises(ValueError):
            sql_concat()

    def test_upper_lower(self):
        up = SCALAR_FUNCTIONS["UPPER"](np.asarray(["ab"], dtype=object))
        lo = SCALAR_FUNCTIONS["LOWER"](np.asarray(["AB"], dtype=object))
        assert list(up) == ["AB"]
        assert list(lo) == ["ab"]


class TestConditionalFunctions:
    def test_if(self):
        out = sql_if(
            np.asarray([True, False]),
            np.asarray([1, 1]),
            np.asarray([0, 0]),
        )
        assert list(out) == [1, 0]

    def test_coalesce(self):
        out = SCALAR_FUNCTIONS["COALESCE"](
            np.asarray([np.nan, 2.0]), np.asarray([1.0, 9.0])
        )
        assert list(out) == [1.0, 2.0]

    def test_least_greatest(self):
        a = np.asarray([1.0, 5.0])
        b = np.asarray([3.0, 2.0])
        assert list(SCALAR_FUNCTIONS["LEAST"](a, b)) == [1.0, 2.0]
        assert list(SCALAR_FUNCTIONS["GREATEST"](a, b)) == [3.0, 5.0]


class TestMathFunctions:
    def test_sqrt_negative_is_nan(self):
        out = SCALAR_FUNCTIONS["SQRT"](np.asarray([-1.0, 4.0]))
        assert np.isnan(out[0]) and out[1] == 2.0

    def test_round_with_digits(self):
        out = SCALAR_FUNCTIONS["ROUND"](
            np.asarray([1.2345]), np.asarray([2])
        )
        assert out[0] == pytest.approx(1.23)

    def test_round_without_digits(self):
        assert SCALAR_FUNCTIONS["ROUND"](np.asarray([1.6]))[0] == 2.0

    def test_floor_ceil_power_sign(self):
        assert SCALAR_FUNCTIONS["FLOOR"](np.asarray([1.7]))[0] == 1.0
        assert SCALAR_FUNCTIONS["CEIL"](np.asarray([1.2]))[0] == 2.0
        assert SCALAR_FUNCTIONS["POWER"](np.asarray([2.0]), np.asarray([3.0]))[0] == 8.0
        assert SCALAR_FUNCTIONS["SIGN"](np.asarray([-5.0]))[0] == -1.0

    def test_ln(self):
        out = SCALAR_FUNCTIONS["LN"](np.asarray([np.e]))
        assert out[0] == pytest.approx(1.0)


class TestRegistry:
    def test_register_new_function(self):
        register_scalar_function("DOUBLE_TEST", lambda a: a * 2)
        try:
            out = SCALAR_FUNCTIONS["DOUBLE_TEST"](np.asarray([2.0]))
            assert out[0] == 4.0
        finally:
            del SCALAR_FUNCTIONS["DOUBLE_TEST"]

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_scalar_function("year", lambda a: a)
