import numpy as np
import pytest

from repro.engine.schema import ColumnSpec, DType, Schema, infer_dtype, numpy_dtype_for


class TestDType:
    def test_numeric_flags(self):
        assert DType.INT64.is_numeric
        assert DType.FLOAT64.is_numeric
        assert DType.TIMESTAMP.is_numeric
        assert not DType.STRING.is_numeric
        assert not DType.BOOL.is_numeric

    def test_storage_dtypes(self):
        assert numpy_dtype_for(DType.INT64) == np.dtype(np.int64)
        assert numpy_dtype_for(DType.FLOAT64) == np.dtype(np.float64)
        assert numpy_dtype_for(DType.BOOL) == np.dtype(np.bool_)
        assert numpy_dtype_for(DType.STRING) == np.dtype(np.int32)
        assert numpy_dtype_for(DType.TIMESTAMP) == np.dtype(np.int64)

    def test_storage_property_matches_function(self):
        for dtype in DType:
            assert dtype.storage_dtype == numpy_dtype_for(dtype)


class TestInferDtype:
    def test_infer_int(self):
        assert infer_dtype([1, 2, 3]) is DType.INT64

    def test_infer_float(self):
        assert infer_dtype([1.5, 2.5]) is DType.FLOAT64

    def test_infer_bool(self):
        assert infer_dtype([True, False]) is DType.BOOL

    def test_infer_string(self):
        assert infer_dtype(["a", "b"]) is DType.STRING

    def test_infer_object_strings(self):
        arr = np.asarray(["x", "y"], dtype=object)
        assert infer_dtype(arr) is DType.STRING

    def test_infer_datetime(self):
        arr = np.asarray(["2020-01-01"], dtype="datetime64[s]")
        assert infer_dtype(arr) is DType.TIMESTAMP


class TestColumnSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ColumnSpec("", DType.INT64)

    def test_frozen(self):
        spec = ColumnSpec("a", DType.INT64)
        with pytest.raises(AttributeError):
            spec.name = "b"


class TestSchema:
    def test_basic_lookup(self):
        schema = Schema(
            [ColumnSpec("a", DType.INT64), ColumnSpec("b", DType.STRING)]
        )
        assert len(schema) == 2
        assert schema.names == ("a", "b")
        assert "a" in schema
        assert "z" not in schema
        assert schema["b"].dtype is DType.STRING
        assert schema.dtype_of("a") is DType.INT64
        assert schema.index_of("b") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([ColumnSpec("a", DType.INT64), ColumnSpec("a", DType.BOOL)])

    def test_missing_column_message_lists_available(self):
        schema = Schema([ColumnSpec("a", DType.INT64)])
        with pytest.raises(KeyError, match="available: a"):
            schema["missing"]
        with pytest.raises(KeyError):
            schema.index_of("missing")

    def test_equality(self):
        cols = [ColumnSpec("a", DType.INT64)]
        assert Schema(cols) == Schema(cols)
        assert Schema(cols) != Schema([ColumnSpec("a", DType.FLOAT64)])

    def test_iteration_order(self):
        schema = Schema(
            [ColumnSpec(n, DType.INT64) for n in ("x", "y", "z")]
        )
        assert [c.name for c in schema] == ["x", "y", "z"]

    def test_repr_mentions_types(self):
        schema = Schema([ColumnSpec("a", DType.STRING)])
        assert "a:string" in repr(schema)
