import numpy as np
import pytest

from repro.engine.groupby import ALL_MARKER
from repro.engine.sql.executor import QueryExecutionError, execute_sql
from repro.engine.table import Table


@pytest.fixture()
def tables(simple_table):
    return {"T": simple_table}


def rows_of(table):
    return list(table.iter_rows())


class TestProjection:
    def test_select_columns(self, tables):
        out = execute_sql("SELECT g, x FROM T", tables)
        assert out.column_names == ("g", "x")
        assert out.num_rows == 6

    def test_computed_column(self, tables):
        out = execute_sql("SELECT x * 2 AS doubled FROM T", tables)
        assert list(out["doubled"]) == [20.0, 40.0, 2.0, 4.0, 6.0, 200.0]

    def test_output_name_defaults_to_sql(self, tables):
        out = execute_sql("SELECT x + 1 FROM T", tables)
        assert out.column_names == ("(x + 1)",)

    def test_where_filter(self, tables):
        out = execute_sql("SELECT g FROM T WHERE x > 5", tables)
        assert list(out["g"]) == ["a", "a", "c"]

    def test_where_string_predicate(self, tables):
        out = execute_sql("SELECT x FROM T WHERE g = 'b'", tables)
        assert list(out["x"]) == [1.0, 2.0, 3.0]

    def test_no_from(self, tables):
        out = execute_sql("SELECT 1 + 1 AS two", tables)
        assert out.num_rows == 1
        assert out["two"][0] == 2

    def test_unknown_table(self, tables):
        with pytest.raises(QueryExecutionError, match="unknown table"):
            execute_sql("SELECT a FROM missing", tables)

    def test_unknown_column(self, tables):
        with pytest.raises(QueryExecutionError, match="cannot resolve"):
            execute_sql("SELECT nope FROM T", tables)

    def test_alias_strip_via_binding(self, tables):
        out = execute_sql("SELECT t.x FROM T t WHERE t.g = 'c'", tables)
        assert list(out["x"]) == [100.0]


class TestAggregation:
    def test_group_by_avg(self, tables):
        out = execute_sql(
            "SELECT g, AVG(x) a FROM T GROUP BY g ORDER BY g", tables
        )
        assert list(out["g"]) == ["a", "b", "c"]
        assert list(out["a"]) == [15.0, 2.0, 100.0]

    def test_group_by_multiple_keys(self, tables):
        out = execute_sql(
            "SELECT g, h, COUNT(*) c FROM T GROUP BY g, h ORDER BY g, h",
            tables,
        )
        assert out.num_rows == 5
        lookup = {
            (g, h): c for g, h, c in zip(out["g"], out["h"], out["c"])
        }
        assert lookup[("b", 1)] == 2.0

    def test_full_table_aggregate(self, tables):
        out = execute_sql("SELECT SUM(x) s, COUNT(*) c FROM T", tables)
        assert out.num_rows == 1
        assert out["s"][0] == 136.0
        assert out["c"][0] == 6.0

    def test_expression_over_aggregates(self, tables):
        out = execute_sql(
            "SELECT g, SUM(x) / COUNT(*) m FROM T GROUP BY g ORDER BY g",
            tables,
        )
        assert list(out["m"]) == [15.0, 2.0, 100.0]

    def test_aggregate_of_expression(self, tables):
        out = execute_sql(
            "SELECT g, SUM(x * 2) s FROM T GROUP BY g ORDER BY g", tables
        )
        assert list(out["s"]) == [60.0, 12.0, 200.0]

    def test_count_if(self, tables):
        out = execute_sql(
            "SELECT g, COUNT_IF(x >= 10) c FROM T GROUP BY g ORDER BY g",
            tables,
        )
        assert list(out["c"]) == [2.0, 0.0, 1.0]

    def test_scalar_function_of_group_key(self, tables):
        out = execute_sql(
            "SELECT CONCAT(g, '!') k, COUNT(*) c FROM T GROUP BY g ORDER BY k",
            tables,
        )
        assert list(out["k"]) == ["a!", "b!", "c!"]

    def test_computed_group_key(self, tables):
        out = execute_sql(
            "SELECT COUNT(*) c FROM T GROUP BY x > 5", tables
        )
        assert sorted(out["c"]) == [3.0, 3.0]

    def test_group_by_alias(self, tables):
        out = execute_sql(
            "SELECT CONCAT(g, h) gk, COUNT(*) c FROM T GROUP BY gk",
            tables,
        )
        assert out.num_rows == 5

    def test_non_grouped_column_rejected(self, tables):
        with pytest.raises(QueryExecutionError, match="GROUP BY"):
            execute_sql("SELECT x, COUNT(*) FROM T GROUP BY g", tables)

    def test_having(self, tables):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM T GROUP BY g HAVING COUNT(*) > 1 "
            "ORDER BY g",
            tables,
        )
        assert list(out["g"]) == ["a", "b"]

    def test_having_on_key(self, tables):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM T GROUP BY g HAVING g <> 'b'",
            tables,
        )
        assert set(out["g"]) == {"a", "c"}

    def test_min_max_median(self, tables):
        out = execute_sql(
            "SELECT g, MIN(x) lo, MAX(x) hi, MEDIAN(x) mid "
            "FROM T GROUP BY g ORDER BY g",
            tables,
        )
        assert list(out["lo"]) == [10.0, 1.0, 100.0]
        assert list(out["hi"]) == [20.0, 3.0, 100.0]
        assert list(out["mid"]) == [15.0, 2.0, 100.0]


class TestOrderLimit:
    def test_order_desc(self, tables):
        out = execute_sql("SELECT x FROM T ORDER BY x DESC", tables)
        assert list(out["x"]) == sorted(out["x"], reverse=True)

    def test_order_by_string(self, tables):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM T GROUP BY g ORDER BY g DESC", tables
        )
        assert list(out["g"]) == ["c", "b", "a"]

    def test_limit(self, tables):
        out = execute_sql("SELECT x FROM T ORDER BY x LIMIT 2", tables)
        assert list(out["x"]) == [1.0, 2.0]

    def test_order_by_two_keys(self, tables):
        out = execute_sql("SELECT g, h FROM T ORDER BY g, h DESC", tables)
        assert list(out["g"]) == ["a", "a", "b", "b", "b", "c"]
        assert list(out["h"])[:2] == [2, 1]


class TestSubqueriesAndCtes:
    def test_subquery_in_from(self, tables):
        out = execute_sql(
            "SELECT g, AVG(d) a FROM "
            "(SELECT g, x * 2 AS d FROM T) GROUP BY g ORDER BY g",
            tables,
        )
        assert list(out["a"]) == [30.0, 4.0, 200.0]

    def test_cte(self, tables):
        out = execute_sql(
            "WITH big AS (SELECT g, x FROM T WHERE x >= 10) "
            "SELECT g, COUNT(*) c FROM big GROUP BY g ORDER BY g",
            tables,
        )
        assert list(out["g"]) == ["a", "c"]

    def test_cte_join(self, tables):
        sql = """
        WITH lo AS (SELECT g, AVG(x) m FROM T WHERE h = 1 GROUP BY g),
             hi AS (SELECT g, AVG(x) m FROM T WHERE h = 2 GROUP BY g)
        SELECT g, hi.m - lo.m diff FROM lo JOIN hi ON lo.g = hi.g
        ORDER BY g
        """
        out = execute_sql(sql, tables)
        # groups with both h=1 and h=2 rows: a (20-10), b (3-1.5)
        lookup = dict(zip(out["g"], out["diff"]))
        assert lookup["a"] == pytest.approx(10.0)
        assert lookup["b"] == pytest.approx(3.0 - 1.5)


class TestJoinExecution:
    def test_join_with_residual_predicate(self):
        t = Table.from_pydict({"k": ["a", "b"], "v": [1, 2]})
        u = Table.from_pydict({"k": ["a", "b"], "w": [10, 20]})
        out = execute_sql(
            "SELECT v, w FROM T JOIN U ON T.k = U.k AND w > 15",
            {"T": t, "U": u},
        )
        assert rows_of(out) == [{"v": 2, "w": 20}]

    def test_join_requires_equality(self):
        t = Table.from_pydict({"k": [1], "v": [1]})
        u = Table.from_pydict({"k": [1], "w": [1]})
        with pytest.raises(QueryExecutionError, match="equality"):
            execute_sql(
                "SELECT v FROM T JOIN U ON T.k > U.k", {"T": t, "U": u}
            )


class TestCube:
    def test_cube_group_count(self, tables):
        out = execute_sql(
            "SELECT g, h, SUM(x) s FROM T GROUP BY g, h WITH CUBE", tables
        )
        # 5 (g,h) + 3 (g) + 2 (h) + 1 () = 11
        assert out.num_rows == 11

    def test_cube_grand_total(self, tables):
        out = execute_sql(
            "SELECT g, h, SUM(x) s FROM T GROUP BY g, h WITH CUBE", tables
        )
        total = [
            s
            for g, h, s in zip(out["g"], out["h"], out["s"])
            if g == ALL_MARKER and h == ALL_MARKER
        ]
        assert total == [136.0]

    def test_cube_partial_group(self, tables):
        out = execute_sql(
            "SELECT g, h, SUM(x) s FROM T GROUP BY g, h WITH CUBE", tables
        )
        by_g = {
            g: s
            for g, h, s in zip(out["g"], out["h"], out["s"])
            if h == ALL_MARKER and g != ALL_MARKER
        }
        assert by_g == {"a": 30.0, "b": 6.0, "c": 100.0}

    def test_cube_consistency_with_plain_groupby(self, tables):
        cube = execute_sql(
            "SELECT g, h, SUM(x) s FROM T GROUP BY g, h WITH CUBE", tables
        )
        plain = execute_sql(
            "SELECT g, h, SUM(x) s FROM T GROUP BY g, h", tables
        )
        finest = {
            (g, h): s
            for g, h, s in zip(cube["g"], cube["h"], cube["s"])
            if ALL_MARKER not in (g, h)
        }
        for g, h, s in zip(plain["g"], plain["h"], plain["s"]):
            assert finest[(str(g), str(h))] == s

    def test_cube_rejects_non_key_items(self, tables):
        with pytest.raises(QueryExecutionError, match="CUBE"):
            execute_sql(
                "SELECT x, SUM(y) FROM T GROUP BY g, h WITH CUBE", tables
            )


class TestWeightedExecution:
    @pytest.fixture()
    def weighted(self, simple_table):
        w = np.asarray([2.0, 2.0, 3.0, 3.0, 3.0, 5.0])
        from repro.engine.schema import DType
        from repro.engine.table import Column

        return {
            "T": simple_table.with_column(
                "__weight__", Column(DType.FLOAT64, w)
            )
        }

    def test_weighted_count(self, weighted):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM T GROUP BY g ORDER BY g",
            weighted,
            weight_column="__weight__",
        )
        assert list(out["c"]) == [4.0, 9.0, 5.0]

    def test_weighted_sum(self, weighted):
        out = execute_sql(
            "SELECT g, SUM(x) s FROM T GROUP BY g ORDER BY g",
            weighted,
            weight_column="__weight__",
        )
        assert list(out["s"]) == [60.0, 18.0, 500.0]

    def test_weighted_avg(self, weighted):
        out = execute_sql(
            "SELECT g, AVG(x) a FROM T GROUP BY g ORDER BY g",
            weighted,
            weight_column="__weight__",
        )
        assert out["a"][0] == pytest.approx(15.0)

    def test_weight_carried_through_subquery(self, weighted):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM (SELECT g FROM T WHERE x > 5) "
            "GROUP BY g ORDER BY g",
            weighted,
            weight_column="__weight__",
        )
        assert list(out["c"]) == [4.0, 5.0]

    def test_missing_weight_column_ignored(self, tables):
        out = execute_sql(
            "SELECT g, COUNT(*) c FROM T GROUP BY g ORDER BY g",
            tables,
            weight_column="__weight__",
        )
        assert list(out["c"]) == [2.0, 3.0, 1.0]
