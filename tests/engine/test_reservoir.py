import numpy as np
import pytest

from repro.engine.reservoir import (
    Reservoir,
    StratifiedReservoir,
    stratified_sample_indices,
    weighted_sample_without_replacement,
)


class TestReservoir:
    def test_fills_up_to_capacity(self, rng):
        res = Reservoir(5, rng)
        for i in range(3):
            res.offer(i)
        assert sorted(res.sample()) == [0, 1, 2]
        assert res.seen == 3

    def test_never_exceeds_capacity(self, rng):
        res = Reservoir(4, rng)
        for i in range(100):
            res.offer(i)
        assert len(res) == 4
        assert res.seen == 100
        assert all(0 <= x < 100 for x in res.sample())

    def test_zero_capacity(self, rng):
        res = Reservoir(0, rng)
        for i in range(10):
            res.offer(i)
        assert res.sample() == []

    def test_negative_capacity_rejected(self, rng):
        with pytest.raises(ValueError):
            Reservoir(-1, rng)

    def test_uniformity(self):
        """Each of 10 items should appear in a size-2 reservoir ~20% of
        the time (chi-square style tolerance)."""
        counts = np.zeros(10)
        trials = 3000
        rng = np.random.default_rng(0)
        for _ in range(trials):
            res = Reservoir(2, rng)
            for i in range(10):
                res.offer(i)
            for item in res.sample():
                counts[item] += 1
        expected = trials * 2 / 10
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))


class TestStratifiedReservoir:
    def test_per_stratum_capacities(self, rng):
        sr = StratifiedReservoir({"a": 2, "b": 3}, rng)
        for i in range(50):
            sr.offer("a", ("a", i))
            sr.offer("b", ("b", i))
            sr.offer("ignored", ("x", i))  # unknown stratum dropped
        samples = sr.samples()
        assert len(samples["a"]) == 2
        assert len(samples["b"]) == 3
        assert all(item[0] == "a" for item in samples["a"])

    def test_getitem(self, rng):
        sr = StratifiedReservoir({"a": 1}, rng)
        sr.offer("a", 42)
        assert sr["a"].sample() == [42]


class TestStratifiedSampleIndices:
    def test_exact_sizes(self, rng):
        gids = np.asarray([0] * 100 + [1] * 50 + [2] * 10)
        out = stratified_sample_indices(gids, [10, 5, 3], rng)
        sampled_gids = gids[out]
        assert (sampled_gids == 0).sum() == 10
        assert (sampled_gids == 1).sum() == 5
        assert (sampled_gids == 2).sum() == 3

    def test_clamps_at_population(self, rng):
        gids = np.asarray([0, 0, 1])
        out = stratified_sample_indices(gids, [10, 10], rng)
        assert len(out) == 3

    def test_no_duplicates(self, rng):
        gids = np.asarray([0] * 100)
        out = stratified_sample_indices(gids, [40], rng)
        assert len(np.unique(out)) == 40

    def test_sorted_output(self, rng):
        gids = np.asarray([1, 0, 1, 0, 1, 0] * 10)
        out = stratified_sample_indices(gids, [5, 5], rng)
        assert list(out) == sorted(out)

    def test_zero_sizes(self, rng):
        gids = np.asarray([0, 0, 1, 1])
        out = stratified_sample_indices(gids, [0, 0], rng)
        assert len(out) == 0

    def test_interleaved_strata(self, rng):
        gids = np.asarray([0, 1] * 500)
        out = stratified_sample_indices(gids, [100, 7], rng)
        sampled = gids[out]
        assert (sampled == 0).sum() == 100
        assert (sampled == 1).sum() == 7

    def test_uniform_within_stratum(self):
        """Every row of a stratum should be picked equally often."""
        gids = np.zeros(20, dtype=np.int64)
        counts = np.zeros(20)
        rng = np.random.default_rng(1)
        trials = 2000
        for _ in range(trials):
            out = stratified_sample_indices(gids, [5], rng)
            counts[out] += 1
        expected = trials * 5 / 20
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))


class TestWeightedSampling:
    def test_size_and_uniqueness(self, rng):
        weights = np.ones(100)
        out = weighted_sample_without_replacement(weights, 30, rng)
        assert len(out) == 30
        assert len(np.unique(out)) == 30

    def test_size_clamped_to_eligible(self, rng):
        weights = np.asarray([1.0, 0.0, 2.0, 0.0])
        out = weighted_sample_without_replacement(weights, 10, rng)
        assert set(out) == {0, 2}

    def test_zero_weight_never_selected(self, rng):
        weights = np.asarray([0.0, 1.0, 0.0, 1.0])
        for _ in range(20):
            out = weighted_sample_without_replacement(weights, 2, rng)
            assert set(out) == {1, 3}

    def test_bias_towards_heavy_rows(self):
        rng = np.random.default_rng(2)
        weights = np.asarray([1.0] * 50 + [50.0] * 50)
        heavy_hits = 0
        trials = 300
        for _ in range(trials):
            out = weighted_sample_without_replacement(weights, 10, rng)
            heavy_hits += (out >= 50).sum()
        # Heavy rows are 50x likelier; nearly all picks should be heavy.
        assert heavy_hits / (trials * 10) > 0.85

    def test_zero_size(self, rng):
        out = weighted_sample_without_replacement(np.ones(5), 0, rng)
        assert len(out) == 0
