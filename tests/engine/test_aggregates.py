import numpy as np
import pytest

from repro.engine.aggregates import (
    AGGREGATE_FUNCTIONS,
    compute_aggregate,
    group_counts,
    group_sums,
)


@pytest.fixture()
def groups():
    """Three groups: [10,20], [1,2,3], [100]."""
    gids = np.asarray([0, 0, 1, 1, 1, 2])
    values = np.asarray([10.0, 20.0, 1.0, 2.0, 3.0, 100.0])
    return gids, values


class TestUnweighted:
    def test_count(self, groups):
        gids, values = groups
        out = compute_aggregate("COUNT", None, gids, 3)
        assert list(out) == [2, 3, 1]

    def test_sum(self, groups):
        gids, values = groups
        out = compute_aggregate("SUM", values, gids, 3)
        assert list(out) == [30.0, 6.0, 100.0]

    def test_avg(self, groups):
        gids, values = groups
        out = compute_aggregate("AVG", values, gids, 3)
        assert list(out) == [15.0, 2.0, 100.0]

    def test_min_max(self, groups):
        gids, values = groups
        assert list(compute_aggregate("MIN", values, gids, 3)) == [10.0, 1.0, 100.0]
        assert list(compute_aggregate("MAX", values, gids, 3)) == [20.0, 3.0, 100.0]

    def test_var_population(self, groups):
        gids, values = groups
        out = compute_aggregate("VAR", values, gids, 3)
        assert out[0] == pytest.approx(np.var([10.0, 20.0]))
        assert out[1] == pytest.approx(np.var([1.0, 2.0, 3.0]))
        assert out[2] == pytest.approx(0.0)

    def test_std(self, groups):
        gids, values = groups
        out = compute_aggregate("STD", values, gids, 3)
        assert out[1] == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_median_odd_even(self, groups):
        gids, values = groups
        out = compute_aggregate("MEDIAN", values, gids, 3)
        assert out[0] == pytest.approx(15.0)  # even group: midpoint
        assert out[1] == pytest.approx(2.0)  # odd group: middle value
        assert out[2] == pytest.approx(100.0)

    def test_count_if(self, groups):
        gids, values = groups
        cond = values > 2.5
        out = compute_aggregate("COUNT_IF", cond, gids, 3)
        assert list(out) == [2.0, 1.0, 1.0]

    def test_empty_group_yields_nan(self):
        gids = np.asarray([0, 0])
        values = np.asarray([1.0, 2.0])
        out = compute_aggregate("AVG", values, gids, 3)
        assert np.isnan(out[1]) and np.isnan(out[2])
        out = compute_aggregate("MIN", values, gids, 3)
        assert np.isnan(out[2])

    def test_empty_input(self):
        out = compute_aggregate(
            "MEDIAN", np.empty(0), np.empty(0, dtype=np.int64), 2
        )
        assert np.isnan(out).all()


class TestWeighted:
    def test_weighted_count(self, groups):
        gids, values = groups
        weights = np.asarray([2.0, 2.0, 10.0, 10.0, 10.0, 5.0])
        out = compute_aggregate("COUNT", None, gids, 3, weights)
        assert list(out) == [4.0, 30.0, 5.0]

    def test_weighted_sum(self, groups):
        gids, values = groups
        weights = np.asarray([2.0, 2.0, 10.0, 10.0, 10.0, 5.0])
        out = compute_aggregate("SUM", values, gids, 3, weights)
        assert list(out) == [60.0, 60.0, 500.0]

    def test_weighted_avg_is_ratio(self, groups):
        gids, values = groups
        weights = np.asarray([1.0, 3.0, 1.0, 1.0, 1.0, 1.0])
        out = compute_aggregate("AVG", values, gids, 3, weights)
        assert out[0] == pytest.approx((10 + 3 * 20) / 4)

    def test_weighted_avg_equal_weights_matches_unweighted(self, groups):
        gids, values = groups
        weights = np.full(len(values), 7.0)
        weighted = compute_aggregate("AVG", values, gids, 3, weights)
        unweighted = compute_aggregate("AVG", values, gids, 3)
        np.testing.assert_allclose(weighted, unweighted)

    def test_weighted_var(self, groups):
        gids, values = groups
        weights = np.asarray([1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        weighted = compute_aggregate("VAR", values, gids, 3, weights)
        unweighted = compute_aggregate("VAR", values, gids, 3)
        np.testing.assert_allclose(weighted, unweighted)

    def test_weighted_median(self):
        gids = np.zeros(3, dtype=np.int64)
        values = np.asarray([1.0, 2.0, 3.0])
        weights = np.asarray([1.0, 1.0, 10.0])
        out = compute_aggregate("MEDIAN", values, gids, 1, weights)
        assert out[0] == 3.0

    def test_weighted_count_if(self, groups):
        gids, values = groups
        cond = values >= 10
        weights = np.asarray([2.0, 2.0, 1.0, 1.0, 1.0, 3.0])
        out = compute_aggregate("COUNT_IF", cond, gids, 3, weights)
        assert list(out) == [4.0, 0.0, 3.0]


class TestDispatch:
    def test_unknown_aggregate(self, groups):
        gids, values = groups
        with pytest.raises(ValueError, match="unknown aggregate"):
            compute_aggregate("P99", values, gids, 3)

    def test_sum_requires_values(self, groups):
        gids, _ = groups
        with pytest.raises(ValueError, match="requires an argument"):
            compute_aggregate("SUM", None, gids, 3)

    def test_bool_values_coerced(self, groups):
        gids, values = groups
        out = compute_aggregate("SUM", values > 5, gids, 3)
        assert list(out) == [2.0, 0.0, 1.0]

    def test_aliases(self, groups):
        gids, values = groups
        np.testing.assert_allclose(
            compute_aggregate("MEAN", values, gids, 3),
            compute_aggregate("AVG", values, gids, 3),
        )
        np.testing.assert_allclose(
            compute_aggregate("VARIANCE", values, gids, 3),
            compute_aggregate("VAR", values, gids, 3),
        )
        np.testing.assert_allclose(
            compute_aggregate("STDDEV", values, gids, 3),
            compute_aggregate("STD", values, gids, 3),
        )

    def test_case_insensitive(self, groups):
        gids, values = groups
        out = compute_aggregate("avg", values, gids, 3)
        assert list(out) == [15.0, 2.0, 100.0]

    def test_helpers(self, groups):
        gids, values = groups
        assert list(group_counts(gids, 3)) == [2, 3, 1]
        assert list(group_sums(values, gids, 3)) == [30.0, 6.0, 100.0]

    def test_registry_contents(self):
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX", "VAR", "STD",
                     "MEDIAN", "COUNT_IF"):
            assert name in AGGREGATE_FUNCTIONS
