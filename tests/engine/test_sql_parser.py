import pytest

from repro.engine.expr import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from repro.engine.sql.ast import JoinClause, NamedTable, SubqueryTable
from repro.engine.sql.lexer import SqlSyntaxError
from repro.engine.sql.parser import parse_expression, parse_query


class TestSelectList:
    def test_simple(self):
        q = parse_query("SELECT a, b FROM t")
        assert len(q.items) == 2
        assert q.items[0].expr == ColumnRef("a")
        assert isinstance(q.from_clause, NamedTable)
        assert q.from_clause.name == "t"

    def test_aliases_with_and_without_as(self):
        q = parse_query("SELECT a AS x, b y FROM t")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"

    def test_aggregate_calls(self):
        q = parse_query("SELECT AVG(gpa), COUNT(*), SUM(a + b) FROM t")
        assert q.items[0].expr == AggCall("AVG", ColumnRef("gpa"))
        assert q.items[1].expr == AggCall("COUNT", Star())
        assert q.items[2].expr == AggCall(
            "SUM", BinOp("+", ColumnRef("a"), ColumnRef("b"))
        )

    def test_count_if(self):
        q = parse_query("SELECT COUNT_IF(v > 0.04) FROM t")
        call = q.items[0].expr
        assert call.func == "COUNT_IF"
        assert call.arg == BinOp(">", ColumnRef("v"), Literal(0.04))

    def test_scalar_function(self):
        q = parse_query("SELECT CONCAT(m, '_', y) FROM t")
        assert q.items[0].expr == FuncCall(
            "CONCAT", (ColumnRef("m"), Literal("_"), ColumnRef("y"))
        )

    def test_expression_over_aggregates(self):
        q = parse_query("SELECT SUM(a) / COUNT(*) FROM t")
        expr = q.items[0].expr
        assert expr.op == "/"
        assert isinstance(expr.left, AggCall)

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT SUM(*) FROM t")

    def test_is_aggregate_property(self):
        assert parse_query("SELECT AVG(a) FROM t").is_aggregate
        assert parse_query("SELECT a FROM t GROUP BY a").is_aggregate
        assert not parse_query("SELECT a FROM t").is_aggregate


class TestWhere:
    def test_precedence_or_and(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert expr == UnaryOp("NOT", BinOp("=", ColumnRef("a"), Literal(1)))

    def test_between(self):
        expr = parse_expression("h BETWEEN 0 AND 24")
        assert expr == Between(ColumnRef("h"), Literal(0), Literal(24))

    def test_not_between(self):
        expr = parse_expression("h NOT BETWEEN 1 AND 2")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"
        assert isinstance(expr.operand, Between)

    def test_in_list(self):
        expr = parse_expression("c IN ('US', 'VN')")
        assert expr == InList(
            ColumnRef("c"), (Literal("US"), Literal("VN"))
        )

    def test_not_in(self):
        expr = parse_expression("c NOT IN (1, -2)")
        assert expr.op == "NOT"
        assert expr.operand == InList(
            ColumnRef("c"), (Literal(1), Literal(-2))
        )

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expression("-a + 1")
        assert expr.op == "+"
        assert expr.left == UnaryOp("-", ColumnRef("a"))

    def test_double_quoted_string(self):
        expr = parse_expression('country = "VN"')
        assert expr.right == Literal("VN")

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)


class TestGroupByOrderLimit:
    def test_group_by_with_cube(self):
        q = parse_query("SELECT a, b, SUM(x) FROM t GROUP BY a, b WITH CUBE")
        assert q.group_by == (ColumnRef("a"), ColumnRef("b"))
        assert q.with_cube

    def test_group_by_plain(self):
        q = parse_query("SELECT a, SUM(x) FROM t GROUP BY a")
        assert not q.with_cube

    def test_having(self):
        q = parse_query(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 5"
        )
        assert q.having is not None
        assert q.having.op == ">"

    def test_order_by(self):
        q = parse_query("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in q.order_by] == [False, True, True]

    def test_limit(self):
        q = parse_query("SELECT a FROM t LIMIT 10")
        assert q.limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t LIMIT 1.5")


class TestFromClause:
    def test_table_alias(self):
        q = parse_query("SELECT a FROM t AS x")
        assert q.from_clause.alias == "x"
        assert q.from_clause.binding == "x"
        q = parse_query("SELECT a FROM t x")
        assert q.from_clause.alias == "x"

    def test_subquery(self):
        q = parse_query("SELECT a FROM (SELECT a FROM t) sub")
        assert isinstance(q.from_clause, SubqueryTable)
        assert q.from_clause.alias == "sub"

    def test_subquery_no_alias(self):
        q = parse_query("SELECT a FROM (SELECT a FROM t)")
        assert isinstance(q.from_clause, SubqueryTable)
        assert q.from_clause.alias is None

    def test_join(self):
        q = parse_query("SELECT a FROM t JOIN u ON t.k = u.k")
        assert isinstance(q.from_clause, JoinClause)
        assert q.from_clause.left.name == "t"
        assert q.from_clause.right.name == "u"

    def test_inner_join(self):
        q = parse_query("SELECT a FROM t INNER JOIN u ON t.k = u.k")
        assert isinstance(q.from_clause, JoinClause)

    def test_chained_joins_left_deep(self):
        q = parse_query(
            "SELECT a FROM t JOIN u ON t.k = u.k JOIN v ON u.k = v.k"
        )
        outer = q.from_clause
        assert isinstance(outer, JoinClause)
        assert isinstance(outer.left, JoinClause)
        assert outer.right.name == "v"


class TestCtes:
    def test_single_cte(self):
        q = parse_query(
            "WITH c AS (SELECT a FROM t) SELECT a FROM c"
        )
        assert len(q.ctes) == 1
        assert q.ctes[0][0] == "c"

    def test_multiple_ctes(self):
        q = parse_query(
            "WITH c1 AS (SELECT a FROM t), c2 AS (SELECT b FROM u) "
            "SELECT a FROM c1 JOIN c2 ON c1.a = c2.b"
        )
        assert [name for name, _ in q.ctes] == ["c1", "c2"]


class TestErrors:
    def test_trailing_tokens(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t garbage extra ,")

    def test_missing_from_table(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM ")

    def test_unbalanced_paren(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("(a + 1")

    def test_in_requires_literals(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("a IN (b)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "(a + 1)",
            "((a * 2) - (b / 3))",
            "(h BETWEEN 0 AND 24)",
            "((a = 1) AND ((b > 2) OR (NOT (c <> 3))))",
            "(s IN ('x', 'y'))",
            "CONCAT(a, '_', b)",
            "IF((v > 0.5), 1, 0)",
        ],
    )
    def test_render_then_reparse(self, sql):
        expr = parse_expression(sql)
        assert parse_expression(expr.sql()) == expr
