import numpy as np
import pytest

from repro.engine.statistics import (
    WelfordAccumulator,
    collect_strata_statistics,
    rollup,
)
from repro.engine.table import Table


@pytest.fixture()
def stats_table():
    return Table.from_pydict(
        {
            "g": ["a", "a", "a", "b", "b", "c"],
            "x": [1.0, 2.0, 3.0, 10.0, 20.0, 5.0],
            "y": [2.0, 2.0, 2.0, 1.0, 3.0, 7.0],
        }
    )


class TestCollectStrataStatistics:
    def test_sizes_and_keys(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], ["x"])
        lookup = dict(zip([k[0] for k in stats.keys], stats.sizes))
        assert lookup == {"a": 3, "b": 2, "c": 1}
        assert stats.total_rows == 6
        assert stats.num_strata == 3

    def test_means(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], ["x", "y"])
        cs = stats.stats_for("x")
        by_key = dict(zip([k[0] for k in stats.keys], cs.mean))
        assert by_key["a"] == pytest.approx(2.0)
        assert by_key["b"] == pytest.approx(15.0)
        assert by_key["c"] == pytest.approx(5.0)

    def test_variance_is_population(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], ["x"])
        cs = stats.stats_for("x")
        by_key = dict(zip([k[0] for k in stats.keys], cs.variance))
        assert by_key["a"] == pytest.approx(np.var([1.0, 2.0, 3.0]))
        assert by_key["b"] == pytest.approx(np.var([10.0, 20.0]))
        assert by_key["c"] == pytest.approx(0.0)

    def test_std_and_cv(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], ["x"])
        cs = stats.stats_for("x")
        by_key = dict(zip([k[0] for k in stats.keys], cs.cv()))
        assert by_key["b"] == pytest.approx(np.std([10.0, 20.0]) / 15.0)

    def test_cv_mean_floor(self):
        table = Table.from_pydict(
            {"g": ["a", "b", "b"], "x": [0.0, 100.0, 100.0]}
        )
        stats = collect_strata_statistics(table, ["g"], ["x"])
        cv = stats.stats_for("x").cv(mean_floor=0.01)
        assert np.isfinite(cv).all()

    def test_missing_column_raises(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], ["x"])
        with pytest.raises(KeyError, match="collected: x"):
            stats.stats_for("y")

    def test_duplicate_agg_columns_deduped(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], ["x", "x"])
        assert list(stats.columns) == ["x"]

    def test_key_index(self, stats_table):
        stats = collect_strata_statistics(stats_table, ["g"], [])
        index = stats.key_index()
        assert set(index) == {("a",), ("b",), ("c",)}


class TestRollup:
    def test_merge_preserves_moments(self, stats_table):
        fine = collect_strata_statistics(stats_table, ["g"], ["x"])
        # Merge "a" and "b" into parent 0, "c" into parent 1.
        parent = np.asarray(
            [0 if k[0] in ("a", "b") else 1 for k in fine.keys]
        )
        merged = rollup(fine, parent, 2)
        xs = merged.stats_for("x")
        combined = [1.0, 2.0, 3.0, 10.0, 20.0]
        assert merged.sizes[0] == 5
        assert xs.mean[0] == pytest.approx(np.mean(combined))
        assert xs.variance[0] == pytest.approx(np.var(combined))
        assert xs.mean[1] == pytest.approx(5.0)

    def test_rollup_identity(self, stats_table):
        fine = collect_strata_statistics(stats_table, ["g"], ["x"])
        merged = rollup(fine, np.arange(fine.num_strata), fine.num_strata)
        np.testing.assert_allclose(
            merged.stats_for("x").mean, fine.stats_for("x").mean
        )

    def test_rollup_equals_direct_coarse_stats(self, openaq_small):
        fine = collect_strata_statistics(
            openaq_small, ["country", "parameter"], ["value"]
        )
        coarse = collect_strata_statistics(
            openaq_small, ["country"], ["value"]
        )
        coarse_index = {k: i for i, k in enumerate(coarse.keys)}
        parent = np.asarray(
            [coarse_index[(k[0],)] for k in fine.keys]
        )
        merged = rollup(fine, parent, coarse.num_strata)
        np.testing.assert_allclose(
            merged.stats_for("value").mean,
            coarse.stats_for("value").mean,
            rtol=1e-10,
        )
        np.testing.assert_allclose(
            merged.stats_for("value").variance,
            coarse.stats_for("value").variance,
            rtol=1e-9,
        )
        np.testing.assert_array_equal(merged.sizes, coarse.sizes)

    def test_rollup_length_check(self, stats_table):
        fine = collect_strata_statistics(stats_table, ["g"], ["x"])
        with pytest.raises(ValueError):
            rollup(fine, np.asarray([0]), 1)


class TestWelford:
    def test_matches_numpy(self, rng):
        data = rng.normal(5.0, 2.0, size=1000)
        acc = WelfordAccumulator()
        acc.add_many(data)
        assert acc.count == 1000
        assert acc.mean == pytest.approx(data.mean())
        assert acc.variance == pytest.approx(data.var())
        assert acc.std == pytest.approx(data.std())
        assert acc.cv == pytest.approx(data.std() / abs(data.mean()))

    def test_merge_matches_single_pass(self, rng):
        a = rng.normal(0.0, 1.0, 400)
        b = rng.normal(10.0, 3.0, 600)
        left, right = WelfordAccumulator(), WelfordAccumulator()
        left.add_many(a)
        right.add_many(b)
        left.merge(right)
        combined = np.concatenate([a, b])
        assert left.count == 1000
        assert left.mean == pytest.approx(combined.mean())
        assert left.variance == pytest.approx(combined.var())

    def test_merge_empty_cases(self):
        acc = WelfordAccumulator()
        other = WelfordAccumulator()
        other.add(5.0)
        acc.merge(other)  # into empty
        assert acc.count == 1 and acc.mean == 5.0
        acc.merge(WelfordAccumulator())  # empty into non-empty
        assert acc.count == 1

    def test_empty_statistics_are_nan(self):
        acc = WelfordAccumulator()
        assert np.isnan(acc.variance)
        assert np.isnan(acc.cv)

    def test_zero_mean_cv_nan(self):
        acc = WelfordAccumulator()
        acc.add(1.0)
        acc.add(-1.0)
        assert np.isnan(acc.cv)
