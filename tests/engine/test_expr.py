import numpy as np
import pytest

from repro.engine.expr import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
    collect_agg_calls,
    collect_column_refs,
    evaluate,
    evaluate_predicate,
    expr_to_sql,
    rewrite,
)
from repro.engine.table import Table


@pytest.fixture()
def table():
    return Table.from_pydict(
        {
            "s": ["x", "y", "x", "z"],
            "a": [1, 2, 3, 4],
            "b": [10.0, 20.0, 30.0, 40.0],
        }
    )


class TestEvaluateBasics:
    def test_literal_broadcast(self, table):
        out = evaluate(Literal(7), table)
        assert len(out) == 4
        assert all(out == 7)

    def test_column_ref(self, table):
        assert list(evaluate(ColumnRef("a"), table)) == [1, 2, 3, 4]

    def test_column_ref_string_decodes(self, table):
        assert list(evaluate(ColumnRef("s"), table)) == ["x", "y", "x", "z"]

    def test_extra_env_takes_priority(self, table):
        extra = {"a": np.asarray([9, 9, 9, 9])}
        assert list(evaluate(ColumnRef("a"), table, extra)) == [9, 9, 9, 9]

    def test_star_rejected(self, table):
        with pytest.raises(TypeError):
            evaluate(Star(), table)

    def test_agg_call_rejected(self, table):
        with pytest.raises(TypeError, match="planner"):
            evaluate(AggCall("AVG", ColumnRef("a")), table)


class TestArithmetic:
    def test_add_sub_mul(self, table):
        expr = BinOp("+", ColumnRef("a"), Literal(1))
        assert list(evaluate(expr, table)) == [2, 3, 4, 5]
        expr = BinOp("-", ColumnRef("b"), ColumnRef("a"))
        assert list(evaluate(expr, table)) == [9.0, 18.0, 27.0, 36.0]
        expr = BinOp("*", ColumnRef("a"), Literal(2))
        assert list(evaluate(expr, table)) == [2, 4, 6, 8]

    def test_division_is_true_division(self, table):
        expr = BinOp("/", ColumnRef("a"), Literal(2))
        assert list(evaluate(expr, table)) == [0.5, 1.0, 1.5, 2.0]

    def test_division_by_zero_yields_non_finite(self, table):
        expr = BinOp("/", ColumnRef("a"), Literal(0))
        out = evaluate(expr, table)
        assert not np.isfinite(out).any()

    def test_modulo(self, table):
        expr = BinOp("%", ColumnRef("a"), Literal(2))
        assert list(evaluate(expr, table)) == [1, 0, 1, 0]

    def test_unary_negation(self, table):
        expr = UnaryOp("-", ColumnRef("a"))
        assert list(evaluate(expr, table)) == [-1, -2, -3, -4]


class TestComparisons:
    def test_numeric_comparisons(self, table):
        cases = {
            "=": [False, True, False, False],
            "<>": [True, False, True, True],
            "<": [True, False, False, False],
            "<=": [True, True, False, False],
            ">": [False, False, True, True],
            ">=": [False, True, True, True],
        }
        for op, expected in cases.items():
            out = evaluate(BinOp(op, ColumnRef("a"), Literal(2)), table)
            assert list(out) == expected, op

    def test_string_equality_uses_codes(self, table):
        out = evaluate(BinOp("=", ColumnRef("s"), Literal("x")), table)
        assert list(out) == [True, False, True, False]

    def test_string_inequality(self, table):
        out = evaluate(BinOp("<>", ColumnRef("s"), Literal("x")), table)
        assert list(out) == [False, True, False, True]

    def test_string_equality_absent_literal(self, table):
        out = evaluate(BinOp("=", ColumnRef("s"), Literal("nope")), table)
        assert not out.any()

    def test_string_inequality_absent_literal(self, table):
        out = evaluate(BinOp("<>", ColumnRef("s"), Literal("nope")), table)
        assert out.all()

    def test_literal_on_left(self, table):
        out = evaluate(BinOp("=", Literal("y"), ColumnRef("s")), table)
        assert list(out) == [False, True, False, False]


class TestBooleanLogic:
    def test_and_or(self, table):
        left = BinOp(">", ColumnRef("a"), Literal(1))
        right = BinOp("<", ColumnRef("a"), Literal(4))
        both = evaluate(BinOp("AND", left, right), table)
        assert list(both) == [False, True, True, False]
        either = evaluate(BinOp("OR", left, right), table)
        assert list(either) == [True, True, True, True]

    def test_not(self, table):
        inner = BinOp("=", ColumnRef("s"), Literal("x"))
        out = evaluate(UnaryOp("NOT", inner), table)
        assert list(out) == [False, True, False, True]

    def test_between(self, table):
        expr = Between(ColumnRef("a"), Literal(2), Literal(3))
        assert list(evaluate(expr, table)) == [False, True, True, False]

    def test_in_list(self, table):
        expr = InList(ColumnRef("s"), (Literal("x"), Literal("z")))
        assert list(evaluate(expr, table)) == [True, False, True, True]

    def test_in_list_numeric(self, table):
        expr = InList(ColumnRef("a"), (Literal(1), Literal(4)))
        assert list(evaluate(expr, table)) == [True, False, False, True]

    def test_in_list_requires_literals(self, table):
        expr = InList(ColumnRef("a"), (ColumnRef("b"),))
        with pytest.raises(TypeError):
            evaluate(expr, table)

    def test_evaluate_predicate_coerces(self, table):
        out = evaluate_predicate(ColumnRef("a"), table)
        assert out.dtype == np.bool_
        assert list(out) == [True, True, True, True]


class TestValidation:
    def test_unknown_binop(self):
        with pytest.raises(ValueError):
            BinOp("**", Literal(1), Literal(2))

    def test_unknown_unary(self):
        with pytest.raises(ValueError):
            UnaryOp("!", Literal(1))

    def test_unknown_function(self, table):
        with pytest.raises(ValueError, match="unknown scalar function"):
            evaluate(FuncCall("NOSUCH", (ColumnRef("a"),)), table)


class TestTraversal:
    def test_collect_column_refs(self):
        expr = BinOp(
            "+",
            FuncCall("ABS", (ColumnRef("a"),)),
            Between(ColumnRef("b"), Literal(0), ColumnRef("c")),
        )
        names = [r.name for r in collect_column_refs(expr)]
        assert names == ["a", "b", "c"]

    def test_collect_agg_calls_does_not_descend(self):
        inner = AggCall("SUM", ColumnRef("a"))
        expr = BinOp("/", inner, AggCall("COUNT", Star()))
        calls = collect_agg_calls(expr)
        assert len(calls) == 2
        assert calls[0].func == "SUM"

    def test_rewrite_replaces_subtrees(self):
        expr = BinOp("+", ColumnRef("a"), ColumnRef("a"))
        replaced = rewrite(expr, {ColumnRef("a"): Literal(5)})
        assert replaced == BinOp("+", Literal(5), Literal(5))

    def test_rewrite_inside_functions(self):
        expr = FuncCall("ABS", (ColumnRef("a"),))
        out = rewrite(expr, {ColumnRef("a"): ColumnRef("z")})
        assert out == FuncCall("ABS", (ColumnRef("z"),))


class TestSqlRendering:
    def test_literals(self):
        assert expr_to_sql(Literal(1)) == "1"
        assert expr_to_sql(Literal(1.5)) == "1.5"
        assert expr_to_sql(Literal("it's")) == "'it''s'"
        assert expr_to_sql(Literal(True)) == "TRUE"

    def test_nested(self):
        expr = BinOp(
            "AND",
            BinOp(">", ColumnRef("a"), Literal(1)),
            Between(ColumnRef("b"), Literal(0), Literal(9)),
        )
        assert expr_to_sql(expr) == "((a > 1) AND (b BETWEEN 0 AND 9))"

    def test_agg_star(self):
        assert expr_to_sql(AggCall("COUNT", Star())) == "COUNT(*)"

    def test_in_list(self):
        expr = InList(ColumnRef("s"), (Literal("a"), Literal("b")))
        assert expr_to_sql(expr) == "(s IN ('a', 'b'))"
