"""Logical planner: lowering, rewrite passes, parameterization."""

import pytest

from repro.engine.expr import BinOp, ColumnRef, Literal, Parameter
from repro.engine.sql.parser import parse_query
from repro.engine.sql.planner import (
    CubeAggregate,
    Dual,
    Filter,
    GroupAggregate,
    Join,
    Limit,
    OrderBy,
    Project,
    Scan,
    SubqueryScan,
    WithCTE,
    apply_weighting,
    bind_plan,
    format_plan,
    lower_query,
    parameterize_query,
    rename_tables,
)
from repro.engine.sql.operators import compile_plan
from repro.engine.table import Table


@pytest.fixture()
def tiny():
    return Table.from_pydict(
        {"g": ["a", "a", "b"], "x": [1.0, 2.0, 3.0]}, name="T"
    )


class TestLowering:
    def test_select_constant_lowers_to_dual(self):
        plan = lower_query(parse_query("SELECT 1 + 1 two"))
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Dual)

    def test_clause_order(self):
        plan = lower_query(
            parse_query(
                "SELECT g, SUM(x) s FROM T WHERE x > 0 GROUP BY g "
                "HAVING SUM(x) > 1 ORDER BY s LIMIT 5"
            )
        )
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, OrderBy)
        agg = plan.child.child
        assert isinstance(agg, GroupAggregate)
        assert agg.having is not None
        assert isinstance(agg.child, Filter)
        assert isinstance(agg.child.child, Scan)

    def test_cube_lowers_to_cube_node(self):
        plan = lower_query(
            parse_query("SELECT g, SUM(x) s FROM T GROUP BY g WITH CUBE")
        )
        assert isinstance(plan, CubeAggregate)

    def test_join_and_subquery(self):
        plan = lower_query(
            parse_query(
                "SELECT t.g FROM T t JOIN (SELECT g FROM U) u ON t.g = u.g"
            )
        )
        assert isinstance(plan, Project)
        join = plan.child
        assert isinstance(join, Join)
        assert isinstance(join.left, Scan) and join.left.binding == "t"
        assert isinstance(join.right, SubqueryScan)

    def test_ctes_wrap_outermost_in_order(self):
        plan = lower_query(
            parse_query(
                "WITH a AS (SELECT g FROM T), b AS (SELECT g FROM a) "
                "SELECT g FROM b"
            )
        )
        assert isinstance(plan, WithCTE) and plan.name == "a"
        assert isinstance(plan.body, WithCTE) and plan.body.name == "b"

    def test_plans_are_hashable_and_comparable(self):
        sql = "SELECT g, COUNT(*) c FROM T WHERE x > 3 GROUP BY g"
        assert lower_query(parse_query(sql)) == lower_query(parse_query(sql))
        assert hash(lower_query(parse_query(sql))) is not None


class TestWeightingRewrite:
    def test_marks_aggregate_and_projection(self):
        plan = apply_weighting(
            lower_query(
                parse_query("SELECT g, SUM(x) s FROM T GROUP BY g")
            ),
            "__weight__",
        )
        assert isinstance(plan, GroupAggregate)
        assert plan.weight_column == "__weight__"

    def test_descends_into_subqueries_and_ctes(self):
        plan = apply_weighting(
            lower_query(
                parse_query(
                    "WITH f AS (SELECT g, x FROM T) "
                    "SELECT g, SUM(x) s FROM (SELECT g, x FROM f) i GROUP BY g"
                )
            ),
            "w",
        )
        assert isinstance(plan, WithCTE)
        assert plan.definition.weight_column == "w"  # CTE projection carries
        agg = plan.body
        assert agg.weight_column == "w"
        assert agg.child.plan.weight_column == "w"  # subquery projection

    def test_join_gets_weight_guard(self):
        plan = apply_weighting(
            lower_query(
                parse_query(
                    "SELECT COUNT(*) c FROM A a JOIN B b ON a.k = b.k"
                )
            ),
            "w",
        )
        assert plan.child.weight_column == "w"


class TestRenameTables:
    def test_renames_scan_keeps_binding(self):
        plan = rename_tables(
            lower_query(parse_query("SELECT x FROM T t")), {"T": "S"}
        )
        scan = plan.child
        assert scan.table == "S" and scan.binding == "t"

    def test_cte_shadowing_stops_rename_in_body(self):
        plan = rename_tables(
            lower_query(
                parse_query("WITH T AS (SELECT x FROM T) SELECT x FROM T")
            ),
            {"T": "S"},
        )
        # The definition reads the (renamed) base table...
        assert plan.definition.child.table == "S"
        # ...but the body reads the CTE, which shadows the name.
        assert plan.body.child.table == "T"


class TestParameterization:
    def test_same_shape_different_literals(self):
        s1, v1 = parameterize_query(
            parse_query("SELECT g FROM T WHERE x > 5")
        )
        s2, v2 = parameterize_query(
            parse_query("SELECT g FROM T WHERE x > 99")
        )
        assert s1 == s2
        assert v1 == (5,) and v2 == (99,)

    def test_distinct_types_get_distinct_slots(self):
        shape, values = parameterize_query(
            parse_query("SELECT g FROM T WHERE x > 1 AND y > 1.0")
        )
        assert values == (1, 1.0)

    def test_equal_literals_share_a_slot(self):
        shape, values = parameterize_query(
            parse_query("SELECT g FROM T WHERE x > 7 AND y < 7")
        )
        assert values == (7,)

    def test_bind_restores_literals(self, tiny):
        from repro.engine.sql.executor import execute_sql

        parsed = parse_query("SELECT g, x FROM T WHERE x >= 2.0")
        shape, values = parameterize_query(parsed)
        where = shape.where
        assert isinstance(where.right, Parameter)
        plan = bind_plan(lower_query(shape), values)
        result = compile_plan(plan).run({"T": tiny})
        expected = execute_sql("SELECT g, x FROM T WHERE x >= 2.0", {"T": tiny})
        assert list(result["x"]) == list(expected["x"])

    def test_binding_different_literals_changes_result(self, tiny):
        shape, _ = parameterize_query(
            parse_query("SELECT g, x FROM T WHERE x >= 2.0")
        )
        rebound = compile_plan(bind_plan(lower_query(shape), (3.0,)))
        assert rebound.run({"T": tiny}).num_rows == 1


class TestFormatPlan:
    def test_mentions_every_layer(self):
        text = format_plan(
            apply_weighting(
                lower_query(
                    parse_query(
                        "SELECT g, SUM(x) s FROM T WHERE x > 0 GROUP BY g "
                        "ORDER BY s LIMIT 2"
                    )
                ),
                "__weight__",
            )
        )
        for fragment in (
            "Limit(2)",
            "OrderBy(s)",
            "GroupAggregate",
            "weighted=__weight__",
            "Filter((x > 0))",
            "Scan(T AS T)",
        ):
            assert fragment in text, text
