import numpy as np
import pytest

from repro.engine.join import hash_join
from repro.engine.table import Table


@pytest.fixture()
def left():
    return Table.from_pydict(
        {"k": ["a", "b", "c"], "v": [1, 2, 3]}
    )


@pytest.fixture()
def right():
    return Table.from_pydict(
        {"k": ["b", "c", "d"], "w": [20, 30, 40]}
    )


class TestHashJoin:
    def test_inner_semantics(self, left, right):
        out = hash_join(left, right, ["k"], ["k"], "L", "R")
        assert out.num_rows == 2
        rows = {
            (lk, v, w)
            for lk, v, w in zip(out["L.k"], out["v"], out["w"])
        }
        assert rows == {("b", 2, 20), ("c", 3, 30)}

    def test_shared_columns_prefixed(self, left, right):
        out = hash_join(left, right, ["k"], ["k"], "L", "R")
        assert "L.k" in out and "R.k" in out
        assert "v" in out and "w" in out  # unique names unprefixed

    def test_duplicate_matches_multiply(self):
        left = Table.from_pydict({"k": ["a", "a"], "v": [1, 2]})
        right = Table.from_pydict({"k": ["a", "a", "a"], "w": [1, 2, 3]})
        out = hash_join(left, right, ["k"], ["k"])
        assert out.num_rows == 6

    def test_no_matches(self, left):
        right = Table.from_pydict({"k": ["zzz"], "w": [0]})
        out = hash_join(left, right, ["k"], ["k"])
        assert out.num_rows == 0

    def test_multi_key(self):
        left = Table.from_pydict(
            {"a": ["x", "x"], "b": [1, 2], "v": [10, 20]}
        )
        right = Table.from_pydict(
            {"a": ["x", "x"], "b": [2, 3], "w": [200, 300]}
        )
        out = hash_join(left, right, ["a", "b"], ["a", "b"])
        assert out.num_rows == 1
        assert out["v"][0] == 20 and out["w"][0] == 200

    def test_string_keys_across_different_dictionaries(self):
        # Same logical values, different category order on each side.
        left = Table.from_pydict({"k": ["z", "a"], "v": [1, 2]})
        right = Table.from_pydict({"k": ["a", "z"], "w": [10, 20]})
        out = hash_join(left, right, ["k"], ["k"])
        pairs = set(zip(out["v"], out["w"]))
        assert pairs == {(1, 20), (2, 10)}

    def test_numeric_keys(self):
        left = Table.from_pydict({"k": [1, 2, 3], "v": [1, 2, 3]})
        right = Table.from_pydict({"k": [3, 1], "w": [30, 10]})
        out = hash_join(left, right, ["k"], ["k"])
        assert set(zip(out["v"], out["w"])) == {(1, 10), (3, 30)}

    def test_key_count_mismatch(self, left, right):
        with pytest.raises(ValueError):
            hash_join(left, right, ["k"], ["k", "w"])

    def test_requires_keys(self, left, right):
        with pytest.raises(ValueError):
            hash_join(left, right, [], [])

    def test_matches_brute_force(self, rng):
        n = 300
        left = Table.from_pydict(
            {
                "k": rng.integers(0, 20, n),
                "v": rng.normal(size=n),
            }
        )
        right = Table.from_pydict(
            {
                "k": rng.integers(0, 20, n),
                "w": rng.normal(size=n),
            }
        )
        out = hash_join(left, right, ["k"], ["k"], "L", "R")
        expected = 0
        left_counts = np.bincount(np.asarray(left["k"]), minlength=20)
        right_counts = np.bincount(np.asarray(right["k"]), minlength=20)
        expected = int((left_counts * right_counts).sum())
        assert out.num_rows == expected
