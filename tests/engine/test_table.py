import numpy as np
import pytest

from repro.engine.schema import DType
from repro.engine.table import Column, Table


class TestColumn:
    def test_from_values_numeric(self):
        col = Column.from_values([1, 2, 3])
        assert col.dtype is DType.INT64
        assert list(col.decode()) == [1, 2, 3]

    def test_from_values_float(self):
        col = Column.from_values([1.5, 2.5])
        assert col.dtype is DType.FLOAT64

    def test_from_strings_dictionary_encoding(self):
        col = Column.from_strings(["b", "a", "b", "c"])
        assert col.dtype is DType.STRING
        assert sorted(col.categories) == ["a", "b", "c"]
        assert list(col.decode()) == ["b", "a", "b", "c"]
        assert col.data.dtype == np.int32

    def test_string_requires_categories(self):
        with pytest.raises(ValueError):
            Column(DType.STRING, np.zeros(1, dtype=np.int32))

    def test_non_string_rejects_categories(self):
        with pytest.raises(ValueError):
            Column(DType.INT64, np.zeros(1, dtype=np.int64), categories=["a"])

    def test_code_for(self):
        col = Column.from_strings(["x", "y"])
        assert col.code_for("x") >= 0
        assert col.code_for("zzz") == -1

    def test_code_for_memoized_matches_linear_scan(self):
        # Regression: code_for now answers from a memoized dict; it must
        # agree with the category list order and keep pinning -1 for
        # values absent from the dictionary (the equality fast path
        # turns -1 into an all-false mask).
        col = Column.from_strings(["b", "a", "b", "c"])
        for expected, cat in enumerate(col.categories):
            assert col.code_for(cat) == expected
        assert col.code_for("absent") == -1
        assert col.code_for("absent") == -1  # stable on repeat lookups
        # non-string inputs coerce exactly like the old str() path
        num = Column.from_strings(["1", "2"])
        assert num.code_for(1) == num.categories.index("1")

    def test_code_for_does_not_scan_categories_per_call(self):
        col = Column.from_strings(["x", "y"])
        col.code_for("x")  # builds the memo
        calls = []

        class Tracker(tuple):
            def index(self, *a, **kw):  # pragma: no cover - must not run
                calls.append(a)
                return super().index(*a, **kw)

        # swap in a tracking tuple; further lookups must not call .index
        tracked = Tracker(col.categories)
        col.categories = tracked
        assert col.code_for("y") == 1
        assert calls == []


class TestLazyColumn:
    def test_lazy_defers_loader_until_data_access(self):
        loads = []

        def loader():
            loads.append(1)
            return np.arange(4, dtype=np.int64)

        col = Column.lazy(DType.INT64, loader, 4)
        assert not col.materialized
        assert len(col) == 4
        assert "lazy" in repr(col)
        assert loads == []
        np.testing.assert_array_equal(col.data, np.arange(4))
        assert col.materialized
        assert loads == [1]
        col.data  # cached: loader must not run again
        assert loads == [1]

    def test_lazy_string_column_carries_categories(self):
        col = Column.lazy(
            DType.STRING,
            lambda: np.asarray([0, 1, 0], dtype=np.int32),
            3,
            categories=["a", "b"],
        )
        assert col.categories == ("a", "b")
        assert col.code_for("b") == 1  # no materialization needed
        assert not col.materialized
        assert list(col.decode()) == ["a", "b", "a"]

    def test_lazy_string_requires_categories(self):
        with pytest.raises(ValueError):
            Column.lazy(DType.STRING, lambda: None, 1)

    def test_table_of_lazy_columns_stays_lazy(self):
        col = Column.lazy(DType.FLOAT64, lambda: np.ones(5), 5)
        table = Table({"x": col}, name="L")
        assert table.num_rows == 5
        assert not col.materialized  # ragged check used len(), not data
        sub = table.select(["x"])
        assert not col.materialized
        assert sub.column("x") is col

    def test_empty_like_does_not_materialize(self):
        col = Column.lazy(DType.FLOAT64, lambda: np.ones(5), 5)
        table = Table({"x": col})
        empty = Table.empty_like(table)
        assert not col.materialized
        assert empty.num_rows == 0
        assert empty.column("x").data.dtype == np.float64

    def test_pickle_materializes_lazy_column(self):
        import pickle

        col = Column.lazy(DType.INT64, lambda: np.arange(3, dtype=np.int64), 3)
        clone = pickle.loads(pickle.dumps(col))
        assert clone.materialized
        np.testing.assert_array_equal(clone.data, np.arange(3))
        assert clone.dtype is DType.INT64

    def test_values_numeric_rejects_strings(self):
        col = Column.from_strings(["x"])
        with pytest.raises(TypeError):
            col.values_numeric()

    def test_values_numeric_bool_to_float(self):
        col = Column.from_values([True, False])
        out = col.values_numeric()
        assert out.dtype == np.float64
        assert list(out) == [1.0, 0.0]

    def test_take_and_filter(self):
        col = Column.from_values([10, 20, 30])
        assert list(col.take(np.asarray([2, 0])).decode()) == [30, 10]
        assert list(col.filter(np.asarray([True, False, True])).decode()) == [10, 30]

    def test_concat_numeric(self):
        a = Column.from_values([1, 2])
        b = Column.from_values([3])
        assert list(a.concat(b).decode()) == [1, 2, 3]

    def test_concat_strings_merges_categories(self):
        a = Column.from_strings(["x", "y"])
        b = Column.from_strings(["y", "z"])
        merged = a.concat(b)
        assert list(merged.decode()) == ["x", "y", "y", "z"]
        assert set(merged.categories) >= {"x", "y", "z"}

    def test_concat_type_mismatch(self):
        with pytest.raises(TypeError):
            Column.from_values([1]).concat(Column.from_strings(["a"]))

    def test_timestamp_from_datetime64(self):
        arr = np.asarray(["2018-01-01T00:00:00"], dtype="datetime64[s]")
        col = Column.from_values(arr)
        assert col.dtype is DType.TIMESTAMP
        assert col.data[0] == 1514764800


class TestTable:
    def test_from_pydict_and_accessors(self, simple_table):
        assert simple_table.num_rows == 6
        assert len(simple_table) == 6
        assert set(simple_table.column_names) == {"g", "h", "x", "y"}
        assert "g" in simple_table
        assert list(simple_table["g"]) == ["a", "a", "b", "b", "b", "c"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table(
                {
                    "a": Column.from_values([1, 2]),
                    "b": Column.from_values([1]),
                }
            )

    def test_missing_column_error(self, simple_table):
        with pytest.raises(KeyError, match="available"):
            simple_table.column("nope")

    def test_select(self, simple_table):
        sub = simple_table.select(["x", "g"])
        assert sub.column_names == ("x", "g")
        assert sub.num_rows == 6

    def test_with_column_length_check(self, simple_table):
        with pytest.raises(ValueError):
            simple_table.with_column("z", Column.from_values([1]))

    def test_with_column(self, simple_table):
        out = simple_table.with_column(
            "z", Column.from_values(np.arange(6))
        )
        assert "z" in out
        assert "z" not in simple_table  # original untouched

    def test_without_columns(self, simple_table):
        out = simple_table.without_columns(["x", "y"])
        assert set(out.column_names) == {"g", "h"}

    def test_rename(self, simple_table):
        out = simple_table.rename({"g": "grp"})
        assert "grp" in out and "g" not in out

    def test_filter(self, simple_table):
        mask = np.asarray([True, False, True, False, True, False])
        out = simple_table.filter(mask)
        assert out.num_rows == 3
        assert list(out["x"]) == [10.0, 1.0, 3.0]

    def test_filter_requires_bool(self, simple_table):
        with pytest.raises(TypeError):
            simple_table.filter(np.asarray([1, 0, 1, 0, 1, 0]))

    def test_filter_length_check(self, simple_table):
        with pytest.raises(ValueError):
            simple_table.filter(np.asarray([True]))

    def test_take_and_head(self, simple_table):
        out = simple_table.take(np.asarray([5, 0]))
        assert list(out["g"]) == ["c", "a"]
        assert simple_table.head(2).num_rows == 2
        assert simple_table.head(100).num_rows == 6

    def test_concat(self, simple_table):
        out = simple_table.concat(simple_table)
        assert out.num_rows == 12
        assert list(out["g"])[:6] == list(simple_table["g"])

    def test_concat_column_mismatch(self, simple_table):
        other = simple_table.without_columns(["x"])
        with pytest.raises(ValueError):
            simple_table.concat(other)

    def test_duplicate(self, simple_table):
        out = simple_table.duplicate(3)
        assert out.num_rows == 18
        assert list(out["h"]) == list(simple_table["h"]) * 3

    def test_duplicate_rejects_zero(self, simple_table):
        with pytest.raises(ValueError):
            simple_table.duplicate(0)

    def test_row_and_iter_rows(self, simple_table):
        row = simple_table.row(2)
        assert row == {"g": "b", "h": 1, "x": 1.0, "y": 2}
        rows = list(simple_table.iter_rows())
        assert len(rows) == 6
        assert rows[5]["g"] == "c"

    def test_to_pydict_roundtrip(self, simple_table):
        data = simple_table.to_pydict()
        rebuilt = Table.from_pydict(data)
        assert rebuilt.num_rows == simple_table.num_rows
        for name in simple_table.column_names:
            assert list(rebuilt[name]) == list(simple_table[name])

    def test_empty_like(self, simple_table):
        empty = Table.empty_like(simple_table)
        assert empty.num_rows == 0
        assert empty.column_names == simple_table.column_names
        assert empty.schema == simple_table.schema

    def test_save_load_roundtrip(self, simple_table, tmp_path):
        path = tmp_path / "t.npz"
        simple_table.save(path)
        loaded = Table.load(path)
        assert loaded.name == simple_table.name
        assert set(loaded.column_names) == set(simple_table.column_names)
        for name in simple_table.column_names:
            assert list(loaded[name]) == list(simple_table[name])
            assert loaded.column(name).dtype is simple_table.column(name).dtype
