import pytest

from repro.engine.sql.lexer import SqlSyntaxError, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers(self):
        tokens = tokenize("country avg_value _x")
        assert all(t.kind == "IDENT" for t in tokens[:-1])

    def test_dotted_identifier(self):
        tokens = tokenize("bc18.avg_value")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "bc18.avg_value"

    def test_function_names_are_idents(self):
        tokens = tokenize("AVG(gpa)")
        assert tokens[0].kind == "IDENT" and tokens[0].value == "AVG"

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]
        assert isinstance(values("42")[0], int)

    def test_float(self):
        assert values("0.04") == [0.04]
        assert isinstance(values("0.04")[0], float)

    def test_leading_dot(self):
        assert values(".5") == [0.5]

    def test_scientific(self):
        assert values("1e3") == [1000.0]
        assert values("2.5E-2") == [0.025]


class TestStrings:
    def test_single_quotes(self):
        assert values("'bc'") == ["bc"]

    def test_double_quotes(self):
        assert values('"VN"') == ["VN"]

    def test_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")


class TestOperators:
    def test_comparison_operators(self):
        assert kinds("= <> != < <= > >=")[:-1] == [
            "EQ", "NEQ", "NEQ", "LT", "LTE", "GT", "GTE",
        ]

    def test_punctuation(self):
        assert kinds("( ) , * + - / %")[:-1] == [
            "LPAREN", "RPAREN", "COMMA", "STAR", "PLUS", "MINUS",
            "SLASH", "PERCENT",
        ]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("a ; b")


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment here\n x")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "x"]

    def test_comment_at_end(self):
        tokens = tokenize("x -- trailing")
        assert [t.value for t in tokens[:-1]] == ["x"]

    def test_newlines_and_tabs(self):
        tokens = tokenize("SELECT\n\tx\nFROM\tt")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "x", "FROM", "t"]


class TestRealQueries:
    def test_paper_query_tokenizes(self):
        sql = """
        SELECT country, AVG(value) AS avg_value,
               COUNT_IF(value > 0.04) AS high_cnt
        FROM openaq WHERE parameter = 'bc'
          AND YEAR(local_time) = 2018
        GROUP BY country
        """
        tokens = tokenize(sql)
        assert tokens[-1].kind == "EOF"
        idents = [t.value for t in tokens if t.kind == "IDENT"]
        assert "COUNT_IF" in idents and "YEAR" in idents

    def test_positions_monotonic(self):
        tokens = tokenize("SELECT a FROM b")
        positions = [t.position for t in tokens]
        assert positions == sorted(positions)
