import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "openaq", "--rows", "100",
             "--out", "x.npz"]
        )
        assert args.command == "generate"
        assert args.rows == 100

    def test_sample_args(self):
        args = build_parser().parse_args(
            ["sample", "--table", "t.npz", "--query", "SELECT 1",
             "--method", "cvopt-inf", "--out", "s"]
        )
        assert args.method == "cvopt-inf"
        assert args.rate == 0.01

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "nope", "--out", "x"]
            )


class TestEndToEnd:
    def test_generate_query_sample(self, tmp_path, capsys):
        table_path = str(tmp_path / "bikes.npz")
        rc = main(
            ["generate", "--dataset", "bikes", "--rows", "3000",
             "--seed", "1", "--out", table_path]
        )
        assert rc == 0
        assert "3000 rows" in capsys.readouterr().out

        rc = main(
            ["query", "--table", table_path, "--name", "Bikes",
             "--sql",
             "SELECT year, COUNT(*) c FROM Bikes GROUP BY year ORDER BY year",
             ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2016" in out and "c" in out

        sample_path = str(tmp_path / "sample")
        rc = main(
            ["sample", "--table", table_path,
             "--query",
             "SELECT year, AVG(trip_duration) FROM Bikes GROUP BY year",
             "--rate", "0.05", "--out", sample_path]
        )
        assert rc == 0
        assert "CVOPT" in capsys.readouterr().out

    def test_query_limit_notice(self, tmp_path, capsys):
        table_path = str(tmp_path / "aq.npz")
        main(
            ["generate", "--dataset", "openaq", "--rows", "2000",
             "--out", table_path]
        )
        capsys.readouterr()
        main(
            ["query", "--table", table_path, "--name", "OpenAQ",
             "--sql", "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country",
             "--limit", "3"]
        )
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_experiment_dataset_mismatch(self, capsys):
        rc = main(
            ["experiment", "--dataset", "bikes", "--query", "AQ3",
             "--rows", "1000"]
        )
        assert rc == 2

    def test_experiment_runs(self, capsys):
        rc = main(
            ["experiment", "--dataset", "bikes", "--query", "B2",
             "--rows", "4000", "--rate", "0.05", "--repetitions", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CVOPT" in out and "B2" in out

    def test_sample_methods(self, tmp_path, capsys):
        table_path = str(tmp_path / "b.npz")
        main(
            ["generate", "--dataset", "bikes", "--rows", "2000",
             "--out", table_path]
        )
        for method in ("uniform", "cs", "rl", "sample-seek", "cvopt-inf"):
            rc = main(
                ["sample", "--table", table_path,
                 "--query",
                 "SELECT year, AVG(trip_duration) FROM Bikes GROUP BY year",
                 "--rate", "0.02", "--method", method,
                 "--out", str(tmp_path / f"s_{method}")]
            )
            assert rc == 0
