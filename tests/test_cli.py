import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "openaq", "--rows", "100",
             "--out", "x.npz"]
        )
        assert args.command == "generate"
        assert args.rows == 100

    def test_sample_args(self):
        args = build_parser().parse_args(
            ["sample", "--table", "t.npz", "--query", "SELECT 1",
             "--method", "cvopt-inf", "--out", "s"]
        )
        assert args.method == "cvopt-inf"
        assert args.rate == 0.01

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "nope", "--out", "x"]
            )


class TestEndToEnd:
    def test_generate_query_sample(self, tmp_path, capsys):
        table_path = str(tmp_path / "bikes.npz")
        rc = main(
            ["generate", "--dataset", "bikes", "--rows", "3000",
             "--seed", "1", "--out", table_path]
        )
        assert rc == 0
        assert "3000 rows" in capsys.readouterr().out

        rc = main(
            ["query", "--table", table_path, "--name", "Bikes",
             "--sql",
             "SELECT year, COUNT(*) c FROM Bikes GROUP BY year ORDER BY year",
             ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2016" in out and "c" in out

        sample_path = str(tmp_path / "sample")
        rc = main(
            ["sample", "--table", table_path,
             "--query",
             "SELECT year, AVG(trip_duration) FROM Bikes GROUP BY year",
             "--rate", "0.05", "--out", sample_path]
        )
        assert rc == 0
        assert "CVOPT" in capsys.readouterr().out

    def test_query_limit_notice(self, tmp_path, capsys):
        table_path = str(tmp_path / "aq.npz")
        main(
            ["generate", "--dataset", "openaq", "--rows", "2000",
             "--out", table_path]
        )
        capsys.readouterr()
        main(
            ["query", "--table", table_path, "--name", "OpenAQ",
             "--sql", "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country",
             "--limit", "3"]
        )
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_experiment_dataset_mismatch(self, capsys):
        rc = main(
            ["experiment", "--dataset", "bikes", "--query", "AQ3",
             "--rows", "1000"]
        )
        assert rc == 2

    def test_experiment_runs(self, capsys):
        rc = main(
            ["experiment", "--dataset", "bikes", "--query", "B2",
             "--rows", "4000", "--rate", "0.05", "--repetitions", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CVOPT" in out and "B2" in out

    def test_sample_methods(self, tmp_path, capsys):
        table_path = str(tmp_path / "b.npz")
        main(
            ["generate", "--dataset", "bikes", "--rows", "2000",
             "--out", table_path]
        )
        for method in ("uniform", "cs", "rl", "sample-seek", "cvopt-inf"):
            rc = main(
                ["sample", "--table", table_path,
                 "--query",
                 "SELECT year, AVG(trip_duration) FROM Bikes GROUP BY year",
                 "--rate", "0.02", "--method", method,
                 "--out", str(tmp_path / f"s_{method}")]
            )
            assert rc == 0


class TestWarehouseCLI:
    """`repro warehouse` round-trip: build -> refresh -> serve -> stats."""

    def _generate(self, tmp_path):
        import numpy as np

        from repro.datasets import generate_openaq
        from repro.engine.table import Table

        table = generate_openaq(num_rows=8000, num_countries=12, seed=3)
        n = table.num_rows
        base = table.take(np.arange(0, int(n * 0.7)))
        batch = table.take(np.arange(int(n * 0.7), n))
        base_path = str(tmp_path / "base.npz")
        batch_path = str(tmp_path / "batch.npz")
        base.save(base_path)
        batch.save(batch_path)
        return base_path, batch_path, table

    def test_build_refresh_serve_stats(self, tmp_path, capsys):
        base_path, batch_path, table = self._generate(tmp_path)
        root = str(tmp_path / "wh")

        rc = main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "600"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "built s v000001" in out

        rc = main(
            ["warehouse", "refresh", "--root", root, "--name", "s",
             "--batch", batch_path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "refresh of s -> v000002" in out

        # Serve against the *full* data (base + batch): the refreshed
        # sample must route and answer for the whole population.
        full_path = str(tmp_path / "full.npz")
        table.save(full_path)
        rc = main(
            ["warehouse", "serve", "--root", root, "--table", full_path,
             "--table-name", "OpenAQ",
             "--sql",
             "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "routed to 's' (v000002)" in out
        assert "a" in out

        rc = main(["warehouse", "stats", "--root", root])
        assert rc == 0
        out = capsys.readouterr().out
        assert "s\tv000002\t2\t" in out

    def test_build_with_rate(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        rc = main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "r", "--group-by", "country", "--value", "value",
             "--rate", "0.05"]
        )
        assert rc == 0
        assert "built r v000001" in capsys.readouterr().out

    def test_advise_and_materialize(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        log = tmp_path / "queries.log"
        log.write_text(
            "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country\n"
            "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country\n"
            "SELECT parameter, SUM(value) s FROM OpenAQ "
            "GROUP BY parameter\n"
        )
        rc = main(
            ["warehouse", "advise", "--root", root, "--table", base_path,
             "--workload", str(log), "--storage-budget", "6000",
             "--target-cv", "0.25", "--materialize"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "storage budget 6000" in out
        assert "materialized: wh_" in out

    def test_serve_exact_mode(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "400"]
        )
        capsys.readouterr()
        rc = main(
            ["warehouse", "serve", "--root", root, "--table", base_path,
             "--table-name", "OpenAQ", "--mode", "exact",
             "--sql", "SELECT COUNT(*) c FROM OpenAQ"]
        )
        assert rc == 0
        assert "exact execution" in capsys.readouterr().out

    def test_serve_prints_contract(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "400"]
        )
        capsys.readouterr()
        rc = main(
            ["warehouse", "serve", "--root", root, "--table", base_path,
             "--table-name", "OpenAQ",
             "--sql",
             "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "contract: predicted CV" in out
        assert "staleness 0.00%" in out

    def test_serve_max_cv_reject_exits_nonzero(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "400"]
        )
        capsys.readouterr()
        rc = main(
            ["warehouse", "serve", "--root", root, "--table", base_path,
             "--table-name", "OpenAQ",
             "--max-cv", "0.0000001", "--on-violation", "reject",
             "--sql",
             "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"]
        )
        assert rc == 4
        assert "rejected:" in capsys.readouterr().err

    def test_serve_max_cv_fallback_is_exact(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "400"]
        )
        capsys.readouterr()
        rc = main(
            ["warehouse", "serve", "--root", root, "--table", base_path,
             "--table-name", "OpenAQ", "--max-cv", "0.0000001",
             "--sql",
             "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"]
        )
        assert rc == 0
        assert "exact execution" in capsys.readouterr().out

    def test_serve_requires_sql_or_http(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "400"]
        )
        capsys.readouterr()
        rc = main(
            ["warehouse", "serve", "--root", root, "--table", base_path]
        )
        assert rc == 2
        assert "--sql" in capsys.readouterr().err

    def test_daemon_once_ingests_backlog(self, tmp_path, capsys):
        base_path, batch_path, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--table-name", "OpenAQ",
             "--group-by", "country", "--value", "value",
             "--budget", "600"]
        )
        capsys.readouterr()
        watch = tmp_path / "incoming"
        watch.mkdir()
        import shutil

        shutil.copy(batch_path, watch / "s__day1.npz")
        rc = main(
            ["warehouse", "daemon", "--root", root,
             "--table", base_path, "--table-name", "OpenAQ",
             "--watch", str(watch), "--once"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "applied s__day1.npz -> s v000002" in out
        assert not list(watch.glob("*.npz"))
        rc = main(["warehouse", "stats", "--root", root])
        assert rc == 0
        assert "s\tv000002\t" in capsys.readouterr().out

    def test_advise_empty_log_fails(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        log = tmp_path / "empty.log"
        log.write_text("-- nothing here\n")
        rc = main(
            ["warehouse", "advise", "--table", base_path,
             "--workload", str(log), "--storage-budget", "100"]
        )
        assert rc == 2

    def test_build_rejects_nonpositive_budget(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        rc = main(
            ["warehouse", "build", "--root", str(tmp_path / "wh"),
             "--table", base_path, "--name", "s",
             "--group-by", "country", "--value", "value",
             "--budget", "0"]
        )
        assert rc == 2
        assert "--budget must be positive" in capsys.readouterr().err


class TestShardedWarehouseCLI:
    """`--shards N` topology: sharded layout, auto-detection, per-shard
    stats, and the single-shard path staying plain."""

    def _generate(self, tmp_path):
        import numpy as np

        from repro.datasets import generate_openaq

        table = generate_openaq(num_rows=8000, num_countries=12, seed=3)
        n = table.num_rows
        base = table.take(np.arange(0, int(n * 0.7)))
        batch = table.take(np.arange(int(n * 0.7), n))
        base_path = str(tmp_path / "base.npz")
        batch_path = str(tmp_path / "batch.npz")
        base.save(base_path)
        batch.save(batch_path)
        return base_path, batch_path, table

    def test_sharded_round_trip(self, tmp_path, capsys):
        base_path, batch_path, table = self._generate(tmp_path)
        root = tmp_path / "wh"

        rc = main(
            ["warehouse", "build", "--root", str(root),
             "--table", base_path, "--name", "s",
             "--table-name", "OpenAQ", "--group-by", "country",
             "--columns", "value", "--budget", "600", "--shards", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "built s v000001" in out and "across 3 shards" in out
        assert (root / "shards.json").exists()
        for i in range(3):
            assert (root / f"shard-{i:02d}").is_dir()

        # Refresh auto-detects the topology — no --shards needed.
        rc = main(
            ["warehouse", "refresh", "--root", str(root), "--name", "s",
             "--batch", batch_path]
        )
        assert rc == 0
        assert "refresh of s -> v000002" in capsys.readouterr().out

        full_path = str(tmp_path / "full.npz")
        table.save(full_path)
        rc = main(
            ["warehouse", "serve", "--root", str(root),
             "--table", full_path, "--table-name", "OpenAQ",
             "--shard-workers", "inprocess", "--sql",
             "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "routed to 's' (v000002)" in out

        rc = main(["warehouse", "stats", "--root", str(root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sharded store: 3 shards" in out
        assert "-- shard 00 --" in out and "-- shard 02 --" in out

    def test_single_shard_stays_plain(self, tmp_path, capsys):
        base_path, _, _ = self._generate(tmp_path)
        root = tmp_path / "wh"
        rc = main(
            ["warehouse", "build", "--root", str(root),
             "--table", base_path, "--name", "s",
             "--group-by", "country", "--columns", "value",
             "--budget", "600", "--shards", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "built s v000001" in out and "across" not in out
        assert not (root / "shards.json").exists()
        assert (root / "s").is_dir()  # plain single-store layout

    def test_conflicting_shard_count_fails(self, tmp_path, capsys):
        base_path, batch_path, _ = self._generate(tmp_path)
        root = str(tmp_path / "wh")
        rc = main(
            ["warehouse", "build", "--root", root, "--table", base_path,
             "--name", "s", "--group-by", "country",
             "--columns", "value", "--budget", "400", "--shards", "2"]
        )
        assert rc == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="sharded 2 ways"):
            main(
                ["warehouse", "refresh", "--root", root, "--name", "s",
                 "--batch", batch_path, "--shards", "4"]
            )
