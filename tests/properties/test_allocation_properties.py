"""Property-based tests of the allocation optimizer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    allocate,
    box_constrained_allocation,
    integerize,
    lemma1_allocation,
)

alphas_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=20,
)
positive_alphas = st.lists(
    st.floats(min_value=1e-3, max_value=1e6), min_size=2, max_size=15
)


class TestLemma1Properties:
    @given(alphas=alphas_strategy, budget=st.floats(0.0, 1e6))
    def test_budget_never_exceeded(self, alphas, budget):
        out = lemma1_allocation(np.asarray(alphas), budget)
        assert out.sum() <= budget * (1 + 1e-9) + 1e-9
        assert (out >= 0).all()

    @given(alphas=positive_alphas, budget=st.floats(1.0, 1e5))
    def test_budget_fully_used_when_alphas_positive(self, alphas, budget):
        out = lemma1_allocation(np.asarray(alphas), budget)
        assert out.sum() == np.float64(budget) or abs(
            out.sum() - budget
        ) < 1e-6 * budget

    @given(alphas=positive_alphas, budget=st.floats(1.0, 1e5))
    def test_monotone_in_alpha(self, alphas, budget):
        out = lemma1_allocation(np.asarray(alphas), budget)
        order_alpha = np.argsort(alphas)
        order_out = np.argsort(out, kind="stable")
        # Same ranking (sqrt is monotone).
        np.testing.assert_array_equal(
            np.asarray(alphas)[order_alpha].round(12),
            np.sort(np.asarray(alphas)).round(12),
        )
        assert (np.diff(out[order_alpha]) >= -1e-9).all()

    @given(
        alphas=positive_alphas,
        budget=st.floats(1.0, 1e4),
        scale=st.floats(0.1, 100.0),
    )
    def test_scale_invariance(self, alphas, budget, scale):
        """Scaling all alphas by a constant leaves the split unchanged."""
        a = np.asarray(alphas)
        base = lemma1_allocation(a, budget)
        scaled = lemma1_allocation(a * scale, budget)
        np.testing.assert_allclose(base, scaled, rtol=1e-9, atol=1e-9)

    @settings(max_examples=50)
    @given(alphas=positive_alphas, budget=st.floats(1.0, 1e4), data=st.data())
    def test_optimality(self, alphas, budget, data):
        """No feasible perturbation improves the objective."""
        a = np.asarray(alphas)
        out = lemma1_allocation(a, budget)

        def objective(s):
            return float((a / np.maximum(s, 1e-300)).sum())

        base = objective(out)
        i = data.draw(st.integers(0, len(a) - 1))
        j = data.draw(st.integers(0, len(a) - 1))
        frac = data.draw(st.floats(0.0, 0.9))
        if i == j:
            return
        perturbed = out.copy()
        delta = perturbed[i] * frac
        perturbed[i] -= delta
        perturbed[j] += delta
        assert objective(perturbed) >= base * (1 - 1e-9)


class TestBoxConstrainedProperties:
    @settings(max_examples=60)
    @given(
        n=st.integers(1, 12),
        budget=st.floats(0.0, 5e4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_feasibility(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        alphas = rng.uniform(0, 100, n)
        lower = rng.uniform(0, 5, n)
        upper = lower + rng.uniform(0, 100, n)
        out = box_constrained_allocation(alphas, budget, lower, upper)
        assert (out >= lower - 1e-9).all()
        assert (out <= upper + 1e-9).all()
        target = np.clip(budget, lower.sum(), upper.sum())
        assert abs(out.sum() - target) < 1e-6 * max(target, 1.0)


class TestIntegerizeProperties:
    @settings(max_examples=80)
    @given(
        n=st.integers(1, 15),
        budget=st.integers(0, 500),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_exact_total_and_caps(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        caps = rng.integers(0, 60, n)
        fractional = rng.uniform(0, 60, n)
        out = integerize(fractional, budget, caps)
        assert out.sum() == min(budget, caps.sum())
        assert (out >= 0).all()
        assert (out <= caps).all()

    @settings(max_examples=50)
    @given(
        n=st.integers(1, 10),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_rounding_distance(self, n, seed):
        """Integerization moves each stratum by less than 1 from its
        fractional value whenever no caps interfere."""
        rng = np.random.default_rng(seed)
        fractional = rng.uniform(0, 30, n)
        caps = np.full(n, 1000, dtype=np.int64)
        budget = int(round(fractional.sum()))
        out = integerize(fractional, budget, caps)
        assert (np.abs(out - fractional) < 1.0 + 1e-9).all()


class TestAllocateProperties:
    @settings(max_examples=60)
    @given(
        n=st.integers(1, 12),
        budget=st.integers(1, 1000),
        min_per=st.integers(0, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_invariants(self, n, budget, min_per, seed):
        rng = np.random.default_rng(seed)
        alphas = rng.uniform(0, 10, n)
        populations = rng.integers(1, 200, n)
        out = allocate(alphas, budget, populations, min_per_stratum=min_per)
        assert out.sum() == min(budget, populations.sum())
        assert (out <= populations).all()
        assert (out >= 0).all()
        if budget >= n * min_per:
            floors = np.minimum(min_per, populations)
            assert (out >= floors).all()
