"""Property-based tests of samplers and estimation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.senate import equal_allocation
from repro.baselines.congress import congress_single_grouping
from repro.core.cvopt import CVOptSampler, sasg_fractional_allocation
from repro.core.cvopt_inf import cvopt_inf_sizes
from repro.core.sample import WEIGHT_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


group_spec = st.lists(
    st.tuples(
        st.integers(5, 300),  # size
        st.floats(1.0, 1000.0),  # mean
        st.floats(0.0, 200.0),  # std
    ),
    min_size=1,
    max_size=8,
)


class TestAllocatorProperties:
    @settings(max_examples=50)
    @given(groups=group_spec, budget=st.integers(1, 500))
    def test_equal_allocation_invariants(self, groups, budget):
        populations = np.asarray([g[0] for g in groups])
        out = equal_allocation(populations, budget)
        assert out.sum() == min(budget, populations.sum())
        assert (out <= populations).all()
        # Fairness: shares differ by more than 1 only due to caps.
        open_mask = out < populations
        if open_mask.sum() > 1:
            open_sizes = out[open_mask]
            assert open_sizes.max() - open_sizes.min() <= 1

    @settings(max_examples=50)
    @given(groups=group_spec, budget=st.integers(1, 500))
    def test_congress_invariants(self, groups, budget):
        populations = np.asarray([g[0] for g in groups])
        out = congress_single_grouping(populations, budget)
        assert out.sum() == min(budget, populations.sum())
        assert (out <= populations).all()
        assert (out >= 0).all()

    @settings(max_examples=50)
    @given(groups=group_spec, budget=st.floats(1.0, 1e4))
    def test_sasg_closed_form_invariants(self, groups, budget):
        means = np.asarray([g[1] for g in groups])
        stds = np.asarray([g[2] for g in groups])
        out = sasg_fractional_allocation(budget, means, stds)
        assert out.sum() <= budget + 1e-6
        assert (out >= 0).all()
        # Proportionality: out_i / out_j == cv_i / cv_j where defined
        # (skip CVs small enough for cv^2 to underflow to zero).
        cvs = stds / means
        positive = cvs > 1e-100
        if positive.sum() >= 2 and cvs[positive].sum() > 0:
            idx = np.flatnonzero(positive)
            i, j = idx[0], idx[-1]
            if i != j and out[j] > 0:
                np.testing.assert_allclose(
                    out[i] / out[j], cvs[i] / cvs[j], rtol=1e-6
                )

    @settings(max_examples=50)
    @given(groups=group_spec, budget=st.integers(2, 400))
    def test_cvopt_inf_invariants(self, groups, budget):
        populations = np.asarray([g[0] for g in groups])
        means = np.asarray([g[1] for g in groups])
        stds = np.asarray([g[2] for g in groups])
        sizes = cvopt_inf_sizes(populations, means, stds, budget)
        assert (sizes <= populations).all()
        assert (sizes >= 0).all()
        # ceil-rounding slack is at most one row per stratum.
        assert sizes.sum() <= budget + len(groups)


class TestSampleInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        groups=group_spec,
        rate_pct=st.integers(2, 40),
        seed=st.integers(0, 1000),
    )
    def test_ht_weights_reconstruct_population(self, groups, rate_pct, seed):
        """sum of HT weights == the population of every stratum that
        received rows — and the whole table once the budget affords the
        one-row representation floor for each stratum."""
        table = make_grouped_table(
            sizes=[g[0] for g in groups],
            means=[g[1] for g in groups],
            stds=[g[2] for g in groups],
            seed=seed,
            exact_moments=True,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        budget = max(1, table.num_rows * rate_pct // 100)
        sample = sampler.sample(table, budget, seed=seed)
        weights = np.asarray(sample.table[WEIGHT_COLUMN])
        allocation = sample.allocation
        covered = allocation.populations[allocation.sizes > 0].sum()
        np.testing.assert_allclose(weights.sum(), covered, rtol=1e-9)
        if budget >= allocation.num_strata:
            assert covered == table.num_rows

    @settings(max_examples=20, deadline=None)
    @given(groups=group_spec, seed=st.integers(0, 1000))
    def test_every_group_represented(self, groups, seed):
        """min_per_stratum=1 guarantees group coverage."""
        table = make_grouped_table(
            sizes=[g[0] for g in groups],
            means=[g[1] for g in groups],
            stds=[g[2] for g in groups],
            seed=seed,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        budget = max(len(groups), table.num_rows // 20)
        sample = sampler.sample(table, budget, seed=seed)
        assert set(sample.table["g"]) == set(table["g"])

    @settings(max_examples=15, deadline=None)
    @given(groups=group_spec, seed=st.integers(0, 1000))
    def test_group_count_estimates_exact(self, groups, seed):
        """Without predicates, weighted per-group COUNT is exactly n_g
        (every stratum's weights sum to its population)."""
        table = make_grouped_table(
            sizes=[g[0] for g in groups],
            means=[g[1] for g in groups],
            stds=[g[2] for g in groups],
            seed=seed,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        budget = max(len(groups), table.num_rows // 10)
        sample = sampler.sample(table, budget, seed=seed)
        out = sample.answer(
            "SELECT g, COUNT(*) c FROM T GROUP BY g", "T"
        )
        truth = {}
        for label in table["g"]:
            truth[label] = truth.get(label, 0) + 1
        got = dict(zip(out["g"], out["c"]))
        for label, count in truth.items():
            np.testing.assert_allclose(got[label], count, rtol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_avg_estimator_unbiased_statistically(self, seed):
        """Mean of repeated AVG estimates approaches the truth.

        (Statistical test on a fixed easy instance, randomized by the
        hypothesis seed; wide tolerance keeps it deterministic enough.)
        """
        table = make_grouped_table(
            sizes=[400, 100],
            means=[100.0, 10.0],
            stds=[20.0, 3.0],
            seed=3,
            exact_moments=True,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        rng = np.random.default_rng(seed)
        estimates = []
        for _ in range(15):
            sample = sampler.sample(table, 60, seed=rng)
            out = sample.answer(
                "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
            )
            estimates.append(out["a"][0])
        assert abs(np.mean(estimates) - 100.0) < 6.0
