"""Property-based tests of multi-column incremental maintenance.

The load-bearing invariant of the per-column statistics pipeline: after
any sequence of streamed batches (with resume/finalize round-trips
between them, mirroring the warehouse's store round-trips), the
per-stratum moments of *every* tracked column equal the moments a
from-scratch statistics pass over the concatenated data would produce —
the merge is exact, not approximate, for each column independently.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.core.streaming import StreamingCVOptSampler
from repro.engine.statistics import collect_strata_statistics
from repro.engine.table import Table

COLUMNS = ("a", "b", "c")

# Value columns stay positive: CVOPT's CV objective (by design, paper
# Section 1) rejects a column whose group means are all zero, which an
# unconstrained float strategy will eventually draw.
rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["g1", "g2", "g3"]),
        st.floats(0.1, 1000.0),  # a
        st.floats(1.0, 500.0),  # b
        st.floats(0.1, 10.0),  # c
    ),
    min_size=8,
    max_size=120,
)


def make_table(rows):
    return Table.from_pydict(
        {
            "g": [r[0] for r in rows],
            "a": [r[1] for r in rows],
            "b": [r[2] for r in rows],
            "c": [r[3] for r in rows],
        }
    )


def split_batches(rows, cuts):
    """Split rows at the (sorted, deduped) cut points."""
    bounds = sorted({min(c, len(rows)) for c in cuts})
    out = []
    start = 0
    for b in bounds:
        if b > start:
            out.append(rows[start:b])
            start = b
    if start < len(rows):
        out.append(rows[start:])
    return out


class TestPerColumnMomentMerge:
    @settings(max_examples=30, deadline=None)
    @given(
        base_rows=rows_strategy,
        batch_rows=rows_strategy,
        cuts=st.lists(st.integers(1, 119), min_size=0, max_size=3),
        budget=st.integers(3, 40),
    )
    def test_streamed_moments_equal_from_scratch_rebuild(
        self, base_rows, batch_rows, cuts, budget
    ):
        base = make_table(base_rows)
        # Two-pass build tracking every column, exactly like
        # SampleMaintainer.build does.
        sample = CVOptSampler(
            [GroupByQuerySpec(group_by=("g",), aggregates=COLUMNS)]
        ).sample(base, budget, seed=0)

        # Stream the batches with a finalize/resume round-trip between
        # each (the warehouse persists and reloads between refreshes).
        for i, batch in enumerate(split_batches(batch_rows, cuts)):
            sampler = StreamingCVOptSampler.resume(
                sample, COLUMNS, seed=i + 1
            )
            sampler.observe_table(make_table(batch))
            sample = sampler.finalize()

        stats = sample.allocation.stats
        assert set(stats.columns) == set(COLUMNS)

        full = collect_strata_statistics(
            make_table(base_rows + batch_rows), ("g",), list(COLUMNS)
        )
        full_idx = {k: i for i, k in enumerate(full.keys)}
        order = [full_idx[tuple(k)] for k in stats.keys]
        assert sorted(order) == list(range(full.num_strata))
        np.testing.assert_array_equal(
            stats.sizes, full.sizes[order]
        )
        for column in COLUMNS:
            merged = stats.stats_for(column)
            scratch = full.stats_for(column)
            np.testing.assert_allclose(
                merged.count, scratch.count[order], rtol=1e-9
            )
            np.testing.assert_allclose(
                merged.total, scratch.total[order], rtol=1e-9, atol=1e-7
            )
            np.testing.assert_allclose(
                merged.total_sq,
                scratch.total_sq[order],
                rtol=1e-9,
                atol=1e-7,
            )
