"""Property-based equivalence of the sharded scatter-gather warehouse.

The tentpole invariant: for ANY table, ANY group-by shape, and ANY
shard count, a sharded warehouse answers decomposable aggregate
queries with the same numbers as an unsharded warehouse built from
the identical sample (same seed, same budget). Strata are assigned to
shards whole, so the union of the shard slices is bit-for-bit the
unsharded sample and merged per-group moments are exact — the only
tolerated divergence is float summation order (rel 1e-9) and group
ordering (answers are compared as key -> values mappings).

``REPRO_TEST_SHARDS`` pins the shard count (CI runs a dedicated leg
with 2); without it, hypothesis draws counts in 1..8.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.table import Table
from repro.warehouse import ShardedWarehouseService, WarehouseService

_ENV_SHARDS = os.environ.get("REPRO_TEST_SHARDS")

GROUPS = ["g0", "g1", "g2", "g3", "g4", "g5"]
SUBS = ["s0", "s1", "s2"]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(GROUPS),
        st.sampled_from(SUBS),
        # Positive values: CVOPT's CV objective rejects columns whose
        # group means are all zero (paper Section 1).
        st.floats(0.1, 1000.0),
        st.integers(1, 50),
    ),
    min_size=20,
    max_size=200,
)

shards_strategy = (
    st.just(int(_ENV_SHARDS)) if _ENV_SHARDS else st.integers(1, 8)
)

QUERIES = [
    "SELECT g, AVG(x) v FROM T GROUP BY g",
    "SELECT g, SUM(x) v, COUNT(*) c FROM T GROUP BY g",
    "SELECT g, h, SUM(y) v FROM T GROUP BY g, h",
    "SELECT COUNT(*) c, SUM(x) s FROM T",
    "SELECT g, MIN(x) lo, MAX(x) hi FROM T GROUP BY g",
]


def make_table(rows):
    return Table.from_pydict(
        {
            "g": [r[0] for r in rows],
            "h": [r[1] for r in rows],
            "x": [r[2] for r in rows],
            "y": [r[3] for r in rows],
        },
        name="T",
    )


def answers(table):
    """Order-independent {group key: aggregate values} mapping."""
    key_cols = [
        c
        for c in table.column_names
        if table.column(c).categories is not None
    ]
    value_cols = [
        c for c in table.column_names if c not in key_cols
    ]
    keys = (
        list(zip(*(table.column(c).decode() for c in key_cols)))
        if key_cols
        else [()] * table.num_rows
    )
    return {
        k: tuple(
            float(table.column(c).data[i]) for c in value_cols
        )
        for i, k in enumerate(keys)
    }


class TestShardedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=rows_strategy,
        num_shards=shards_strategy,
        group_by=st.sampled_from([("g",), ("g", "h")]),
        budget=st.integers(10, 80),
        seed=st.integers(0, 99),
    )
    def test_sharded_equals_unsharded(
        self, rows, num_shards, group_by, budget, seed
    ):
        table = make_table(rows)
        with tempfile.TemporaryDirectory() as tmp:
            with ShardedWarehouseService(
                os.path.join(tmp, "sh"), {"T": table},
                shards=num_shards, workers="inprocess",
            ) as sharded:
                sharded.build(
                    "s", "T", group_by=list(group_by),
                    value_columns=["x", "y"], budget=budget, seed=seed,
                )
                plain = WarehouseService(
                    os.path.join(tmp, "un"), {"T": table}
                )
                plain.build(
                    "s", "T", group_by=list(group_by),
                    value_columns=["x", "y"], budget=budget, seed=seed,
                )
                for sql in QUERIES:
                    a = sharded.query(sql)
                    b = plain.query(sql)
                    assert (
                        a.route.approximate == b.route.approximate
                    ), sql
                    got, want = answers(a.table), answers(b.table)
                    assert set(got) == set(want), sql
                    for key, values in want.items():
                        for u, v in zip(got[key], values):
                            assert u == v or abs(u - v) <= 1e-9 * max(
                                abs(u), abs(v)
                            ), (sql, key)

                # Contract parity: same predicted CV and the same
                # per-group key -> cv mapping on the routed query.
                ca = sharded.query_with_contract(QUERIES[0]).contract
                cb = plain.query_with_contract(QUERIES[0]).contract
                assert ca.executed == cb.executed
                if ca.executed == "approximate":
                    assert (
                        abs(ca.predicted_cv - cb.predicted_cv)
                        <= 1e-9 * cb.predicted_cv
                    )
                    ka = dict(zip(ca.group_keys, ca.group_cvs))
                    kb = dict(zip(cb.group_keys, cb.group_cvs))
                    assert set(ka) == set(kb)
                    for key, cv in kb.items():
                        assert ka[key] == cv or abs(
                            ka[key] - cv
                        ) <= 1e-9 * abs(cv)
