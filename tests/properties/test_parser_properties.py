"""Property-based round-trip tests for the SQL expression layer.

Random expression trees are generated straight from the AST node types,
rendered to SQL with ``expr_to_sql``, and re-parsed: the result must be
the identical tree. This pins the lexer, the parser's precedence
handling, and the renderer against each other.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expr import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
    evaluate,
    expr_to_sql,
)
from repro.engine.sql.parser import parse_expression
from repro.engine.table import Table

identifiers = st.sampled_from(["a", "b", "c", "value", "local_time", "x1"])

safe_numbers = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ).map(lambda f: round(f, 6)),
)

safe_strings = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F
    ),
    max_size=8,
)

literals = st.one_of(
    safe_numbers.map(Literal),
    safe_strings.map(Literal),
    st.booleans().map(Literal),
)


def expressions(max_depth=3):
    base = st.one_of(literals, identifiers.map(ColumnRef))

    def extend(children):
        return st.one_of(
            st.tuples(
                st.sampled_from(["+", "-", "*", "/", "%"]), children, children
            ).map(lambda t: BinOp(*t)),
            st.tuples(
                st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
                children,
                children,
            ).map(lambda t: BinOp(*t)),
            st.tuples(
                st.sampled_from(["AND", "OR"]), children, children
            ).map(lambda t: BinOp(*t)),
            children.map(lambda e: UnaryOp("NOT", e)),
            st.tuples(children, children, children).map(
                lambda t: Between(*t)
            ),
            st.tuples(
                children,
                st.lists(literals, min_size=1, max_size=3).map(tuple),
            ).map(lambda t: InList(*t)),
            st.tuples(
                st.sampled_from(["ABS", "SQRT", "FLOOR", "CEIL"]),
                children,
            ).map(lambda t: FuncCall(t[0], (t[1],))),
            st.tuples(children, children, children).map(
                lambda t: FuncCall("IF", t)
            ),
        )

    return st.recursive(base, extend, max_leaves=12)


class TestExpressionRoundTrip:
    @settings(max_examples=200)
    @given(expr=expressions())
    def test_render_parse_identity(self, expr):
        assert parse_expression(expr_to_sql(expr)) == expr

    @settings(max_examples=100)
    @given(expr=expressions())
    def test_double_round_trip_stable(self, expr):
        once = expr_to_sql(expr)
        twice = expr_to_sql(parse_expression(once))
        assert once == twice

    @settings(max_examples=50)
    @given(
        func=st.sampled_from(["AVG", "SUM", "MIN", "MAX", "COUNT_IF"]),
        expr=expressions(),
    )
    def test_aggregate_round_trip(self, func, expr):
        call = AggCall(func, expr)
        assert parse_expression(expr_to_sql(call)) == call

    def test_count_star_round_trip(self):
        call = AggCall("COUNT", Star())
        assert parse_expression(expr_to_sql(call)) == call


class TestEvaluationTotality:
    """Any generated expression must either evaluate (results may be
    nan/inf) or raise a *type* error for genuinely ill-typed trees
    (e.g. comparing a string to a number) — never any other crash."""

    @settings(max_examples=150)
    @given(expr=expressions())
    def test_evaluate_total_or_type_error(self, expr):
        table = Table.from_pydict(
            {
                "a": [1.0, -2.0, 0.0],
                "b": [10.0, 0.5, -3.0],
                "c": [0.0, 0.0, 1.0],
                "value": [1.5, 2.5, 3.5],
                "local_time": [0, 10**9, 2 * 10**9],
                "x1": [7.0, 8.0, 9.0],
            }
        )
        try:
            with np.errstate(all="ignore"):
                out = evaluate(expr, table)
        except (TypeError, np.exceptions.DTypePromotionError):
            return  # ill-typed tree: a well-defined error is fine
        assert len(out) == 3
