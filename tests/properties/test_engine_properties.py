"""Property-based tests of the query engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import compute_aggregate
from repro.engine.groupby import compute_group_keys, cube_grouping_sets
from repro.engine.sql.executor import execute_sql
from repro.engine.statistics import WelfordAccumulator, collect_strata_statistics
from repro.engine.table import Table

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)
labels_strategy = st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=200
)


def aligned_table(draw_labels, draw_values):
    n = min(len(draw_labels), len(draw_values))
    return Table.from_pydict(
        {"g": draw_labels[:n], "v": draw_values[:n]}
    )


class TestGroupByProperties:
    @settings(max_examples=60)
    @given(labels=labels_strategy, values=values_strategy)
    def test_group_sums_partition_total(self, labels, values):
        table = aligned_table(labels, values)
        keys = compute_group_keys(table, ["g"])
        v = table.column("v").values_numeric()
        sums = compute_aggregate("SUM", v, keys.gids, keys.num_groups)
        np.testing.assert_allclose(sums.sum(), v.sum(), rtol=1e-9, atol=1e-6)

    @settings(max_examples=60)
    @given(labels=labels_strategy, values=values_strategy)
    def test_counts_partition_rows(self, labels, values):
        table = aligned_table(labels, values)
        keys = compute_group_keys(table, ["g"])
        counts = compute_aggregate(
            "COUNT", None, keys.gids, keys.num_groups
        )
        assert counts.sum() == table.num_rows

    @settings(max_examples=60)
    @given(labels=labels_strategy, values=values_strategy)
    def test_min_max_bound_avg(self, labels, values):
        table = aligned_table(labels, values)
        keys = compute_group_keys(table, ["g"])
        v = table.column("v").values_numeric()
        lo = compute_aggregate("MIN", v, keys.gids, keys.num_groups)
        hi = compute_aggregate("MAX", v, keys.gids, keys.num_groups)
        avg = compute_aggregate("AVG", v, keys.gids, keys.num_groups)
        assert (lo <= avg + 1e-9).all()
        assert (avg <= hi + 1e-9).all()

    @settings(max_examples=60)
    @given(labels=labels_strategy, values=values_strategy)
    def test_matches_dict_reference(self, labels, values):
        table = aligned_table(labels, values)
        keys = compute_group_keys(table, ["g"])
        v = table.column("v").values_numeric()
        avg = compute_aggregate("AVG", v, keys.gids, keys.num_groups)
        got = dict(zip([k[0] for k in keys.key_tuples(table)], avg))
        ref = {}
        for label, value in zip(table["g"], table["v"]):
            ref.setdefault(label, []).append(value)
        for label, vals in ref.items():
            np.testing.assert_allclose(
                got[label], np.mean(vals), rtol=1e-9, atol=1e-9
            )


class TestCubeProperties:
    @given(attrs=st.lists(st.sampled_from("abcde"), min_size=0,
                          max_size=4, unique=True))
    def test_powerset_size(self, attrs):
        sets = cube_grouping_sets(attrs)
        assert len(sets) == 2 ** len(attrs)
        assert len(set(sets)) == len(sets)

    @settings(max_examples=30)
    @given(labels=labels_strategy, values=values_strategy)
    def test_cube_rollups_consistent(self, labels, values):
        """In a CUBE result, the ALL row's SUM equals the sum of the
        per-group SUMs (additivity of rollups)."""
        table = aligned_table(labels, values)
        out = execute_sql(
            "SELECT g, SUM(v) s FROM T GROUP BY g WITH CUBE", {"T": table}
        )
        from repro.engine.groupby import ALL_MARKER

        per_group = [
            s for g, s in zip(out["g"], out["s"]) if g != ALL_MARKER
        ]
        total = [s for g, s in zip(out["g"], out["s"]) if g == ALL_MARKER]
        np.testing.assert_allclose(
            np.sum(per_group), total[0], rtol=1e-9, atol=1e-6
        )


class TestWelfordProperties:
    @settings(max_examples=60)
    @given(values=values_strategy)
    def test_matches_numpy(self, values):
        acc = WelfordAccumulator()
        acc.add_many(values)
        arr = np.asarray(values)
        np.testing.assert_allclose(acc.mean, arr.mean(), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            acc.variance, arr.var(), rtol=1e-6, atol=1e-6
        )

    @settings(max_examples=60)
    @given(values=values_strategy, split=st.integers(0, 200))
    def test_merge_equals_single_pass(self, values, split):
        split = min(split, len(values))
        left, right = WelfordAccumulator(), WelfordAccumulator()
        left.add_many(values[:split])
        right.add_many(values[split:])
        left.merge(right)
        arr = np.asarray(values)
        np.testing.assert_allclose(left.mean, arr.mean(), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            left.variance, arr.var(), rtol=1e-6, atol=1e-6
        )


class TestStatisticsProperties:
    @settings(max_examples=40)
    @given(labels=labels_strategy, values=values_strategy)
    def test_strata_stats_match_numpy(self, labels, values):
        table = aligned_table(labels, values)
        stats = collect_strata_statistics(table, ["g"], ["v"])
        cs = stats.stats_for("v")
        ref = {}
        for label, value in zip(table["g"], table["v"]):
            ref.setdefault(label, []).append(value)
        for key, mean, var in zip(stats.keys, cs.mean, cs.variance):
            vals = np.asarray(ref[key[0]])
            np.testing.assert_allclose(mean, vals.mean(), rtol=1e-9, atol=1e-9)
            # Raw additive moments (total, total_sq) are the persisted,
            # mergeable representation; recovering the variance from
            # them cancels to O(eps * mean^2) absolute error when
            # |mean| >> sigma, so the tolerance must scale with the
            # conditioning of the input.
            np.testing.assert_allclose(
                var,
                vals.var(),
                rtol=1e-6,
                atol=1e-5 + 1e-12 * float(mean) ** 2,
            )


class TestSqlProperties:
    @settings(max_examples=40)
    @given(
        labels=labels_strategy,
        values=values_strategy,
        threshold=st.floats(-1e6, 1e6, allow_nan=False),
    )
    def test_filter_partition(self, labels, values, threshold):
        """COUNT(WHERE p) + COUNT(WHERE NOT p) == COUNT(*)."""
        table = aligned_table(labels, values)
        total = execute_sql("SELECT COUNT(*) c FROM T", {"T": table})["c"][0]
        hit = execute_sql(
            f"SELECT COUNT(*) c FROM T WHERE v > {threshold!r}", {"T": table}
        )["c"][0]
        miss = execute_sql(
            f"SELECT COUNT(*) c FROM T WHERE NOT v > {threshold!r}",
            {"T": table},
        )["c"][0]
        assert hit + miss == total
