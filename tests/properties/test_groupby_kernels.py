"""Differential proof of the factorize kernels (hypothesis).

The routing between :func:`factorize_hash` (O(n) direct addressing)
and :func:`factorize_sort` (``np.unique``) is only allowed to be a
*performance* decision — both kernels, the kernel router, and the
legacy ``np.unique`` formulation must emit byte-identical results:
the same dense int64 codes in ascending value order and the same
first-occurrence representatives. The suite drives all three through
generated inputs across dtypes, NaN/empty/single-group shapes, and
wide keys that straddle the ``_MAX_COMBINED_KEYSPACE`` routing
boundary into the lexsort path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine.groupby as gb
from repro.engine.groupby import (
    compute_group_keys,
    compute_group_keys_sorted,
    factorize,
    factorize_hash,
    factorize_sort,
)
from repro.engine.table import Table


def legacy_factorize(arr):
    """The pre-kernel formulation: ``np.unique`` verbatim (the original
    ``factorize`` body), kept here as the differential reference."""
    uniques, first_index, codes = np.unique(
        arr, return_index=True, return_inverse=True
    )
    return codes.astype(np.int64), first_index


def assert_same_factorization(*results):
    ref_codes, ref_first = results[0]
    for codes, first in results[1:]:
        assert codes.dtype == np.int64
        assert np.array_equal(codes, ref_codes)
        assert np.array_equal(first, ref_first)


def assert_same_group_keys(a, b):
    assert a.by == b.by
    assert a.num_groups == b.num_groups
    assert np.array_equal(a.gids, b.gids)
    assert np.array_equal(a.representative, b.representative)


# ----------------------------------------------------------------------
# kernel level: hash == sort == legacy np.unique
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @settings(max_examples=100)
    @given(
        values=st.lists(
            st.integers(-1000, 1000), min_size=0, max_size=300
        ),
        dtype=st.sampled_from([np.int64, np.int32, np.int16]),
    )
    def test_signed_integers(self, values, dtype):
        arr = np.asarray(values, dtype=dtype)
        assert_same_factorization(
            legacy_factorize(arr),
            factorize_sort(arr),
            factorize_hash(arr),
            factorize(arr),
        )

    @settings(max_examples=60)
    @given(
        values=st.lists(
            st.integers(0, 2000), min_size=0, max_size=300
        ),
        dtype=st.sampled_from([np.uint64, np.uint32, np.uint8]),
    )
    def test_unsigned_integers(self, values, dtype):
        arr = np.asarray(values, dtype=np.uint64).astype(dtype)
        assert_same_factorization(
            legacy_factorize(arr),
            factorize_sort(arr),
            factorize_hash(arr),
            factorize(arr),
        )

    @settings(max_examples=40)
    @given(values=st.lists(st.booleans(), min_size=0, max_size=100))
    def test_booleans(self, values):
        arr = np.asarray(values, dtype=np.bool_)
        assert_same_factorization(
            legacy_factorize(arr),
            factorize_sort(arr),
            factorize_hash(arr),
            factorize(arr),
        )

    @settings(max_examples=60)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            min_size=0,
            max_size=200,
        ),
        nan_count=st.integers(0, 3),
    )
    def test_floats_with_nans_route_to_sort(self, values, nan_count):
        # Floats are sort-path territory (NaN ordering, no integer
        # domain); the router must match the legacy output exactly.
        arr = np.asarray(values + [np.nan] * nan_count, dtype=np.float64)
        assert_same_factorization(
            legacy_factorize(arr),
            factorize_sort(arr),
            factorize(arr),
        )

    @settings(max_examples=40)
    @given(
        values=st.lists(
            st.integers(0, 2**50), min_size=1, max_size=50
        )
    )
    def test_sparse_domains_route_to_sort(self, values):
        # Domains too wide to direct-address still factorize correctly
        # through the router's sort fallback.
        arr = np.asarray(values, dtype=np.int64)
        assert_same_factorization(
            legacy_factorize(arr), factorize(arr)
        )

    def test_empty_input(self):
        arr = np.asarray([], dtype=np.int64)
        for codes, first in (
            factorize(arr),
            factorize_hash(arr),
            factorize_sort(arr),
        ):
            assert len(codes) == 0 and len(first) == 0
            assert codes.dtype == np.int64

    def test_single_group_input(self):
        arr = np.full(64, 7, dtype=np.int64)
        assert_same_factorization(
            legacy_factorize(arr),
            factorize_sort(arr),
            factorize_hash(arr),
            factorize(arr),
        )

    def test_hash_kernel_rejects_floats(self):
        with pytest.raises(TypeError):
            factorize_hash(np.asarray([1.0, 2.0]))

    def test_hash_kernel_rejects_sparse_domains(self):
        with pytest.raises(ValueError):
            factorize_hash(np.asarray([0, 2**40]))


# ----------------------------------------------------------------------
# table level: routed group keys == lexsort path == legacy reference
# ----------------------------------------------------------------------
LABELS = ["a", "b", "c", "d", "e"]

table_rows = st.lists(
    st.tuples(
        st.sampled_from(LABELS),
        st.integers(-50, 50),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=0,
    max_size=150,
)

by_strategy = st.sampled_from(
    [("s",), ("i",), ("f",), ("b",), ("s", "i"), ("s", "i", "b"),
     ("f", "s"), ("s", "i", "f", "b")]
)


def make_table(rows):
    return Table.from_pydict(
        {
            "s": [r[0] for r in rows],
            "i": [r[1] for r in rows],
            "f": [r[2] for r in rows],
            "b": [r[3] for r in rows],
        }
    )


def legacy_group_keys(table, by):
    """Group ids the pre-kernel engine computed: legacy per-column
    factorize, python-int combine, legacy factorize of the combined
    codes — the original ``compute_group_keys`` body."""
    n = table.num_rows
    all_codes = []
    for name in by:
        codes, _ = legacy_factorize(table.column(name).data)
        all_codes.append(codes)
    combined = all_codes[0]
    for codes in all_codes[1:]:
        k = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * k + codes
    gids, first_index = legacy_factorize(combined)
    return gids, len(first_index), first_index


class TestTableEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(rows=table_rows, by=by_strategy)
    def test_hash_sort_and_legacy_agree(self, rows, by):
        table = make_table(rows)
        routed = compute_group_keys(table, by)
        lexsorted = compute_group_keys_sorted(table, by)
        assert_same_group_keys(routed, lexsorted)
        gids, num_groups, representative = legacy_group_keys(table, by)
        assert routed.num_groups == num_groups
        assert np.array_equal(routed.gids, gids)
        assert np.array_equal(routed.representative, representative)

    @settings(max_examples=30, deadline=None)
    @given(rows=table_rows, by=by_strategy)
    def test_forced_hash_kernel_agrees(self, rows, by):
        # Force every eligible per-column factorize through the hash
        # kernel regardless of the cost rule, then compare against the
        # pure sort path. (Patched by hand, not via the monkeypatch
        # fixture: function-scoped fixtures don't mix with @given.)
        def hash_or_sort(arr):
            arr = np.asarray(arr)
            if arr.dtype.kind in "biu" and len(arr):
                return factorize_hash(arr)
            return factorize_sort(arr)

        table = make_table(rows)
        lexsorted = compute_group_keys_sorted(table, by)
        original = gb.factorize
        gb.factorize = hash_or_sort
        try:
            forced = compute_group_keys(table, by)
        finally:
            gb.factorize = original
        assert_same_group_keys(forced, lexsorted)

    @settings(max_examples=20, deadline=None)
    @given(rows=table_rows, by=by_strategy)
    def test_across_the_keyspace_routing_boundary(self, rows, by):
        # Shrink the combined-keyspace limit so generated tables land on
        # both sides of the boundary; the lexsort reroute must be
        # indistinguishable from the combine path.
        table = make_table(rows)
        reference = compute_group_keys(table, by)
        original = gb._MAX_COMBINED_KEYSPACE
        gb._MAX_COMBINED_KEYSPACE = 1
        try:
            rerouted = compute_group_keys(table, by)
        finally:
            gb._MAX_COMBINED_KEYSPACE = original
        assert_same_group_keys(rerouted, reference)

    def test_wide_keys_straddle_int64_keyspace(self):
        # Real (unpatched) overflow territory: 8 columns of ~900
        # distinct large ints each, cardinality product >> 2**63.
        rng = np.random.default_rng(3)
        table = Table.from_pydict(
            {
                f"k{i}": rng.integers(0, 2**40, size=900)
                for i in range(8)
            }
        )
        by = tuple(table.column_names)
        routed = compute_group_keys(table, by)
        lexsorted = compute_group_keys_sorted(table, by)
        assert_same_group_keys(routed, lexsorted)
        assert routed.num_groups == 900  # all-distinct rows, no aliasing
