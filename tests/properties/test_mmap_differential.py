"""Differential suite: lazy mmap answers ≡ eager npz answers.

Two warehouses built identically (same base rows, seed, budget) — one
on the eager compressed ``npz`` backend, one on the lazy zero-copy
``mmap`` backend — must be indistinguishable to a client: the same
queries return byte-identical answer tables, the same accuracy
contracts, and the same group codes, on both the plain service and a
2-shard scatter-gather topology. This is the acceptance guarantee for
the projection pushdown: loading fewer bytes lazily must never change
an answer.
"""

import numpy as np
import pytest

from repro.engine.groupby import compute_group_keys
from repro.warehouse import ShardedWarehouseService, WarehouseService

QUERIES = [
    "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country",
    "SELECT country, SUM(value) s, COUNT(*) c FROM OpenAQ "
    "GROUP BY country ORDER BY s DESC LIMIT 5",
    "SELECT parameter, MIN(value) lo, MAX(value) hi, STD(value) sd "
    "FROM OpenAQ WHERE country = 'C00' GROUP BY parameter",
    "SELECT COUNT(*) n FROM OpenAQ",
    "SELECT country, parameter, AVG(value) a FROM OpenAQ "
    "WHERE value > 10 GROUP BY country, parameter ORDER BY country, parameter",
    "SELECT country, SUM(value) / COUNT(value) m FROM OpenAQ "
    "GROUP BY country ORDER BY country",
]


def _assert_tables_byte_identical(a, b, context):
    assert a.column_names == b.column_names, context
    assert a.num_rows == b.num_rows, context
    for cname in a.column_names:
        ca, cb = a.column(cname), b.column(cname)
        assert ca.dtype is cb.dtype, f"{context}: dtype of {cname}"
        assert ca.categories == cb.categories, f"{context}: cats of {cname}"
        da, db = np.asarray(ca.data), np.asarray(cb.data)
        assert da.dtype == db.dtype, f"{context}: storage dtype of {cname}"
        np.testing.assert_array_equal(da, db, err_msg=f"{context}: {cname}")


def _build_plain(root, table, backend):
    service = WarehouseService(root, {"OpenAQ": table}, backend=backend)
    service.build(
        "s", "OpenAQ", group_by=["country", "parameter"],
        value_columns=["value"], budget=2_000, seed=11,
    )
    return service


@pytest.fixture()
def plain_pair(tmp_path, openaq_small):
    eager = _build_plain(tmp_path / "npz", openaq_small, "npz")
    lazy = _build_plain(tmp_path / "mmap", openaq_small, "mmap")
    return eager, lazy


@pytest.fixture()
def sharded_pair(tmp_path, openaq_small):
    def build(root, backend):
        service = ShardedWarehouseService(
            root, {"OpenAQ": openaq_small}, shards=2,
            backend=backend, workers="inprocess",
        )
        service.build(
            "s", "OpenAQ", group_by=["country", "parameter"],
            value_columns=["value"], budget=2_000, seed=11,
        )
        return service

    eager = build(tmp_path / "npz", "npz")
    lazy = build(tmp_path / "mmap", "mmap")
    yield eager, lazy
    eager.close()
    lazy.close()


class TestPlainTopology:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_answers_byte_identical(self, plain_pair, sql):
        eager, lazy = plain_pair
        a = eager.query(sql)
        b = lazy.query(sql)
        assert a.route.approximate == b.route.approximate
        assert a.route.sample_name == b.route.sample_name
        _assert_tables_byte_identical(a.table, b.table, sql)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_contracts_identical(self, plain_pair, sql):
        eager, lazy = plain_pair
        ca = eager.query_with_contract(sql).contract
        cb = lazy.query_with_contract(sql).contract
        assert ca.executed == cb.executed
        assert ca.sample_name == cb.sample_name
        assert ca.sample_version == cb.sample_version
        assert ca.predicted_cv == cb.predicted_cv
        assert ca.max_group_cv == cb.max_group_cv
        assert ca.group_cvs == cb.group_cvs

    def test_group_codes_identical(self, plain_pair):
        eager, lazy = plain_pair
        te = eager.store.get("s").sample.table
        tl = lazy.store.get("s").sample.table
        for by in (("country",), ("country", "parameter")):
            ke = compute_group_keys(te, list(by))
            kl = compute_group_keys(tl, list(by))
            assert ke.num_groups == kl.num_groups
            np.testing.assert_array_equal(ke.gids, kl.gids)
            assert ke.key_tuples(te) == kl.key_tuples(tl)

    def test_exact_fallback_byte_identical(self, plain_pair):
        eager, lazy = plain_pair
        sql = QUERIES[0]
        a = eager.query(sql, mode="exact")
        b = lazy.query(sql, mode="exact")
        assert not a.route.approximate and not b.route.approximate
        _assert_tables_byte_identical(a.table, b.table, "exact " + sql)


class TestShardedTopology:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_answers_byte_identical(self, sharded_pair, sql):
        eager, lazy = sharded_pair
        a = eager.query(sql)
        b = lazy.query(sql)
        assert a.route.approximate == b.route.approximate
        _assert_tables_byte_identical(a.table, b.table, sql)

    def test_contracts_identical(self, sharded_pair):
        eager, lazy = sharded_pair
        sql = QUERIES[0]
        ca = eager.query_with_contract(sql).contract
        cb = lazy.query_with_contract(sql).contract
        assert ca.executed == cb.executed
        assert ca.predicted_cv == cb.predicted_cv
        assert ca.max_group_cv == cb.max_group_cv
        assert ca.group_cvs == cb.group_cvs

    def test_refresh_keeps_equivalence(self, sharded_pair, openaq_small):
        eager, lazy = sharded_pair
        batch = openaq_small.head(500)
        eager.refresh("s", batch)
        lazy.refresh("s", batch)
        a = eager.query(QUERIES[0])
        b = lazy.query(QUERIES[0])
        _assert_tables_byte_identical(a.table, b.table, "post-refresh")
