"""AQP session: routing, exact fallback, and plan caching."""

import numpy as np
import pytest

from repro.aqp.session import AQPSession
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.sql.errors import QueryExecutionError


@pytest.fixture()
def session(openaq_small):
    s = AQPSession({"OpenAQ": openaq_small})
    sampler = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country", "parameter"))
    )
    s.register_sample(
        "aq3", sampler.sample_rate(openaq_small, 0.05, seed=1), "OpenAQ"
    )
    return s


def _relative_errors(exact, approx, key, value):
    truth = dict(zip(exact[key], exact[value]))
    est = dict(zip(approx[key], approx[value]))
    return [
        abs(est[k] - v) / abs(v)
        for k, v in truth.items()
        if k in est and v != 0
    ]


class TestRouting:
    def test_routes_query_sample_was_built_for(self, session):
        sql = (
            "SELECT country, parameter, AVG(value) a FROM OpenAQ "
            "GROUP BY country, parameter"
        )
        result = session.query(sql)
        assert result.approximate and result.sample_name == "aq3"

    def test_routes_unseen_predicate_and_coarser_grouping(self, session):
        # Neither the predicate nor the single-attribute grouping was in
        # the sample's build spec — weighted execution answers it anyway.
        sql = (
            "SELECT country, AVG(value) a FROM OpenAQ "
            "WHERE parameter = 'pm25' GROUP BY country"
        )
        result = session.query(sql)
        assert result.approximate
        exact = session.execute(sql)
        errors = _relative_errors(exact, result.table, "country", "a")
        assert errors and float(np.median(errors)) < 0.5

    def test_full_table_aggregate_routes(self, session):
        result = session.query("SELECT COUNT(*) c FROM OpenAQ")
        assert result.approximate
        truth = session.execute("SELECT COUNT(*) c FROM OpenAQ")
        assert result.table["c"][0] == pytest.approx(
            truth["c"][0], rel=0.15
        )

    def test_uncovered_grouping_falls_back_to_exact(self, session):
        result = session.query(
            "SELECT location, COUNT(*) c FROM OpenAQ GROUP BY location"
        )
        assert not result.approximate
        assert "no stored sample" in result.route.reason

    def test_plain_select_never_routes(self, session):
        result = session.query("SELECT country, value FROM OpenAQ LIMIT 5")
        assert not result.approximate
        assert result.table.num_rows == 5

    def test_approx_mode_raises_without_coverage(self, session):
        with pytest.raises(QueryExecutionError, match="approximately"):
            session.query(
                "SELECT location, COUNT(*) c FROM OpenAQ GROUP BY location",
                mode="approx",
            )

    def test_exact_mode_skips_samples(self, session):
        sql = (
            "SELECT country, parameter, AVG(value) a FROM OpenAQ "
            "GROUP BY country, parameter"
        )
        result = session.query(sql, mode="exact")
        assert not result.approximate

    def test_detail_rows_of_sampled_table_never_routed(self, session):
        # The aggregation lives in a different block: the sampled
        # table's own rows would reach the output unaggregated, so the
        # router must fall back to exact even though *a* block
        # aggregates and the grouping is covered.
        from repro.engine.table import Table

        session.register_table(
            "Dim",
            Table.from_pydict(
                {"country": ["US", "IN"], "w": [1.0, 2.0]}, name="Dim"
            ),
        )
        sql = (
            "SELECT a.country, a.value FROM OpenAQ a "
            "JOIN (SELECT country, COUNT(*) c FROM Dim GROUP BY country) s "
            "ON a.country = s.country"
        )
        result = session.query(sql)
        assert not result.approximate
        assert "unaggregated" in result.route.reason
        exact = session.execute(sql)
        assert result.table.num_rows == exact.num_rows

    def test_cte_passthrough_then_aggregate_routes(self, session):
        # Weights survive the non-aggregating CTE and are consumed by
        # the outer aggregation — routable.
        result = session.query(
            "WITH f AS (SELECT country, value FROM OpenAQ) "
            "SELECT country, AVG(value) a FROM f GROUP BY country"
        )
        assert result.approximate

    def test_tightest_stratification_wins(self, session, openaq_small):
        # A second, coarser sample also covers country-only queries; the
        # CV-based router must still pick a usable one and record a score.
        sampler = CVOptSampler(
            GroupByQuerySpec.single("value", by=("country",))
        )
        session.register_sample(
            "by_country",
            sampler.sample_rate(openaq_small, 0.05, seed=2),
            "OpenAQ",
        )
        result = session.query(
            "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        )
        assert result.approximate
        assert result.route.predicted_cv is not None
        assert result.sample_name in ("aq3", "by_country")


class TestPlanCache:
    def test_repeat_query_hits(self, session):
        sql = (
            "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        )
        first = session.query(sql)
        second = session.query(sql)
        assert not first.plan_cached and second.plan_cached
        assert session.plan_cache_hits == 1

    def test_shape_shared_across_literals(self, session):
        a = session.query(
            "SELECT country, COUNT(*) c FROM OpenAQ "
            "WHERE value > 10 GROUP BY country"
        )
        b = session.query(
            "SELECT country, COUNT(*) c FROM OpenAQ "
            "WHERE value > 99 GROUP BY country"
        )
        assert not a.plan_cached and b.plan_cached
        # ...and the literal still takes effect.
        assert a.table.num_rows >= b.table.num_rows

    def test_whitespace_and_case_normalized(self, session):
        session.query("SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country")
        other = session.query(
            "select   country, count(*) c from OpenAQ group by country"
        )
        assert other.plan_cached

    def test_registration_invalidates(self, session, openaq_small):
        sql = "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country"
        session.query(sql)
        sampler = CVOptSampler(
            GroupByQuerySpec.single("value", by=("country",))
        )
        session.register_sample(
            "late", sampler.sample_rate(openaq_small, 0.02, seed=3), "OpenAQ"
        )
        assert not session.query(sql).plan_cached

    def test_equal_literals_of_different_types_not_conflated(self, session):
        # 1 and 1.0 hash equal; the bound-plan cache must still keep
        # them apart or the second query inherits the first's dtype.
        a = session.query("SELECT 1 x FROM OpenAQ LIMIT 1")
        b = session.query("SELECT 1.0 x FROM OpenAQ LIMIT 1")
        from repro.engine.schema import DType

        assert a.table.column("x").dtype is DType.INT64
        assert b.table.column("x").dtype is DType.FLOAT64

    def test_bound_plans_capped(self, session):
        from repro.aqp import session as session_module

        for i in range(session_module._MAX_BOUND_PLANS + 10):
            session.query(
                f"SELECT country, COUNT(*) c FROM OpenAQ "
                f"WHERE value > {i}.5 GROUP BY country"
            )
        entry = next(iter(session._shape_cache.values()))
        assert len(entry.bound) <= session_module._MAX_BOUND_PLANS

    def test_modes_cached_separately(self, session):
        sql = "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country"
        approx = session.query(sql)
        exact = session.query(sql, mode="exact")
        assert approx.approximate and not exact.approximate


class TestResultFidelity:
    def test_routed_results_track_truth(self, session):
        sql = (
            "SELECT parameter, SUM(value) s FROM OpenAQ GROUP BY parameter"
        )
        approx = session.query(sql)
        assert approx.approximate
        exact = session.execute(sql)
        errors = _relative_errors(exact, approx.table, "parameter", "s")
        assert errors and float(np.median(errors)) < 0.5

    def test_exact_mode_matches_execute_sql(self, session, openaq_small):
        from repro.engine.sql.executor import execute_sql

        sql = (
            "SELECT country, AVG(value) a FROM OpenAQ "
            "GROUP BY country ORDER BY a DESC LIMIT 5"
        )
        via_session = session.query(sql, mode="exact").table
        direct = execute_sql(sql, {"OpenAQ": openaq_small})
        assert list(via_session["country"]) == list(direct["country"])
        assert list(via_session["a"]) == list(direct["a"])
