import pytest

from repro.aqp.catalog import SampleCatalog
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec


@pytest.fixture()
def catalog(openaq_small):
    catalog = SampleCatalog()
    fine = CVOptSampler(
        [
            GroupByQuerySpec.single("value", by=("country", "parameter")),
        ]
    ).sample(openaq_small, 800, seed=0)
    coarse = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country",))]
    ).sample(openaq_small, 800, seed=0)
    catalog.add("fine", fine)
    catalog.add("coarse", coarse)
    return catalog


class TestCatalogBasics:
    def test_add_get_names(self, catalog):
        assert set(catalog.names()) == {"fine", "coarse"}
        assert len(catalog) == 2
        assert catalog.get("fine").allocation.by == ("country", "parameter")

    def test_duplicate_name_rejected(self, catalog):
        with pytest.raises(ValueError, match="replace=True"):
            catalog.add("fine", catalog.get("coarse"))

    def test_replace_swaps_in_place(self, catalog):
        coarse = catalog.get("coarse")
        catalog.add("fine", coarse, replace=True)
        assert catalog.get("fine") is coarse
        assert len(catalog) == 2

    def test_remove(self, catalog):
        catalog.remove("fine")
        assert catalog.names() == ["coarse"]
        with pytest.raises(KeyError):
            catalog.remove("fine")

    def test_missing_name(self, catalog):
        with pytest.raises(KeyError, match="available"):
            catalog.get("nope")


class TestRouting:
    def test_tightest_fit_wins(self, catalog):
        # A country-only query can be served by both; coarse is tighter.
        sql = "SELECT country, AVG(value) FROM OpenAQ GROUP BY country"
        assert catalog.route(sql) == "coarse"

    def test_fine_needed_for_two_attrs(self, catalog):
        sql = (
            "SELECT country, parameter, AVG(value) FROM OpenAQ "
            "GROUP BY country, parameter"
        )
        assert catalog.route(sql) == "fine"

    def test_unroutable_query(self, catalog):
        sql = "SELECT location, AVG(value) FROM OpenAQ GROUP BY location"
        assert catalog.route(sql) is None
        with pytest.raises(LookupError):
            catalog.answer(sql, "OpenAQ")

    def test_answer_routes_and_executes(self, catalog, openaq_small):
        sql = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        out = catalog.answer(sql, "OpenAQ")
        assert out.num_rows > 0
        assert "a" in out


class TestPersistence:
    def test_save_load_roundtrip(self, catalog, tmp_path):
        catalog.save(tmp_path / "cat")
        loaded = SampleCatalog.load(tmp_path / "cat")
        assert set(loaded.names()) == set(catalog.names())
        original = catalog.get("fine")
        restored = loaded.get("fine")
        assert restored.num_rows == original.num_rows
        assert restored.allocation.by == original.allocation.by
        assert list(restored.allocation.sizes) == list(
            original.allocation.sizes
        )

    def test_loaded_sample_answers_queries(self, catalog, tmp_path, openaq_small):
        catalog.save(tmp_path / "cat")
        loaded = SampleCatalog.load(tmp_path / "cat")
        sql = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        out = loaded.answer(sql, "OpenAQ")
        assert out.num_rows > 0

    def test_save_writes_versioned_store_layout(self, catalog, tmp_path):
        from repro.warehouse.store import SampleStore

        catalog.save(tmp_path / "cat")
        store = SampleStore(tmp_path / "cat")
        assert set(store.names()) == {"fine", "coarse"}
        assert store.current_version("fine") == "v000001"
        # Saving again swaps the version atomically but keeps only the
        # newest — a checkpoint, not an unbounded history.
        catalog.save(tmp_path / "cat")
        assert store.current_version("fine") == "v000002"
        assert store.versions("fine") == ["v000002"]

    def test_save_mirrors_removals(self, catalog, tmp_path):
        catalog.save(tmp_path / "cat")
        catalog.remove("fine")
        catalog.save(tmp_path / "cat")
        loaded = SampleCatalog.load(tmp_path / "cat")
        assert loaded.names() == ["coarse"]

    def test_legacy_manifest_still_loads(self, catalog, tmp_path):
        import json

        directory = tmp_path / "legacy"
        directory.mkdir()
        manifest = {}
        for name in catalog.names():
            sample = catalog.get(name)
            stem = f"sample_{len(manifest)}"
            sample.table.save(directory / f"{stem}.rows.npz")
            manifest[name] = {
                "stem": stem,
                "method": sample.method,
                "by": list(sample.allocation.by),
                "keys": [list(k) for k in sample.allocation.keys],
                "populations": [
                    int(x) for x in sample.allocation.populations
                ],
                "sizes": [int(x) for x in sample.allocation.sizes],
                "source_rows": sample.source_rows,
                "budget": sample.budget,
            }
        (directory / "manifest.json").write_text(json.dumps(manifest))
        loaded = SampleCatalog.load(directory)
        assert set(loaded.names()) == set(catalog.names())
