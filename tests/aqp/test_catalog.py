import pytest

from repro.aqp.catalog import SampleCatalog
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec


@pytest.fixture()
def catalog(openaq_small):
    catalog = SampleCatalog()
    fine = CVOptSampler(
        [
            GroupByQuerySpec.single("value", by=("country", "parameter")),
        ]
    ).sample(openaq_small, 800, seed=0)
    coarse = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country",))]
    ).sample(openaq_small, 800, seed=0)
    catalog.add("fine", fine)
    catalog.add("coarse", coarse)
    return catalog


class TestCatalogBasics:
    def test_add_get_names(self, catalog):
        assert set(catalog.names()) == {"fine", "coarse"}
        assert len(catalog) == 2
        assert catalog.get("fine").allocation.by == ("country", "parameter")

    def test_duplicate_name_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.add("fine", catalog.get("coarse"))

    def test_missing_name(self, catalog):
        with pytest.raises(KeyError, match="available"):
            catalog.get("nope")


class TestRouting:
    def test_tightest_fit_wins(self, catalog):
        # A country-only query can be served by both; coarse is tighter.
        sql = "SELECT country, AVG(value) FROM OpenAQ GROUP BY country"
        assert catalog.route(sql) == "coarse"

    def test_fine_needed_for_two_attrs(self, catalog):
        sql = (
            "SELECT country, parameter, AVG(value) FROM OpenAQ "
            "GROUP BY country, parameter"
        )
        assert catalog.route(sql) == "fine"

    def test_unroutable_query(self, catalog):
        sql = "SELECT location, AVG(value) FROM OpenAQ GROUP BY location"
        assert catalog.route(sql) is None
        with pytest.raises(LookupError):
            catalog.answer(sql, "OpenAQ")

    def test_answer_routes_and_executes(self, catalog, openaq_small):
        sql = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        out = catalog.answer(sql, "OpenAQ")
        assert out.num_rows > 0
        assert "a" in out


class TestPersistence:
    def test_save_load_roundtrip(self, catalog, tmp_path):
        catalog.save(tmp_path / "cat")
        loaded = SampleCatalog.load(tmp_path / "cat")
        assert set(loaded.names()) == set(catalog.names())
        original = catalog.get("fine")
        restored = loaded.get("fine")
        assert restored.num_rows == original.num_rows
        assert restored.allocation.by == original.allocation.by
        assert list(restored.allocation.sizes) == list(
            original.allocation.sizes
        )

    def test_loaded_sample_answers_queries(self, catalog, tmp_path, openaq_small):
        catalog.save(tmp_path / "cat")
        loaded = SampleCatalog.load(tmp_path / "cat")
        sql = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        out = loaded.answer(sql, "OpenAQ")
        assert out.num_rows > 0
