import numpy as np
import pytest

from repro.aqp.errors import (
    GroupErrors,
    compare_results,
    result_cells,
    split_key_value_columns,
    summarize_many,
)
from repro.engine.table import Table


@pytest.fixture()
def truth():
    return Table.from_pydict(
        {"g": ["a", "b", "c"], "avg": [10.0, 20.0, 40.0]}
    )


class TestSplitKeyValueColumns:
    def test_float_is_value(self, truth):
        keys, values = split_key_value_columns(truth)
        assert keys == ["g"]
        assert values == ["avg"]

    def test_int_and_string_keys(self):
        table = Table.from_pydict(
            {"g": ["a"], "year": [2017], "s": [1.5], "c": [2.5]}
        )
        keys, values = split_key_value_columns(table)
        assert keys == ["g", "year"]
        assert values == ["s", "c"]


class TestResultCells:
    def test_mapping(self, truth):
        cells = result_cells(truth)
        assert cells[("a",)] == {"avg": 10.0}
        assert len(cells) == 3

    def test_explicit_columns(self, truth):
        cells = result_cells(truth, key_columns=["g"], value_columns=["avg"])
        assert cells[("c",)]["avg"] == 40.0

    def test_multi_key(self):
        table = Table.from_pydict(
            {"a": ["x"], "b": [1], "v": [9.0]}
        )
        cells = result_cells(table)
        assert cells[("x", 1)] == {"v": 9.0}


class TestCompareResults:
    def test_exact_match_zero_error(self, truth):
        errors = compare_results(truth, truth)
        assert errors.max_error() == 0.0
        assert errors.mean_error() == 0.0
        assert errors.missing_groups == 0

    def test_relative_error(self, truth):
        estimate = Table.from_pydict(
            {"g": ["a", "b", "c"], "avg": [11.0, 18.0, 40.0]}
        )
        errors = compare_results(truth, estimate)
        assert errors.errors[(("a",), "avg")] == pytest.approx(0.1)
        assert errors.errors[(("b",), "avg")] == pytest.approx(0.1)
        assert errors.max_error() == pytest.approx(0.1)
        assert errors.mean_error() == pytest.approx(0.2 / 3)

    def test_missing_group_counts_full_error(self, truth):
        estimate = Table.from_pydict({"g": ["a"], "avg": [10.0]})
        errors = compare_results(truth, estimate)
        assert errors.missing_groups == 2
        assert errors.max_error() == 1.0

    def test_custom_missing_error(self, truth):
        estimate = Table.from_pydict({"g": ["a"], "avg": [10.0]})
        errors = compare_results(truth, estimate, missing_error=2.0)
        assert errors.max_error() == 2.0

    def test_extra_groups_counted(self, truth):
        estimate = Table.from_pydict(
            {"g": ["a", "b", "c", "zzz"], "avg": [10.0, 20.0, 40.0, 1.0]}
        )
        errors = compare_results(truth, estimate)
        assert errors.extra_groups == 1
        assert errors.max_error() == 0.0

    def test_zero_truth_skipped(self):
        truth = Table.from_pydict({"g": ["a", "b"], "v": [0.0, 10.0]})
        estimate = Table.from_pydict({"g": ["a", "b"], "v": [5.0, 10.0]})
        errors = compare_results(truth, estimate)
        assert errors.skipped_zero_truth == 1
        assert (("a",), "v") not in errors.errors

    def test_zero_truth_zero_estimate_scores_zero(self):
        truth = Table.from_pydict({"g": ["a"], "v": [0.0]})
        estimate = Table.from_pydict({"g": ["a"], "v": [0.0]})
        errors = compare_results(truth, estimate)
        assert errors.errors[(("a",), "v")] == 0.0

    def test_nan_estimate_counts_as_missing_error(self, truth):
        estimate = Table.from_pydict(
            {"g": ["a", "b", "c"], "avg": [float("nan"), 20.0, 40.0]}
        )
        errors = compare_results(truth, estimate)
        assert errors.errors[(("a",), "avg")] == 1.0

    def test_multiple_value_columns(self):
        truth = Table.from_pydict({"g": ["a"], "s": [100.0], "c": [10.0]})
        estimate = Table.from_pydict({"g": ["a"], "s": [110.0], "c": [10.0]})
        errors = compare_results(truth, estimate)
        assert errors.num_cells == 2
        assert errors.max_error() == pytest.approx(0.1)


class TestSummaries:
    def test_percentiles(self):
        errors = GroupErrors(
            errors={((str(i),), "v"): i / 100 for i in range(101)}
        )
        assert errors.percentile(0.5) == pytest.approx(0.5)
        assert errors.percentile(0.9) == pytest.approx(0.9)
        assert errors.max_error() == pytest.approx(1.0)
        profile = errors.percentile_profile()
        assert profile["p50"] == pytest.approx(0.5)
        assert profile["max"] == pytest.approx(1.0)

    def test_empty_errors_nan(self):
        errors = GroupErrors()
        assert np.isnan(errors.max_error())
        assert np.isnan(errors.percentile(0.5))

    def test_summarize_many_averages(self):
        a = GroupErrors(errors={(("x",), "v"): 0.2})
        b = GroupErrors(errors={(("x",), "v"): 0.4}, missing_groups=2)
        summary = summarize_many([a, b])
        assert summary["mean_error"] == pytest.approx(0.3)
        assert summary["max_error"] == pytest.approx(0.3)
        assert summary["missing_groups"] == pytest.approx(1.0)

    def test_summarize_empty(self):
        assert summarize_many([]) == {}
