import numpy as np
import pytest

from repro.aqp.estimator import estimate_groups
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


@pytest.fixture(scope="module")
def table():
    return make_grouped_table(
        sizes=[4000, 2000, 500],
        means=[100.0, 50.0, 10.0],
        stds=[10.0, 15.0, 2.0],
        seed=1,
        exact_moments=True,
    )


@pytest.fixture(scope="module")
def sample(table):
    sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
    return sampler.sample(table, 800, seed=0)


class TestEstimateGroups:
    def test_avg_estimates_close(self, sample):
        estimates = estimate_groups(sample, ["g"], "v", "AVG")
        assert set(estimates) == {(0,), (1,), (2,)}
        assert estimates[(0,)].value == pytest.approx(100.0, rel=0.05)
        assert estimates[(1,)].value == pytest.approx(50.0, rel=0.10)

    def test_count_estimates_population(self, sample):
        estimates = estimate_groups(sample, ["g"], None, "COUNT")
        assert estimates[(0,)].value == pytest.approx(4000, rel=1e-9)
        assert estimates[(1,)].value == pytest.approx(2000, rel=1e-9)

    def test_sum_estimates(self, sample, table):
        estimates = estimate_groups(sample, ["g"], "v", "SUM")
        truth = {}
        g = np.asarray(table["g"])
        v = np.asarray(table["v"], dtype=float)
        for key in (0, 1, 2):
            truth[key] = v[g == key].sum()
        assert estimates[(0,)].value == pytest.approx(truth[0], rel=0.05)

    def test_std_error_brackets_truth(self, sample):
        """The 95% CI should contain the true mean for most groups."""
        estimates = estimate_groups(sample, ["g"], "v", "AVG")
        truths = {(0,): 100.0, (1,): 50.0, (2,): 10.0}
        hits = 0
        for key, est in estimates.items():
            lo, hi = est.confidence_interval()
            if lo <= truths[key] <= hi:
                hits += 1
        assert hits >= 2

    def test_cv_reported(self, sample):
        estimates = estimate_groups(sample, ["g"], "v", "AVG")
        for est in estimates.values():
            assert est.cv >= 0
            assert est.supporting_rows > 0

    def test_predicate_filtering(self, sample):
        estimates = estimate_groups(
            sample, ["g"], "v", "AVG", predicate="v > 0"
        )
        assert len(estimates) >= 1

    def test_predicate_as_text_and_expr_agree(self, sample):
        from repro.engine.sql.parser import parse_expression

        by_text = estimate_groups(
            sample, ["g"], "v", "AVG", predicate="v > 50"
        )
        by_expr = estimate_groups(
            sample, ["g"], "v", "AVG", predicate=parse_expression("v > 50")
        )
        assert set(by_text) == set(by_expr)
        for key in by_text:
            assert by_text[key].value == pytest.approx(by_expr[key].value)

    def test_unknown_function_rejected(self, sample):
        with pytest.raises(ValueError):
            estimate_groups(sample, ["g"], "v", "MEDIAN")

    def test_avg_requires_column(self, sample):
        with pytest.raises(ValueError):
            estimate_groups(sample, ["g"], None, "AVG")

    def test_census_sample_exact(self, table):
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        census = sampler.sample(table, table.num_rows, seed=0)
        estimates = estimate_groups(census, ["g"], "v", "AVG")
        assert estimates[(0,)].value == pytest.approx(100.0, rel=1e-9)
        assert estimates[(0,)].std_error == pytest.approx(0.0, abs=1e-9)

    def test_avg_error_within_reported_uncertainty(self, table):
        """Empirical spread of repeated estimates should be comparable
        to the reported standard error (within a loose factor)."""
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        rng = np.random.default_rng(5)
        values, reported = [], []
        for _ in range(25):
            sample = sampler.sample(table, 500, seed=rng)
            est = estimate_groups(sample, ["g"], "v", "AVG")[(0,)]
            values.append(est.value)
            reported.append(est.std_error)
        empirical = np.std(values)
        assert np.mean(reported) == pytest.approx(empirical, rel=0.8)
