import numpy as np
import pytest

from repro.aqp.runner import QueryTask, ground_truth, run_experiment
from repro.baselines import make_samplers
from repro.core.spec import GroupByQuerySpec, specs_from_sql
from repro.datasets.synthetic import make_grouped_table


@pytest.fixture(scope="module")
def table():
    return make_grouped_table(
        sizes=[3000, 1000, 200],
        means=[100.0, 50.0, 20.0],
        stds=[20.0, 10.0, 5.0],
        seed=2,
        exact_moments=True,
    )


SQL = "SELECT g, AVG(v) a FROM T GROUP BY g"
TASK = QueryTask(name="q1", sql=SQL, table_name="T")


class TestGroundTruth:
    def test_exact_answer(self, table):
        truth = ground_truth(TASK, table)
        lookup = dict(zip(truth["g"], truth["a"]))
        assert lookup[0] == pytest.approx(100.0)
        assert lookup[2] == pytest.approx(20.0)


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self, table):
        specs, derived = specs_from_sql(SQL)
        samplers = make_samplers(specs, derived, include_sample_seek=False)
        return run_experiment(
            table, [TASK], samplers, rate=0.05, repetitions=3, seed=1
        )

    def test_all_methods_present(self, result):
        assert set(result.methods()) == {"Uniform", "CS", "RL", "CVOPT"}
        assert result.queries() == ["q1"]

    def test_repetition_count(self, result):
        record = result.get("CVOPT", "q1")
        assert len(record.runs) == 3
        assert len(record.answer_seconds) == 3

    def test_summary_fields(self, result):
        summary = result.get("CVOPT", "q1").summary()
        for field in ("mean_error", "max_error", "median_error",
                      "p90_error", "missing_groups", "answer_seconds"):
            assert field in summary

    def test_stratified_beats_nothing_sampled(self, result):
        """Errors are finite and below 100% for stratified methods on
        this easy workload."""
        for method in ("CS", "RL", "CVOPT"):
            assert result.get(method, "q1").mean_error() < 0.5

    def test_precompute_seconds_recorded(self, result):
        assert set(result.precompute_seconds) == {
            "Uniform", "CS", "RL", "CVOPT"
        }
        assert all(v >= 0 for v in result.precompute_seconds.values())

    def test_table_rendering(self, result):
        text = result.table()
        assert "CVOPT" in text
        assert "q1" in text
        assert "%" in text

    def test_to_dict(self, result):
        data = result.to_dict("max_error")
        assert data["CVOPT"]["q1"] >= 0

    def test_truths_can_be_precomputed(self, table):
        truths = {"q1": ground_truth(TASK, table)}
        samplers = {"CVOPT": make_samplers(
            GroupByQuerySpec.single("v", by=("g",)),
            include_sample_seek=False,
        )["CVOPT"]}
        result = run_experiment(
            table, [TASK], samplers, rate=0.05,
            repetitions=1, truths=truths,
        )
        assert result.get("CVOPT", "q1").mean_error() >= 0

    def test_deterministic_given_seed(self, table):
        samplers = {
            "CVOPT": make_samplers(
                GroupByQuerySpec.single("v", by=("g",)),
                include_sample_seek=False,
            )["CVOPT"]
        }
        r1 = run_experiment(table, [TASK], samplers, 0.05, 2, seed=9)
        r2 = run_experiment(table, [TASK], samplers, 0.05, 2, seed=9)
        assert r1.get("CVOPT", "q1").mean_error() == pytest.approx(
            r2.get("CVOPT", "q1").mean_error()
        )
