import numpy as np
import pytest

from repro.aqp.planning import (
    chebyshev_error_bound,
    expected_l2_norm,
    plan_sample_rate,
    predict_group_cvs,
    required_budget,
)
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table
from repro.engine.statistics import collect_strata_statistics


class TestPredictGroupCvs:
    def test_formula(self):
        out = predict_group_cvs(
            np.asarray([100]), np.asarray([0.5]), np.asarray([25])
        )
        expected = 0.5 * np.sqrt((100 - 25) / (100 * 25))
        assert out[0] == pytest.approx(expected)

    def test_census_is_exact(self):
        out = predict_group_cvs(
            np.asarray([50]), np.asarray([1.0]), np.asarray([50])
        )
        assert out[0] == 0.0

    def test_unsampled_group_infinite(self):
        out = predict_group_cvs(
            np.asarray([50]), np.asarray([1.0]), np.asarray([0])
        )
        assert np.isinf(out[0])

    def test_more_rows_lower_cv(self):
        populations = np.full(5, 1000)
        cvs = np.full(5, 0.8)
        sizes = np.asarray([5, 10, 50, 200, 999])
        out = predict_group_cvs(populations, cvs, sizes)
        assert (np.diff(out) < 0).all()


class TestChebyshev:
    def test_bound(self):
        # Pr[r > eps] <= (cv/eps)^2 = 0.05  =>  eps = cv/sqrt(0.05)
        assert chebyshev_error_bound(0.1, 0.95) == pytest.approx(
            0.1 / np.sqrt(0.05)
        )

    def test_higher_confidence_wider_bound(self):
        assert chebyshev_error_bound(0.1, 0.99) > chebyshev_error_bound(
            0.1, 0.9
        )

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            chebyshev_error_bound(0.1, 1.0)

    def test_empirical_coverage(self):
        """The Chebyshev bound must over-cover on a real workload."""
        table = make_grouped_table(
            sizes=[2000, 2000], means=[100.0, 50.0], stds=[20.0, 5.0],
            seed=8, exact_moments=True,
        )
        sampler = CVOptSampler(GroupByQuerySpec.single("v", by=("g",)))
        stats = collect_strata_statistics(table, ("g",), ["v"])
        rng = np.random.default_rng(1)
        violations = 0
        trials = 40
        for _ in range(trials):
            sample = sampler.sample(table, 200, seed=rng)
            sizes_by_key = dict(
                zip(
                    [k[0] for k in sample.allocation.keys],
                    sample.allocation.sizes,
                )
            )
            out = sample.answer(
                "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
            )
            truth = {0: 100.0, 1: 50.0}
            for key, estimate in zip(out["g"], out["a"]):
                idx = [k[0] for k in stats.keys].index(key)
                cv = predict_group_cvs(
                    stats.sizes[idx : idx + 1],
                    stats.stats_for("v").cv()[idx : idx + 1],
                    np.asarray([sizes_by_key[key]]),
                )[0]
                eps = chebyshev_error_bound(cv, 0.95)
                if abs(estimate - truth[key]) / truth[key] > eps:
                    violations += 1
        assert violations / (trials * 2) <= 0.05


class TestExpectedL2Norm:
    def test_matches_hand_computation(self):
        populations = np.asarray([100, 100])
        cvs = np.asarray([0.2, 0.4])
        sizes = np.asarray([10, 10])
        per_group = predict_group_cvs(populations, cvs, sizes)
        assert expected_l2_norm(populations, cvs, sizes) == pytest.approx(
            np.sqrt((per_group**2).sum())
        )

    def test_unsampled_group_infinite(self):
        assert np.isinf(
            expected_l2_norm(
                np.asarray([100]), np.asarray([0.5]), np.asarray([0])
            )
        )

    def test_weights(self):
        populations = np.asarray([100, 100])
        cvs = np.asarray([0.3, 0.3])
        sizes = np.asarray([10, 10])
        unweighted = expected_l2_norm(populations, cvs, sizes)
        weighted = expected_l2_norm(
            populations, cvs, sizes, weights=np.asarray([4.0, 4.0])
        )
        assert weighted == pytest.approx(2 * unweighted)


class TestRequiredBudget:
    @pytest.fixture(scope="class")
    def table(self):
        return make_grouped_table(
            sizes=[5000, 3000, 500],
            means=[100.0, 50.0, 20.0],
            stds=[20.0, 15.0, 6.0],
            seed=9,
            exact_moments=True,
        )

    def test_monotone_in_target(self, table):
        loose = required_budget(
            table, group_by=("g",), column="v", target=0.10
        )
        tight = required_budget(
            table, group_by=("g",), column="v", target=0.02
        )
        assert tight > loose

    def test_budget_achieves_target(self, table):
        target = 0.05
        budget = required_budget(
            table, group_by=("g",), column="v", target=target
        )
        stats = collect_strata_statistics(table, ("g",), ["v"])
        from repro.aqp.planning import _optimal_cvs_for_budget

        cvs = _optimal_cvs_for_budget(
            stats.sizes, np.nan_to_num(stats.stats_for("v").cv()), budget
        )
        assert cvs.max() <= target * 1.001

    def test_budget_is_minimal(self, table):
        target = 0.05
        budget = required_budget(
            table, group_by=("g",), column="v", target=target
        )
        stats = collect_strata_statistics(table, ("g",), ["v"])
        from repro.aqp.planning import _optimal_cvs_for_budget

        cvs_below = _optimal_cvs_for_budget(
            stats.sizes,
            np.nan_to_num(stats.stats_for("v").cv()),
            budget - 1,
        )
        assert cvs_below.max() > target

    def test_l2_criterion(self, table):
        budget = required_budget(
            table, group_by=("g",), column="v",
            target=0.08, criterion="l2",
        )
        assert 0 < budget <= table.num_rows

    def test_accepts_stats(self, table):
        stats = collect_strata_statistics(table, ("g",), ["v"])
        budget = required_budget(stats, column="v", target=0.05)
        direct = required_budget(
            table, group_by=("g",), column="v", target=0.05
        )
        assert budget == direct

    def test_validation(self, table):
        with pytest.raises(ValueError):
            required_budget(table, group_by=("g",), column="v", target=0)
        with pytest.raises(ValueError):
            required_budget(
                table, group_by=("g",), column="v", criterion="nope"
            )
        with pytest.raises(ValueError):
            required_budget(table)
        with pytest.raises(TypeError):
            required_budget([1, 2, 3], column="v")

    def test_plan_sample_rate(self, table):
        rate = plan_sample_rate(table, ("g",), "v", target=0.05)
        assert 0 < rate <= 1
        budget = required_budget(
            table, group_by=("g",), column="v", target=0.05
        )
        assert rate == pytest.approx(budget / table.num_rows)

    def test_end_to_end_accuracy(self, table):
        """Sampling at the planned budget should actually deliver
        roughly the target accuracy."""
        target_cv = 0.04
        budget = required_budget(
            table, group_by=("g",), column="v", target=target_cv
        )
        sampler = CVOptSampler(
            GroupByQuerySpec.single("v", by=("g",)), min_per_stratum=1
        )
        rng = np.random.default_rng(3)
        worst = []
        for _ in range(20):
            sample = sampler.sample(table, budget, seed=rng)
            out = sample.answer(
                "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
            )
            truth = np.asarray([100.0, 50.0, 20.0])
            rel = np.abs(np.asarray(out["a"]) - truth) / truth
            worst.append(rel.max())
        # CV ~ relative std; the average worst-case error should be in
        # the same ballpark as a ~2x CV normal bound.
        assert np.mean(worst) <= 3 * target_cv
