"""Hand-computed oracles for weighted (approximate) query answering.

A tiny table with a *fully specified* stratified sample (we choose the
sampled rows by hand) lets every Horvitz-Thompson identity be checked
exactly: SUM, COUNT, AVG, COUNT_IF, with and without predicates,
through the full SQL path.
"""

import numpy as np
import pytest

from repro.core.sample import (
    STRATUM_COLUMN,
    WEIGHT_COLUMN,
    Allocation,
    StratifiedSample,
)
from repro.engine.schema import DType
from repro.engine.table import Column, Table


@pytest.fixture()
def hand_sample():
    """Population (2 strata):

    stratum A: 6 rows, values 1..6 (sum 21, mean 3.5)
    stratum B: 2 rows, values 100, 200 (sum 300, mean 150)

    Sample: from A rows with values {2, 4, 6} (s=3, weight 2);
            from B the row with value 100 (s=1, weight 2).
    """
    table = Table.from_pydict(
        {
            "g": ["A", "A", "A", "B"],
            "v": [2.0, 4.0, 6.0, 100.0],
        }
    )
    table = table.with_column(
        WEIGHT_COLUMN, Column(DType.FLOAT64, np.asarray([2.0, 2.0, 2.0, 2.0]))
    )
    table = table.with_column(
        STRATUM_COLUMN, Column(DType.INT64, np.asarray([0, 0, 0, 1]))
    )
    allocation = Allocation(
        by=("g",),
        keys=[("A",), ("B",)],
        populations=np.asarray([6, 2]),
        sizes=np.asarray([3, 1]),
    )
    return StratifiedSample(
        table=table, allocation=allocation, method="hand",
        source_rows=8, budget=4,
    )


class TestHandComputedIdentities:
    def test_count_per_group(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, COUNT(*) c FROM T GROUP BY g ORDER BY g", "T"
        )
        assert list(out["c"]) == [6.0, 2.0]

    def test_sum_per_group(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, SUM(v) s FROM T GROUP BY g ORDER BY g", "T"
        )
        # A: 2*(2+4+6) = 24 (true 21: estimate, not exact).
        # B: 2*100 = 200 (true 300).
        assert list(out["s"]) == [24.0, 200.0]

    def test_avg_is_ratio(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, AVG(v) a FROM T GROUP BY g ORDER BY g", "T"
        )
        assert out["a"][0] == pytest.approx(24.0 / 6.0)
        assert out["a"][1] == pytest.approx(100.0)

    def test_grand_total(self, hand_sample):
        out = hand_sample.answer("SELECT SUM(v) s, COUNT(*) c FROM T", "T")
        assert out["s"][0] == 224.0
        assert out["c"][0] == 8.0

    def test_count_if(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, COUNT_IF(v >= 4) c FROM T GROUP BY g ORDER BY g", "T"
        )
        # A: rows 4 and 6 match -> 2*2 = 4 estimated matches.
        assert list(out["c"]) == [4.0, 2.0]

    def test_predicate_scales_subpopulation(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, COUNT(*) c FROM T WHERE v > 3 GROUP BY g ORDER BY g",
            "T",
        )
        # A: matching sampled rows {4, 6} -> 2 * 2 = 4.
        assert list(out["c"]) == [4.0, 2.0]

    def test_avg_under_predicate(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, AVG(v) a FROM T WHERE v > 3 GROUP BY g ORDER BY g",
            "T",
        )
        assert out["a"][0] == pytest.approx((4.0 + 6.0) / 2)

    def test_regrouping_to_grand_group(self, hand_sample):
        """Coarsening: both strata roll up into one group."""
        out = hand_sample.answer(
            "SELECT COUNT(*) c, AVG(v) a FROM T", "T"
        )
        assert out["c"][0] == 8.0
        assert out["a"][0] == pytest.approx(224.0 / 8.0)

    def test_min_max_are_sample_extrema(self, hand_sample):
        out = hand_sample.answer(
            "SELECT MIN(v) lo, MAX(v) hi FROM T", "T"
        )
        assert out["lo"][0] == 2.0
        assert out["hi"][0] == 100.0

    def test_cube_from_weighted_sample(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, SUM(v) s FROM T GROUP BY g WITH CUBE", "T"
        )
        from repro.engine.groupby import ALL_MARKER

        lookup = dict(zip(out["g"], out["s"]))
        assert lookup["A"] == 24.0
        assert lookup["B"] == 200.0
        assert lookup[ALL_MARKER] == 224.0

    def test_derived_expression_aggregate(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, SUM(v * 2) s FROM T GROUP BY g ORDER BY g", "T"
        )
        assert list(out["s"]) == [48.0, 400.0]

    def test_having_on_weighted_count(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, COUNT(*) c FROM T GROUP BY g HAVING COUNT(*) > 3",
            "T",
        )
        assert list(out["g"]) == ["A"]

    def test_subquery_preserves_weights(self, hand_sample):
        out = hand_sample.answer(
            "SELECT g, COUNT(*) c FROM "
            "(SELECT g, v FROM T WHERE v > 1) GROUP BY g ORDER BY g",
            "T",
        )
        assert list(out["c"]) == [6.0, 2.0]

    def test_median_weighted(self, hand_sample):
        out = hand_sample.answer(
            "SELECT MEDIAN(v) m FROM T", "T"
        )
        # Weighted median of {2,4,6,100} with equal weights 2: the
        # cumulative weight crosses half (4 of 8) at value 4.
        assert out["m"][0] == pytest.approx(4.0)


class TestUnbiasednessExact:
    """Averaging the HT estimator over ALL possible samples of a tiny
    population reproduces the true total exactly (design-unbiasedness),
    via direct enumeration."""

    def test_enumerate_all_samples(self):
        import itertools

        population = [1.0, 5.0, 9.0, 3.0]  # one stratum, n=4, s=2
        n, s = 4, 2
        true_total = sum(population)
        estimates = []
        for combo in itertools.combinations(range(n), s):
            rows = [population[i] for i in combo]
            weight = n / s
            estimates.append(weight * sum(rows))
        assert np.mean(estimates) == pytest.approx(true_total)

    def test_enumerate_two_strata(self):
        import itertools

        stratum_a = [1.0, 2.0, 3.0]  # choose 2
        stratum_b = [10.0, 30.0]  # choose 1
        true_total = sum(stratum_a) + sum(stratum_b)
        estimates = []
        for combo_a in itertools.combinations(range(3), 2):
            for combo_b in itertools.combinations(range(2), 1):
                est = (3 / 2) * sum(stratum_a[i] for i in combo_a)
                est += (2 / 1) * sum(stratum_b[i] for i in combo_b)
                estimates.append(est)
        assert np.mean(estimates) == pytest.approx(true_total)
