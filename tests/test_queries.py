import pytest

from repro.aqp.runner import ground_truth
from repro.core.spec import specs_from_sql
from repro.engine.sql.parser import parse_query
from repro.queries import (
    PAPER_QUERIES,
    get_query,
    queries_for_dataset,
    task_for,
)


class TestRegistry:
    def test_all_expected_names(self):
        expected = {
            "AQ1", "AQ2", "AQ3", "AQ3.a", "AQ3.b", "AQ3.c", "AQ4",
            "AQ5", "AQ6", "AQ7", "AQ8",
            "B1", "B2", "B2.a", "B2.b", "B2.c", "B3", "B4",
        }
        assert set(PAPER_QUERIES) == expected

    def test_get_query_unknown(self):
        with pytest.raises(KeyError):
            get_query("AQ99")

    def test_kinds(self):
        assert get_query("AQ3").kind == "SASG"
        assert get_query("AQ2").kind == "MASG"
        assert get_query("AQ7").kind == "SAMG"
        assert get_query("AQ8").kind == "MAMG"
        assert get_query("B4").kind == "MAMG"

    def test_datasets_split(self):
        openaq = {q.name for q in queries_for_dataset("openaq")}
        bikes = {q.name for q in queries_for_dataset("bikes")}
        assert "AQ1" in openaq and "B1" in bikes
        assert not openaq & bikes

    def test_task_for(self):
        task = task_for("AQ3")
        assert task.name == "AQ3"
        assert task.table_name == "OpenAQ"


class TestQueriesParse:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_parses(self, name):
        parse_query(get_query(name).sql)

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_specs_derivable(self, name):
        specs, _ = specs_from_sql(get_query(name).sql)
        assert specs

    def test_cube_queries_flagged(self):
        for name in ("AQ7", "AQ8", "B3", "B4"):
            assert parse_query(get_query(name).sql).with_cube


class TestQueriesExecute:
    @pytest.mark.parametrize(
        "name", [q.name for q in queries_for_dataset("openaq")]
    )
    def test_openaq_queries_run(self, name, openaq_small):
        truth = ground_truth(task_for(name), openaq_small)
        assert truth.num_rows > 0

    @pytest.mark.parametrize(
        "name", [q.name for q in queries_for_dataset("bikes")]
    )
    def test_bikes_queries_run(self, name, bikes_small):
        truth = ground_truth(task_for(name), bikes_small)
        assert truth.num_rows > 0

    def test_aq3_selects_everything(self, openaq_small):
        """AQ3's BETWEEN 0 AND 24 window covers all rows by design."""
        full = ground_truth(task_for("AQ3"), openaq_small)
        no_pred = ground_truth(
            task_for("AQ5"), openaq_small
        )  # different query, just sanity-size anchor
        assert full.num_rows >= no_pred.num_rows

    def test_selectivity_ladder(self, openaq_small):
        """AQ3.a/b/c select ~25/50/75% of rows."""
        from repro.engine.sql.executor import execute_sql

        total = openaq_small.num_rows
        for name, expected in (("AQ3.a", 0.25), ("AQ3.b", 0.5), ("AQ3.c", 0.75)):
            sql = get_query(name).sql
            where = parse_query(sql).where
            from repro.engine.expr import evaluate_predicate

            share = evaluate_predicate(where, openaq_small).mean()
            assert share == pytest.approx(expected, abs=0.03)

    def test_aq1_output_columns(self, openaq_small):
        truth = ground_truth(task_for("AQ1"), openaq_small)
        assert set(truth.column_names) == {"country", "avg_incre", "cnt_incre"}

    def test_cube_has_all_marker_rows(self, openaq_small):
        from repro.engine.groupby import ALL_MARKER

        truth = ground_truth(task_for("AQ7"), openaq_small)
        assert ALL_MARKER in set(truth["country"])
