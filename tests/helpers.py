"""Importable test helpers (kept out of conftest.py so test modules can
import them directly — conftest is loaded as a pytest plugin, not a
package, and relative imports from it break collection)."""


def reference_group_by(rows, key_fields, value_field=None):
    """Dict-based group-by oracle for engine tests.

    ``rows`` is a list of dicts; returns {key_tuple: list_of_values}.
    """
    out = {}
    for row in rows:
        key = tuple(row[k] for k in key_fields)
        out.setdefault(key, []).append(
            row[value_field] if value_field else 1
        )
    return out
