"""Observability end to end: /metrics exposition, /debug/traces,
the structured query log, cross-process trace propagation through real
shard workers, and the /stats cache-counter race regression."""

import asyncio
import json
import os
import threading

import pytest

from repro.obs import QueryLog, default_registry, default_tracer
from repro.serve import (
    AsyncWarehouseService,
    WarehouseHTTPServer,
    request,
)
from repro.warehouse import ShardedWarehouseService
from repro.warehouse.service import LRUCache

# CI legs re-run this suite per storage backend (see conftest.py)
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"


async def _started(sync_service, **server_kwargs):
    service = AsyncWarehouseService(sync_service)
    server = WarehouseHTTPServer(service, port=0, **server_kwargs)
    await server.start()
    return server


def _counter_value(name, **labels):
    metric = default_registry().get(name)
    return metric.value(**labels) if metric is not None else 0.0


class TestMetricsEndpoint:
    def test_metrics_scrape_is_prometheus_text(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, _ = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                status, text = await request(
                    "127.0.0.1", server.port, "GET", "/metrics"
                )
                assert status == 200
                assert isinstance(text, str)
                return text
            finally:
                await server.stop()

        text = asyncio.run(main())
        # core series, populated by the query above
        for series in (
            "# TYPE repro_queries_total counter",
            "# TYPE repro_query_seconds histogram",
            'repro_answer_cache_total{result="miss"}',
            "repro_plan_cache_total",
            'repro_http_requests_total{path="/query",status="200"}',
            "repro_query_seconds_bucket",
            "repro_serve_inflight",
        ):
            assert series in text, series

    def test_query_counters_advance_per_request(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                before = _counter_value("repro_queries_total",
                                        route="sample")
                cached_before = _counter_value("repro_queries_total",
                                               route="cached")
                status, _ = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                status, _ = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                assert _counter_value(
                    "repro_queries_total", route="sample"
                ) == before + 1
                assert _counter_value(
                    "repro_queries_total", route="cached"
                ) == cached_before + 1
            finally:
                await server.stop()

        asyncio.run(main())


class TestTracesEndpoint:
    def test_recent_traces_have_span_tree(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, _ = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                status, payload = await request(
                    "127.0.0.1", server.port, "GET",
                    "/debug/traces?limit=1",
                )
                assert status == 200
                (trace,) = payload["traces"]
                return trace
            finally:
                await server.stop()

        trace = asyncio.run(main())
        names = [s["name"] for s in trace["spans"]]
        assert names[0] == "http.query"
        for expected in ("aqp.parse", "aqp.execute", "warehouse.contract"):
            assert expected in names, names
        assert {s["trace_id"] for s in trace["spans"]} \
            == {trace["trace_id"]}
        # the session annotated the root with its routing decision
        assert trace["tags"]["answer_cache"] in ("hit", "miss")
        assert "shape_key" in trace["tags"]

    def test_bad_limit_is_400(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, _ = await request(
                    "127.0.0.1", server.port, "GET",
                    "/debug/traces?limit=nope",
                )
                assert status == 400
            finally:
                await server.stop()

        asyncio.run(main())


class TestQueryLog:
    RECORD_KEYS = {
        "ts", "sql", "mode", "status", "outcome", "elapsed_seconds",
        "trace_id", "shape_key", "plan_cache", "answer_cache", "route",
        "shard_fanout", "executed", "sample", "sample_version",
        "fallback_exact", "predicted_cv", "max_group_cv", "cv_columns",
        "staleness", "group_cv_summary", "row_count", "latency",
    }

    def test_one_record_per_query_with_full_schema(
        self, warehouse, tmp_path
    ):
        log_path = tmp_path / "q.jsonl"

        async def main():
            qlog = QueryLog(log_path)
            server = await _started(warehouse, query_log=qlog)
            try:
                for _ in range(2):
                    status, _ = await request(
                        "127.0.0.1", server.port, "POST", "/query",
                        {"sql": SQL},
                    )
                    assert status == 200
                status, _ = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": "NOT SQL"},
                )
                assert status == 400
                status, stats = await request(
                    "127.0.0.1", server.port, "GET", "/stats"
                )
                assert status == 200
                return stats
            finally:
                await server.stop()
                qlog.close()

        stats = asyncio.run(main())
        assert stats["query_log"]["records_written"] == 3

        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(records) == 3
        ok_first, ok_second, bad = records
        assert self.RECORD_KEYS <= set(ok_first)
        assert ok_first["outcome"] == "ok"
        assert ok_first["answer_cache"] == "miss"
        assert ok_second["answer_cache"] == "hit"
        assert ok_first["executed"] == "approximate"
        assert ok_first["sample"] == "s"
        assert ok_first["group_cv_summary"]["groups"] > 0
        assert ok_first["latency"]  # per-span breakdown is non-empty
        assert bad["outcome"] == "error"
        assert bad["status"] == 400
        # distinct queries get distinct traces
        assert len({r["trace_id"] for r in records}) == 3

    def test_logged_trace_id_matches_debug_traces(
        self, warehouse, tmp_path
    ):
        log_path = tmp_path / "q.jsonl"

        async def main():
            qlog = QueryLog(log_path)
            server = await _started(warehouse, query_log=qlog)
            try:
                status, _ = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                status, payload = await request(
                    "127.0.0.1", server.port, "GET",
                    "/debug/traces?limit=1",
                )
                assert status == 200
                return payload["traces"][0]
            finally:
                await server.stop()
                qlog.close()

        trace = asyncio.run(main())
        record = json.loads(log_path.read_text().splitlines()[-1])
        assert record["trace_id"] == trace["trace_id"]


class TestCrossProcessTracing:
    def test_worker_spans_share_the_front_trace_id(
        self, tmp_path, openaq_small
    ):
        # The acceptance-criteria scenario: a query on a 2-shard
        # topology with real spawned worker processes produces ONE
        # trace whose worker-side spans carry the front's trace id and
        # a foreign pid.
        if _BACKEND == "memory":
            pytest.skip("memory backend is per-process")
        service = ShardedWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, shards=2,
            backend=_BACKEND, workers="process",
        )
        try:
            service.build(
                "s", "OpenAQ", group_by=["country"],
                value_columns=["value"], budget=800, seed=4,
            )
            tracer = default_tracer()
            with tracer.trace("test.query") as t:
                service.query(SQL)
            d = t.trace.to_dict()
        finally:
            service.close()

        names = [s["name"] for s in d["spans"]]
        assert "shard.merge" in names
        assert names.count("shard.rpc") >= 2  # one per shard fan-out
        worker_spans = [
            s for s in d["spans"] if s["name"] == "shard.partials"
        ]
        assert len(worker_spans) == 2
        for span in worker_spans:
            assert span["trace_id"] == d["trace_id"]
            assert span["tags"]["pid"] != os.getpid()  # crossed a process
        assert {s["tags"]["shard"] for s in worker_spans} == {0, 1}
        assert d["tags"]["shard_fanout"] == 2

    def test_inprocess_workers_graft_without_duplicates(
        self, tmp_path, openaq_small
    ):
        # In-process shard clients share the front's tracer; grafting
        # must not double-record their spans.
        service = ShardedWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, shards=2,
            backend=_BACKEND, workers="inprocess",
        )
        try:
            service.build(
                "s", "OpenAQ", group_by=["country"],
                value_columns=["value"], budget=800, seed=4,
            )
            tracer = default_tracer()
            with tracer.trace("test.query") as t:
                service.query(SQL)
            d = t.trace.to_dict()
        finally:
            service.close()
        worker_spans = [
            s for s in d["spans"] if s["name"] == "shard.partials"
        ]
        assert len(worker_spans) == 2
        assert {s["tags"]["shard"] for s in worker_spans} == {0, 1}


class TestStatsCounterRace:
    def test_counters_snapshot_is_atomic_under_churn(self):
        # Regression: /stats used to read cache.hits / cache.misses /
        # len(cache) as three unlocked attribute accesses and could
        # see a torn view mid-lookup during a version hot-swap. The
        # snapshot must come from LRUCache.counters() (single lock
        # acquisition): hits + misses never exceeds completed lookups.
        cache = LRUCache(capacity=8)
        stop = threading.Event()
        completed = [0]

        def churn():
            i = 0
            while not stop.is_set():
                cache.put(i % 16, i)
                cache.get((i + 4) % 16)
                completed[0] += 1
                i += 1

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            for _ in range(300):
                snap = cache.counters()
                assert set(snap) == {
                    "size", "capacity", "hits", "misses"
                }
                assert snap["size"] <= snap["capacity"]
                assert snap["hits"] + snap["misses"] \
                    <= completed[0] + 1
        finally:
            stop.set()
            worker.join()
        final = cache.counters()
        assert final["hits"] + final["misses"] == completed[0]

    def test_service_stats_reports_cache_via_counters(self, warehouse):
        warehouse.query(SQL)
        warehouse.query(SQL)
        snap = warehouse.stats()["answer_cache"]
        assert set(snap) == {"size", "capacity", "hits", "misses"}
        assert snap["hits"] >= 1
        assert snap["misses"] >= 1
