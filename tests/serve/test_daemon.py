"""MaintenanceDaemon: pickup, hot-swap, routing, quarantine."""

import asyncio
import os

from repro.serve import (
    AsyncWarehouseService,
    MaintenanceDaemon,
    WarehouseHTTPServer,
    request,
)

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"


def drop(batch, watch_dir, name, tmp_path):
    """Atomically drop a batch table into the watch directory."""
    staging = tmp_path / f".staging-{name}"
    batch.save(staging)
    os.replace(staging, watch_dir / name)


async def wait_for(predicate, timeout=10.0, step=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(step)


class TestPickup:
    def test_dropped_batch_hot_swaps_served_version(
        self, split_warehouse, tmp_path
    ):
        """A dropped file refreshes the sample and the *next HTTP
        response* reflects the new version — the full serve loop."""
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            service = AsyncWarehouseService(sync_service)
            server = await WarehouseHTTPServer(service, port=0).start()
            daemon = MaintenanceDaemon(
                service, watch, poll_interval=0.02
            )
            daemon.start()
            try:
                before = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert before[1]["contract"]["sample_version"] == "v000001"
                drop(batch, watch, "s__day1.npz", tmp_path)
                await wait_for(
                    lambda: sync_service.served_versions()["s"]
                    != "v000001"
                )
                after = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                contract = after[1]["contract"]
                assert (
                    contract["sample_version"]
                    == sync_service.served_versions()["s"]
                    != "v000001"
                )
                if daemon.outcomes[-1].action == "incremental":
                    assert contract["staleness"] > 0.0
                # the file moved out of the queue
                assert not list(watch.glob("*.npz"))
                assert list((watch / "processed").glob("*.npz"))
                assert daemon.batches_applied == 1
            finally:
                await daemon.stop()
                await server.stop()

        asyncio.run(main())

    def test_unprefixed_file_uses_default_sample(
        self, split_warehouse, tmp_path
    ):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, sample="s", poll_interval=0.02
            )
            drop(batch, watch, "day1.npz", tmp_path)
            await daemon.poll()  # records the fingerprint
            outcomes = await daemon.poll()  # stable -> ingested
            assert [o.ok for o in outcomes] == [True]
            assert outcomes[0].sample == "s"
            assert sync_service.served_versions()["s"] != "v000001"

        asyncio.run(main())

    def test_unroutable_file_is_quarantined(
        self, split_warehouse, tmp_path
    ):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, sample=None, poll_interval=0.02,
                require_stable=False,
            )
            drop(batch, watch, "mystery.npz", tmp_path)
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [False]
            assert "no '<sample>__' prefix" in outcomes[0].error
            assert daemon.batches_failed == 1
            failed = list((watch / "failed").glob("*.npz"))
            assert len(failed) == 1
            note = failed[0].with_suffix(".error.txt")
            assert note.exists()

        asyncio.run(main())

    def test_bad_batch_quarantined_daemon_survives(
        self, split_warehouse, tmp_path
    ):
        """A corrupt file is quarantined; the next good file applies."""
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02,
                require_stable=False,
            )
            (watch / "s__corrupt.npz").write_bytes(b"this is not numpy")
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [False]
            drop(batch, watch, "s__good.npz", tmp_path)
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [True]
            assert daemon.batches_applied == 1
            assert daemon.batches_failed == 1
            stats = daemon.stats()
            assert stats["batches_applied"] == 1
            assert stats["last_outcome"]["ok"]

        asyncio.run(main())


class TestStability:
    def test_file_needs_two_scans_before_ingest(
        self, split_warehouse, tmp_path
    ):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02
            )
            drop(batch, watch, "s__day1.npz", tmp_path)
            first = await daemon.poll()
            assert first == []  # fingerprint recorded, not ingested
            second = await daemon.poll()
            assert [o.ok for o in second] == [True]

        asyncio.run(main())

    def test_stop_is_idempotent(self, split_warehouse, tmp_path):
        sync_service, _ = split_warehouse

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, tmp_path / "incoming", poll_interval=0.02
            )
            daemon.start()
            await asyncio.sleep(0.05)
            await daemon.stop()
            await daemon.stop()
            assert not daemon.stats()["running"]
            assert daemon.polls >= 1

        asyncio.run(main())
