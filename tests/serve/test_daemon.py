"""MaintenanceDaemon: pickup, hot-swap, routing, quarantine."""

import asyncio
import os

import pytest

from repro.serve import (
    AsyncWarehouseService,
    MaintenanceDaemon,
    WarehouseHTTPServer,
    request,
)

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"


def drop(batch, watch_dir, name, tmp_path):
    """Atomically drop a batch table into the watch directory."""
    staging = tmp_path / f".staging-{name}"
    batch.save(staging)
    os.replace(staging, watch_dir / name)


async def wait_for(predicate, timeout=10.0, step=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(step)


class TestPickup:
    def test_dropped_batch_hot_swaps_served_version(
        self, split_warehouse, tmp_path
    ):
        """A dropped file refreshes the sample and the *next HTTP
        response* reflects the new version — the full serve loop."""
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            service = AsyncWarehouseService(sync_service)
            server = await WarehouseHTTPServer(service, port=0).start()
            daemon = MaintenanceDaemon(
                service, watch, poll_interval=0.02
            )
            daemon.start()
            try:
                before = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert before[1]["contract"]["sample_version"] == "v000001"
                drop(batch, watch, "s__day1.npz", tmp_path)
                await wait_for(
                    lambda: sync_service.served_versions()["s"]
                    != "v000001"
                )
                after = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                contract = after[1]["contract"]
                assert (
                    contract["sample_version"]
                    == sync_service.served_versions()["s"]
                    != "v000001"
                )
                if daemon.outcomes[-1].action == "incremental":
                    assert contract["staleness"] > 0.0
                # the file moved out of the queue
                assert not list(watch.glob("*.npz"))
                assert list((watch / "processed").glob("*.npz"))
                assert daemon.batches_applied == 1
            finally:
                await daemon.stop()
                await server.stop()

        asyncio.run(main())

    def test_unprefixed_file_uses_default_sample(
        self, split_warehouse, tmp_path
    ):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, sample="s", poll_interval=0.02
            )
            drop(batch, watch, "day1.npz", tmp_path)
            await daemon.poll()  # records the fingerprint
            outcomes = await daemon.poll()  # stable -> ingested
            assert [o.ok for o in outcomes] == [True]
            assert outcomes[0].sample == "s"
            assert sync_service.served_versions()["s"] != "v000001"

        asyncio.run(main())

    def test_unroutable_file_is_quarantined(
        self, split_warehouse, tmp_path
    ):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, sample=None, poll_interval=0.02,
                require_stable=False,
            )
            drop(batch, watch, "mystery.npz", tmp_path)
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [False]
            assert "no '<sample>__' prefix" in outcomes[0].error
            assert daemon.batches_failed == 1
            failed = list((watch / "failed").glob("*.npz"))
            assert len(failed) == 1
            note = failed[0].with_suffix(".error.txt")
            assert note.exists()

        asyncio.run(main())

    def test_bad_batch_quarantined_daemon_survives(
        self, split_warehouse, tmp_path
    ):
        """With retries disabled a corrupt file is quarantined on first
        failure; the next good file applies."""
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02,
                require_stable=False, max_retries=0,
            )
            (watch / "s__corrupt.npz").write_bytes(b"this is not numpy")
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [False]
            assert outcomes[0].quarantined
            drop(batch, watch, "s__good.npz", tmp_path)
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [True]
            assert daemon.batches_applied == 1
            assert daemon.batches_failed == 1
            stats = daemon.stats()
            assert stats["batches_applied"] == 1
            assert stats["last_outcome"]["ok"]

        asyncio.run(main())


class TestRetryBackoff:
    def test_failure_backs_off_then_quarantines(
        self, split_warehouse, tmp_path
    ):
        """A failing batch stays queued through capped, backed-off
        retries and only lands in failed/ once they are exhausted."""
        sync_service, _ = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02,
                require_stable=False, max_retries=2,
                retry_initial_delay=0.01, retry_max_delay=0.05,
                retry_jitter=0.0,
            )
            (watch / "s__corrupt.npz").write_bytes(b"junk")
            first = await daemon.poll()
            assert [o.ok for o in first] == [False]
            assert not first[0].quarantined
            assert first[0].attempts == 1
            assert first[0].retry_in == pytest.approx(0.01)
            # Still queued, not quarantined; an immediate re-poll skips
            # it because the backoff has not elapsed.
            assert list(watch.glob("*.npz"))
            assert await daemon.poll() == []
            assert daemon.stats()["pending_retries"]
            # Retry 1 (after backoff) fails again with a longer delay.
            await asyncio.sleep(0.02)
            second = await daemon.poll()
            assert [o.quarantined for o in second] == [False]
            assert second[0].attempts == 2
            assert second[0].retry_in == pytest.approx(0.02)
            # Retry 2 exhausts max_retries -> quarantined.
            await asyncio.sleep(0.03)
            third = await daemon.poll()
            assert [o.quarantined for o in third] == [True]
            assert third[0].attempts == 3
            assert daemon.batches_failed == 1
            assert daemon.batches_retried == 2
            assert not list(watch.glob("*.npz"))
            failed = list((watch / "failed").glob("*.npz"))
            assert len(failed) == 1
            note = failed[0].with_suffix(".error.txt").read_text()
            assert "3 attempt" in note

        asyncio.run(main())

    def test_transient_failure_heals_on_retry(
        self, split_warehouse, tmp_path
    ):
        """A file that becomes readable between attempts is applied on
        the retry instead of being quarantined."""
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02,
                require_stable=False, max_retries=3,
                retry_initial_delay=0.01, retry_jitter=0.0,
            )
            (watch / "s__day1.npz").write_bytes(b"half-written")
            first = await daemon.poll()
            assert [o.ok for o in first] == [False]
            assert not first[0].quarantined
            # The producer finishes the write under the same name.
            drop(batch, watch, "s__day1.npz", tmp_path)
            await asyncio.sleep(0.02)
            second = await daemon.poll()
            assert [o.ok for o in second] == [True]
            assert second[0].attempts == 2
            assert daemon.batches_applied == 1
            assert daemon.batches_failed == 0
            assert not daemon.stats()["pending_retries"]
            assert sync_service.served_versions()["s"] != "v000001"

        asyncio.run(main())

    def test_vanished_file_drops_its_retry_state(
        self, split_warehouse, tmp_path
    ):
        """Deleting a failing file clears its backoff state: a later
        drop under the same name is a fresh batch, not attempt N+1."""
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02,
                require_stable=False, max_retries=1,
                retry_initial_delay=0.01, retry_jitter=0.0,
            )
            (watch / "s__b1.npz").write_bytes(b"junk")
            await daemon.poll()
            assert daemon.stats()["pending_retries"]
            (watch / "s__b1.npz").unlink()  # operator cleanup
            await daemon.poll()
            assert not daemon.stats()["pending_retries"]
            # Same name again: ingested as attempt 1, applied cleanly
            # even though the old state had exhausted max_retries.
            drop(batch, watch, "s__b1.npz", tmp_path)
            await asyncio.sleep(0.02)
            outcomes = await daemon.poll()
            assert [o.ok for o in outcomes] == [True]
            assert outcomes[0].attempts == 1

        asyncio.run(main())

    def test_unroutable_file_never_retried(self, split_warehouse, tmp_path):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, sample=None, poll_interval=0.02,
                require_stable=False, max_retries=5,
            )
            drop(batch, watch, "noprefix.npz", tmp_path)
            outcomes = await daemon.poll()
            assert [o.quarantined for o in outcomes] == [True]
            assert daemon.batches_retried == 0

        asyncio.run(main())


class TestStability:
    def test_file_needs_two_scans_before_ingest(
        self, split_warehouse, tmp_path
    ):
        sync_service, batch = split_warehouse
        watch = tmp_path / "incoming"

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, watch, poll_interval=0.02
            )
            drop(batch, watch, "s__day1.npz", tmp_path)
            first = await daemon.poll()
            assert first == []  # fingerprint recorded, not ingested
            second = await daemon.poll()
            assert [o.ok for o in second] == [True]

        asyncio.run(main())

    def test_stop_is_idempotent(self, split_warehouse, tmp_path):
        sync_service, _ = split_warehouse

        async def main():
            daemon = MaintenanceDaemon(
                sync_service, tmp_path / "incoming", poll_interval=0.02
            )
            daemon.start()
            await asyncio.sleep(0.05)
            await daemon.stop()
            await daemon.stop()
            assert not daemon.stats()["running"]
            assert daemon.polls >= 1

        asyncio.run(main())
