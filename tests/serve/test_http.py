"""HTTP front: routes, contracts over the wire, concurrency, shutdown."""

import asyncio

from repro.serve import (
    AsyncWarehouseService,
    HTTPConnection,
    WarehouseHTTPServer,
    request,
)

from serve_helpers import SlowWarehouseService

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
COUNT_SQL = "SELECT COUNT(*) c FROM OpenAQ"

CONTRACT_KEYS = {
    "executed",
    "sample_name",
    "sample_version",
    "predicted_cv",
    "max_group_cv",
    "staleness",
    "drift",
    "needs_rebuild",
    "fallback_exact",
    "reason",
    "constraints",
    "satisfied",
}


async def _started(sync_service, **kwargs):
    service = AsyncWarehouseService(sync_service, **kwargs)
    server = WarehouseHTTPServer(service, port=0)
    await server.start()
    return server


class TestRoutes:
    def test_query_embeds_contract(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                assert CONTRACT_KEYS <= set(payload["contract"])
                assert payload["contract"]["executed"] == "approximate"
                assert payload["contract"]["sample_version"] == "v000001"
                assert payload["contract"]["group_cvs"]  # per-group detail
                assert payload["columns"] == ["country", "a"]
                assert payload["row_count"] == len(payload["rows"])
            finally:
                await server.stop()

        asyncio.run(main())

    def test_row_limit_truncates(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL, "limit": 2},
                )
                assert status == 200
                assert len(payload["rows"]) == 2
                assert payload["truncated"]
                assert payload["row_count"] > 2
            finally:
                await server.stop()

        asyncio.run(main())

    def test_healthz_samples_stats(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, health = await request(
                    "127.0.0.1", server.port, "GET", "/healthz"
                )
                assert status == 200 and health["status"] == "ok"
                status, samples = await request(
                    "127.0.0.1", server.port, "GET", "/samples"
                )
                assert status == 200
                assert samples["samples"][0]["name"] == "s"
                assert samples["samples"][0]["version"] == "v000001"
                status, stats = await request(
                    "127.0.0.1", server.port, "GET", "/stats"
                )
                assert status == 200
                assert "serving" in stats and "samples" in stats
            finally:
                await server.stop()

        asyncio.run(main())

    def test_error_mapping(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                for method, path, body, expect in [
                    ("GET", "/nope", None, 404),
                    ("GET", "/query", None, 405),
                    ("POST", "/query", {}, 400),  # no sql
                    ("POST", "/query", {"sql": "NOT SQL AT ALL"}, 400),
                    ("POST", "/query", {"sql": SQL, "mode": "bogus"}, 400),
                    ("POST", "/query", {"sql": SQL, "limit": "five"}, 400),
                    ("POST", "/query", {"sql": SQL, "limit": None}, 400),
                ]:
                    status, payload = await request(
                        "127.0.0.1", server.port, method, path, body
                    )
                    assert status == expect, (path, payload)
                    assert "error" in payload
            finally:
                await server.stop()

        asyncio.run(main())


class TestAccuracyConstraints:
    def test_max_cv_falls_back_to_exact(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL, "max_cv": 1e-12},
                )
                assert status == 200
                contract = payload["contract"]
                assert contract["executed"] == "exact"
                assert contract["fallback_exact"]
                assert contract["satisfied"]
                assert contract["constraints"] == {"max_cv": 1e-12}
            finally:
                await server.stop()

        asyncio.run(main())

    def test_max_cv_rejection_is_412(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL, "max_cv": 1e-12,
                     "on_violation": "reject"},
                )
                assert status == 412
                assert payload["violations"]
                assert "max_cv" in payload["error"]
                assert not payload["contract"]["satisfied"]
            finally:
                await server.stop()

        asyncio.run(main())

    def test_satisfiable_max_cv_stays_approximate(self, warehouse):
        async def main():
            server = await _started(warehouse)
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL, "max_cv": 10.0},
                )
                assert status == 200
                assert payload["contract"]["executed"] == "approximate"
                assert payload["contract"]["satisfied"]
            finally:
                await server.stop()

        asyncio.run(main())


class TestConcurrentSwap:
    def test_versions_stay_consistent_during_swap(self, split_warehouse):
        """Concurrent /query responses bind version to answer: a
        response claiming version v must carry v's population, even
        while the daemon-style refresh hot-swaps underneath."""
        sync_service, batch = split_warehouse
        base_rows = sync_service.stats()["tables"]["OpenAQ"]
        full_rows = base_rows + batch.num_rows

        async def client(port, results):
            conn = await HTTPConnection.open("127.0.0.1", port)
            try:
                for _ in range(12):
                    status, payload = await conn.request(
                        "POST", "/query", {"sql": COUNT_SQL}
                    )
                    assert status == 200, payload
                    contract = payload["contract"]
                    if contract["executed"] == "approximate":
                        results.append(
                            (
                                contract["sample_version"],
                                payload["rows"][0][0],
                            )
                        )
            finally:
                await conn.close()

        async def main():
            server = await _started(sync_service, max_concurrency=6)
            results = []
            try:
                clients = [
                    asyncio.ensure_future(client(server.port, results))
                    for _ in range(4)
                ]
                swap = asyncio.ensure_future(
                    AsyncWarehouseService(sync_service).refresh(
                        "s", batch
                    )
                )
                await asyncio.gather(*clients)
                report = await swap
                # After the swap settles, responses carry the new version.
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": COUNT_SQL},
                )
                assert (
                    payload["contract"]["sample_version"] == report.version
                )
            finally:
                await server.stop()
            # The HT COUNT(*) estimate equals the population exactly, so
            # each response must pair its version with that version's
            # population — never a torn combination.
            assert results
            seen = {v for v, _ in results}
            assert seen <= {"v000001", report.version}
            for version, count in results:
                expected = (
                    base_rows if version == "v000001" else full_rows
                )
                assert abs(count - expected) < 1e-6 * expected + 1e-3

        asyncio.run(main())


class TestGracefulShutdown:
    def test_stop_drains_inflight_requests(self, tmp_path, openaq_small):
        slow = SlowWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, delay=0.3
        )
        slow.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=400,
        )

        async def main():
            server = await _started(slow, max_concurrency=2)
            inflight = asyncio.ensure_future(
                request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
            )
            await asyncio.sleep(0.1)  # request admitted and executing
            await server.stop()
            status, payload = await inflight
            assert status == 200
            assert payload["contract"]["executed"] == "approximate"
            # new connections are refused after shutdown
            try:
                await request(
                    "127.0.0.1", server.port, "GET", "/healthz"
                )
            except OSError:
                pass
            else:  # pragma: no cover
                raise AssertionError("listener still accepting")

        asyncio.run(main())
