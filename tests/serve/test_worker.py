"""Shard workers: protocol handlers, error isolation, and one real
spawned-process round trip."""

import os

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.sql.executor import execute_sql
from repro.engine.sql.parser import parse_query
from repro.serve import (
    InProcessShardClient,
    ProcessShardClient,
    ShardServer,
    ShardWorkerError,
)
from repro.warehouse import (
    ShardedSampleStore,
    compute_partials,
    decompose,
    finalize_partials,
    merge_partials,
)

# CI legs re-run this suite per storage backend (see conftest.py)
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"


@pytest.fixture()
def sharded_root(tmp_path, openaq_small):
    """A 2-shard store holding one built sample."""
    store = ShardedSampleStore(
        tmp_path / "wh", shards=2, backend=_BACKEND
    )
    sample = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country",))]
    ).sample(openaq_small, 800, seed=4)
    store.put(
        "s", sample, table_name="OpenAQ",
        lineage={
            "base_rows": sample.source_rows,
            "rows_ingested": 0,
            "value_columns": ["value"],
        },
    )
    return tmp_path / "wh", sample


class TestShardServer:
    def test_adopts_stored_samples_on_start(self, sharded_root):
        root, _ = sharded_root
        server = ShardServer(root, 0, backend=_BACKEND)
        meta = server.handle("sample_meta")
        assert meta["shard"] == 0
        assert "s" in meta["samples"]
        assert meta["tables"]["s"] == "OpenAQ"

    def test_ping(self, sharded_root):
        root, _ = sharded_root
        server = ShardServer(root, 1, backend=_BACKEND)
        pong = server.handle("ping")
        assert pong["ok"] and pong["shard"] == 1

    def test_partials_cover_only_own_strata(self, sharded_root):
        root, sample = sharded_root
        servers = [
            ShardServer(root, i, backend=_BACKEND) for i in range(2)
        ]
        parts = [
            s.handle("partials", {"sql": SQL, "name": "s"})["partials"]
            for s in servers
        ]
        own = [
            set(s.service.snapshot_sample("s")[0].allocation.keys)
            for s in servers
        ]
        assert own[0].isdisjoint(own[1])
        # Merged partials finalize to the unsharded sample's answer.
        dq = decompose(parse_query(SQL))
        merged = merge_partials(parts, len(dq.agg_calls))
        table = finalize_partials(dq, merged)
        whole = compute_partials(sample, dq)
        expected = finalize_partials(
            dq, merge_partials([whole], len(dq.agg_calls))
        )
        got = dict(
            zip(
                table.column("country").decode(),
                table.column("a").data,
            )
        )
        want = dict(
            zip(
                expected.column("country").decode(),
                expected.column("a").data,
            )
        )
        assert set(got) == set(want)
        for key, value in want.items():
            assert got[key] == pytest.approx(value, rel=1e-9)

    def test_unknown_op_raises(self, sharded_root):
        root, _ = sharded_root
        server = ShardServer(root, 0, backend=_BACKEND)
        with pytest.raises(ShardWorkerError, match="unknown shard op"):
            server.handle("frobnicate")

    def test_partials_for_missing_sample_raises(self, sharded_root):
        root, _ = sharded_root
        client = InProcessShardClient(root, 0, backend=_BACKEND)
        with pytest.raises(ShardWorkerError, match="ghost"):
            client.request("partials", sql=SQL, name="ghost")

    def test_refresh_swaps_new_version(
        self, sharded_root, openaq_small
    ):
        from repro.warehouse.sharding import partition_table

        root, _ = sharded_root
        server = ShardServer(root, 0, backend=_BACKEND)
        before = server.handle("sample_meta")["samples"]["s"]["version"]
        batch = openaq_small.take(np.arange(0, 500))
        piece = partition_table(batch, ("country",), 2)[0]
        out = server.handle(
            "refresh", {"name": "s", "batch": piece, "seed": 1}
        )
        assert out["report"].rows_ingested == piece.num_rows
        after = server.handle("sample_meta")["samples"]["s"]["version"]
        assert after != before


class TestInProcessShardClient:
    def test_wraps_errors_like_remote(self, sharded_root):
        root, _ = sharded_root
        client = InProcessShardClient(root, 0, backend=_BACKEND)
        with pytest.raises(ShardWorkerError) as err:
            client.request("partials", sql=SQL, name="ghost")
        assert err.value.remote_type == "KeyError"
        assert "ghost" in str(err.value)
        client.close()
        assert client.alive  # in-process client never dies


class TestProcessShardClient:
    def test_spawned_worker_round_trip(self, sharded_root):
        # One real spawn-context process: hello, partials, stats,
        # error isolation (a bad request must not kill the worker),
        # clean shutdown. npz only — a spawned child cannot read
        # another process's memory-backend blobs.
        root, sample = sharded_root
        if _BACKEND == "memory":
            pytest.skip("memory backend is per-process")
        client = ProcessShardClient(root, 0, backend=_BACKEND)
        try:
            assert client.alive and client.pid != os.getpid()
            meta = client.request("sample_meta")
            assert "s" in meta["samples"]
            with pytest.raises(ShardWorkerError, match="ghost"):
                client.request("partials", sql=SQL, name="ghost")
            # Worker survived the failed request.
            part = client.request("partials", sql=SQL, name="s")
            assert part["partials"].sample_version
            stats = client.request("stats")["stats"]
            assert stats["shard"] == 0
        finally:
            client.close()
        assert not client.alive
        with pytest.raises(ShardWorkerError, match="closed"):
            client.request("ping")
