"""Shared fixtures for the async serving layer.

The tests drive real asyncio event loops (via ``asyncio.run`` inside
each test, no plugin needed) against a real warehouse on ``tmp_path``.
"""

import os

import pytest

from repro.warehouse import WarehouseService

from serve_helpers import split

# CI legs re-run the serving suite per storage backend
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")


@pytest.fixture()
def warehouse(tmp_path, openaq_small):
    """A service over the full small table with one country sample."""
    service = WarehouseService(
        tmp_path / "wh", {"OpenAQ": openaq_small}, backend=_BACKEND
    )
    service.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800,
    )
    return service


@pytest.fixture()
def split_warehouse(tmp_path, openaq_small):
    """(service, batch): service over 75% of the rows, batch = the rest."""
    base, batch = split(openaq_small)
    service = WarehouseService(
        tmp_path / "wh", {"OpenAQ": base}, backend=_BACKEND
    )
    service.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800,
    )
    return service, batch
