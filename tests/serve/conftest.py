"""Shared fixtures for the async serving layer.

The tests drive real asyncio event loops (via ``asyncio.run`` inside
each test, no plugin needed) against a real warehouse on ``tmp_path``.
"""

import pytest

from repro.warehouse import WarehouseService

from serve_helpers import split


@pytest.fixture()
def warehouse(tmp_path, openaq_small):
    """A service over the full small table with one country sample."""
    service = WarehouseService(tmp_path / "wh", {"OpenAQ": openaq_small})
    service.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800,
    )
    return service


@pytest.fixture()
def split_warehouse(tmp_path, openaq_small):
    """(service, batch): service over 75% of the rows, batch = the rest."""
    base, batch = split(openaq_small)
    service = WarehouseService(tmp_path / "wh", {"OpenAQ": base})
    service.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800,
    )
    return service, batch
