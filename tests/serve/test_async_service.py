"""AsyncWarehouseService: pool bounds, back-pressure, draining."""

import asyncio

import pytest

from repro.serve import (
    AsyncWarehouseService,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.warehouse import AccuracyContractViolation

from serve_helpers import SlowWarehouseService

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"


class TestQuery:
    def test_returns_contracted_result(self, warehouse):
        async def main():
            service = AsyncWarehouseService(warehouse)
            answer = await service.query(SQL)
            assert answer.contract.executed == "approximate"
            assert answer.contract.sample_version == "v000001"
            assert answer.table.num_rows > 0
            assert service.queries == 1

        asyncio.run(main())

    def test_contract_rejection_counted(self, warehouse):
        async def main():
            service = AsyncWarehouseService(warehouse)
            with pytest.raises(AccuracyContractViolation):
                await service.query(
                    SQL, max_cv=1e-12, on_violation="reject"
                )
            assert service.rejected_contract == 1
            # the slot was released despite the raise
            answer = await service.query(SQL)
            assert answer.contract.satisfied

        asyncio.run(main())

    def test_concurrent_queries_share_pool(self, warehouse):
        async def main():
            service = AsyncWarehouseService(warehouse, max_concurrency=4)
            answers = await asyncio.gather(
                *(service.query(SQL) for _ in range(16))
            )
            assert len(answers) == 16
            assert all(
                a.contract.sample_version == "v000001" for a in answers
            )
            assert service.peak_inflight <= 4

        asyncio.run(main())


class TestBackPressure:
    def test_pending_bound_rejects_immediately(
        self, tmp_path, openaq_small
    ):
        slow = SlowWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, delay=0.3
        )
        slow.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=400,
        )

        async def main():
            service = AsyncWarehouseService(
                slow, max_concurrency=1, max_pending=0
            )
            first = asyncio.ensure_future(service.query(SQL))
            await asyncio.sleep(0.05)  # first request occupies the slot
            with pytest.raises(ServiceOverloaded):
                await service.query(SQL)
            assert service.rejected_overload == 1
            answer = await first
            assert answer.contract.executed == "approximate"

        asyncio.run(main())

    def test_queue_timeout_rejects_waiters(self, tmp_path, openaq_small):
        slow = SlowWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, delay=0.5
        )
        slow.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=400,
        )

        async def main():
            service = AsyncWarehouseService(
                slow, max_concurrency=1, max_pending=4,
                queue_timeout=0.05,
            )
            first = asyncio.ensure_future(service.query(SQL))
            await asyncio.sleep(0.05)
            with pytest.raises(ServiceOverloaded):
                await service.query(SQL)  # waited > queue_timeout
            await first

        asyncio.run(main())


class TestShutdown:
    def test_close_drains_inflight(self, tmp_path, openaq_small):
        """close() waits for admitted queries; they complete normally."""
        slow = SlowWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, delay=0.3
        )
        slow.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=400,
        )

        async def main():
            service = AsyncWarehouseService(slow, max_concurrency=2)
            inflight = asyncio.ensure_future(service.query(SQL))
            await asyncio.sleep(0.05)  # admitted, executing
            await service.close()
            assert inflight.done()  # drained before close returned
            answer = inflight.result()
            assert answer.contract.executed == "approximate"
            with pytest.raises(ServiceClosed):
                await service.query(SQL)

        asyncio.run(main())

    def test_close_idempotent_when_idle(self, warehouse):
        async def main():
            service = AsyncWarehouseService(warehouse)
            await service.close()
            await service.close()
            assert service.closing

        asyncio.run(main())


class TestMaintenancePassThrough:
    def test_refresh_hot_swaps(self, split_warehouse):
        service_sync, batch = split_warehouse

        async def main():
            service = AsyncWarehouseService(service_sync)
            before = (await service.query(SQL)).contract.sample_version
            report = await service.refresh("s", batch)
            after = (await service.query(SQL)).contract.sample_version
            assert before == "v000001"
            assert after == report.version != before

        asyncio.run(main())

    def test_stats_include_pool(self, warehouse):
        async def main():
            service = AsyncWarehouseService(warehouse, max_concurrency=3)
            await service.query(SQL)
            stats = await service.stats()
            assert stats["serving"]["max_concurrency"] == 3
            assert stats["serving"]["queries"] == 1
            assert stats["epoch"] >= 1
            health = service.health()
            assert health["status"] == "ok"
            assert health["serving"]["inflight"] == 0

        asyncio.run(main())
