"""MetricsListener: the standalone daemon's ``/metrics`` scrape
endpoint — Prometheus text out, daemon series visible, nothing else
served."""

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, default_registry
from repro.serve import MetricsListener


def scrape(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode(
            "utf-8"
        )


class TestScrape:
    def test_serves_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("scrape_test_total", "scrapes").inc(3)
        with MetricsListener(port=0, registry=reg) as listener:
            status, ctype, body = scrape(listener.url)
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        assert "# TYPE scrape_test_total counter" in body
        assert "scrape_test_total 3" in body

    def test_daemon_series_are_scrapeable(self):
        # Importing the daemon registers its metrics in the default
        # registry — exactly what a standalone `warehouse daemon
        # --metrics-port` process exposes.
        import repro.serve.daemon  # noqa: F401

        with MetricsListener(port=0) as listener:
            _, _, body = scrape(listener.url)
        assert "repro_daemon_batches_total" in body
        assert "repro_groupcode_cache_total" in body

    def test_other_paths_are_404(self):
        with MetricsListener(port=0, registry=MetricsRegistry()) as listener:
            base = f"http://{listener.host}:{listener.port}"
            with pytest.raises(urllib.error.HTTPError) as exc:
                scrape(f"{base}/healthz")
            assert exc.value.code == 404

    def test_scrape_reflects_live_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("live_total", "live")
        with MetricsListener(port=0, registry=reg) as listener:
            _, _, before = scrape(listener.url)
            c.inc(5)
            _, _, after = scrape(listener.url)
        assert "live_total 0" in before
        assert "live_total 5" in after

    def test_port_zero_binds_an_ephemeral_port(self):
        listener = MetricsListener(port=0, registry=MetricsRegistry())
        try:
            assert listener.port > 0
        finally:
            listener.close()

    def test_default_registry_is_the_default(self):
        listener = MetricsListener(port=0)
        try:
            assert listener.registry is default_registry()
        finally:
            listener.close()
