"""Windowed contracts over the wire.

The HTTP front must surface event-time coverage: ``window_bounds``
rides in every /query contract payload, /samples shows each windowed
member's window block, and a sliding query that reaches below the
retention horizon is a 412 under ``on_violation: reject``.
"""

import asyncio
import os

from repro.engine.table import Table
from repro.serve import AsyncWarehouseService, WarehouseHTTPServer, request
from repro.warehouse import WarehouseService

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

HOUR = 3600
N_HOURS = 6

SQL = (
    f"SELECT g, SUM(v) s FROM T WHERE ts >= {HOUR} GROUP BY g"
)


def timestamped_table() -> Table:
    ts, g, v = [], [], []
    for hour in range(N_HOURS):
        for i in range(24):
            ts.append(hour * HOUR + i * 150)
            g.append("A" if i % 3 else "B")
            v.append(float(hour * 100 + i))
    return Table.from_pydict({"g": g, "ts": ts, "v": v}, name="T")


def windowed_service(tmp_path, retention=None):
    service = WarehouseService(
        tmp_path / "wh", {"T": timestamped_table()}, backend=_BACKEND
    )
    service.build_windowed(
        "s", "T", group_by=["g"], value_columns=["v"], budget=500,
        ts_column="ts", window=HOUR, retention=retention,
    )
    return service


async def _started(sync_service):
    server = WarehouseHTTPServer(
        AsyncWarehouseService(sync_service), port=0
    )
    await server.start()
    return server


class TestWindowedHTTP:
    def test_contract_payload_carries_window_bounds(self, tmp_path):
        async def main():
            server = await _started(windowed_service(tmp_path))
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                contract = payload["contract"]
                assert contract["executed"] == "approximate"
                assert contract["window_bounds"] == [
                    HOUR, N_HOURS * HOUR,
                ]
                # Exact execution carries no coverage claim.
                status, exact = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL, "mode": "exact"},
                )
                assert status == 200
                assert exact["contract"]["window_bounds"] is None
            finally:
                await server.stop()

        asyncio.run(main())

    def test_below_retention_range_is_412(self, tmp_path):
        async def main():
            server = await _started(
                windowed_service(tmp_path, retention=3)
            )
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL, "on_violation": "reject"},
                )
                assert status == 412
                assert "retention" in payload["error"]
                # The default policy answers exactly instead.
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {"sql": SQL},
                )
                assert status == 200
                assert payload["contract"]["executed"] == "exact"
            finally:
                await server.stop()

        asyncio.run(main())

    def test_samples_payload_shows_window_blocks(self, tmp_path):
        async def main():
            server = await _started(windowed_service(tmp_path))
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "GET", "/samples"
                )
                assert status == 200
                windows = {
                    s["name"]: s["window"] for s in payload["samples"]
                }
                member = windows[f"s@w{HOUR}"]
                assert member["start"] == HOUR
                assert member["end"] == 2 * HOUR
                assert member["column"] == "ts"
            finally:
                await server.stop()

        asyncio.run(main())
