"""Importable helpers for the serving tests (kept out of conftest.py —
conftest loads as a pytest plugin, so test modules can't import from
it)."""

import os
import time

import numpy as np

from repro.warehouse import WarehouseService


def split(table, fraction=0.75):
    """(base, batch) split of a table along the row axis."""
    n = table.num_rows
    cut = int(n * fraction)
    return table.take(np.arange(0, cut)), table.take(np.arange(cut, n))


class SlowWarehouseService(WarehouseService):
    """Warehouse whose contract queries take ``delay`` seconds.

    Lets the tests hold requests in flight deterministically
    (back-pressure, draining) without relying on real query latency.
    """

    def __init__(self, *args, delay=0.2, **kwargs):
        kwargs.setdefault(
            "backend", os.environ.get("REPRO_TEST_BACKEND", "npz")
        )
        super().__init__(*args, **kwargs)
        self.delay = delay

    def query_with_contract(self, *args, **kwargs):
        time.sleep(self.delay)
        return super().query_with_contract(*args, **kwargs)
