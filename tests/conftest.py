"""Shared fixtures."""

import numpy as np
import pytest

from repro.datasets import generate_bikes, generate_openaq, student_table
from repro.engine.table import Table


@pytest.fixture(scope="session")
def openaq_small() -> Table:
    """Small OpenAQ instance shared across tests (read-only)."""
    return generate_openaq(num_rows=30_000, num_countries=20, seed=3)


@pytest.fixture(scope="session")
def bikes_small() -> Table:
    """Small Bikes instance shared across tests (read-only)."""
    return generate_bikes(num_rows=20_000, num_stations=60, seed=5)


@pytest.fixture()
def student() -> Table:
    return student_table()


@pytest.fixture()
def simple_table() -> Table:
    """Tiny deterministic table used by many engine tests."""
    return Table.from_pydict(
        {
            "g": ["a", "a", "b", "b", "b", "c"],
            "h": [1, 2, 1, 1, 2, 1],
            "x": [10.0, 20.0, 1.0, 2.0, 3.0, 100.0],
            "y": [1, 1, 2, 2, 2, 3],
        },
        name="T",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
