"""Metrics registry: counter/gauge/histogram semantics, thread safety
under concurrent updates, idempotent registration, Prometheus render."""

import math
import threading

import pytest

from repro.obs import MetricsRegistry, log_buckets


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "reqs", ["route"])
        c.inc(route="a")
        c.inc(3, route="b")
        assert c.value(route="a") == 1
        assert c.value(route="b") == 3
        assert c.value(route="never") == 0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "c", ["route"])
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(route="a", extra="b")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        # cumulative exposition: le=0.1 -> 1, le=1 -> 2, le=10 -> 3,
        # +Inf -> 4
        lines = h.collect()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="10"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines

    def test_default_log_buckets(self):
        bounds = log_buckets()
        assert bounds[0] == pytest.approx(1e-4)
        assert all(b2 / b1 == pytest.approx(2.0)
                   for b1, b2 in zip(bounds, bounds[1:]))
        # spans sub-millisecond to ~100s
        assert bounds[-1] > 100


class TestRegistration:
    def test_same_registration_is_idempotent(self):
        # Module reload / double import must hand back the same metric.
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", ["l"])
        b = reg.counter("x_total", "x", ["l"])
        assert a is b

    def test_conflicting_registration_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x")  # same name, different type
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", ["l"])  # different labels

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "nope")


class TestRender:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_q_total", "Queries answered", ["route"])
        c.inc(2, route="sample")
        g = reg.gauge("repro_inflight", "In flight")
        g.set(1)
        h = reg.histogram("repro_s", "Seconds", buckets=[1.0])
        h.observe(0.5)
        text = reg.render()
        assert "# HELP repro_q_total Queries answered" in text
        assert "# TYPE repro_q_total counter" in text
        assert 'repro_q_total{route="sample"} 2' in text
        assert "# TYPE repro_inflight gauge" in text
        assert "# TYPE repro_s histogram" in text
        assert 'repro_s_bucket{le="1"} 1' in text
        assert 'repro_s_bucket{le="+Inf"} 1' in text
        assert "repro_s_sum 0.5" in text
        assert "repro_s_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("e_total", "e", ["v"])
        c.inc(v='a"b\\c\nd')
        assert 'v="a\\"b\\\\c\\nd"' in reg.render()


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        # The acceptance bar for "thread-safe": no lost updates under
        # real contention across counters, gauges, and histograms.
        reg = MetricsRegistry()
        c = reg.counter("t_total", "t", ["worker"])
        h = reg.histogram("t_s", "t", buckets=[0.5])
        threads, per_thread = 8, 2000

        def hammer(i):
            for _ in range(per_thread):
                c.inc(worker=str(i % 2))
                h.observe(0.1)

        ts = [threading.Thread(target=hammer, args=(i,))
              for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        total = sum(c.value(worker=w) for w in ("0", "1"))
        assert total == threads * per_thread
        assert h.count() == threads * per_thread
        assert h.sum() == pytest.approx(0.1 * threads * per_thread)

    def test_render_during_writes_is_well_formed(self):
        reg = MetricsRegistry()
        c = reg.counter("r_total", "r")
        stop = threading.Event()

        def write():
            while not stop.is_set():
                c.inc()

        w = threading.Thread(target=write)
        w.start()
        try:
            for _ in range(50):
                text = reg.render()
                value = float(text.strip().splitlines()[-1].split()[-1])
                assert math.isfinite(value)
        finally:
            stop.set()
            w.join()


class TestEnableSwitch:
    def test_disabled_registry_drops_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("d_total", "d")
        reg.set_enabled(False)
        c.inc(10)
        assert c.value() == 0
        reg.set_enabled(True)
        c.inc()
        assert c.value() == 1
