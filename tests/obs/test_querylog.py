"""Structured query log: JSONL records, size rotation, torn-line
recovery, and replay into an advisor workload."""

import json

import pytest

from repro.obs import QueryLog, iter_query_log, query_log_files
from repro.workload import Workload


class TestWrite:
    def test_records_are_jsonl_with_timestamp(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QueryLog(path) as log:
            log.write({"sql": "SELECT 1", "status": 200})
            log.write({"sql": "SELECT 2", "status": 400})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["sql"] == "SELECT 1"
        assert "ts" in first

    def test_non_json_values_degrade_to_strings(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QueryLog(path) as log:
            log.write({"odd": {1, 2}})  # sets are not JSON
        assert "odd" in json.loads(path.read_text())

    def test_stats(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QueryLog(path) as log:
            log.write({"a": 1})
            stats = log.stats()
        assert stats["records_written"] == 1
        assert stats["path"] == str(path)


class TestRotation:
    def _filled(self, tmp_path, records, max_bytes=400, backups=2):
        path = tmp_path / "q.jsonl"
        with QueryLog(path, max_bytes=max_bytes, backups=backups) as log:
            for i in range(records):
                log.write({"seq": i, "pad": "x" * 60})
        return path

    def test_rotation_caps_active_file(self, tmp_path):
        path = self._filled(tmp_path, records=20)
        assert path.stat().st_size <= 400
        assert path.with_name("q.jsonl.1").exists()
        assert path.with_name("q.jsonl.2").exists()
        assert not path.with_name("q.jsonl.3").exists()  # backups=2

    def test_iteration_is_oldest_first_across_rotations(self, tmp_path):
        path = self._filled(tmp_path, records=12)
        seqs = [r["seq"] for r in iter_query_log(path)]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 11  # newest record is last

    def test_query_log_files_order(self, tmp_path):
        path = self._filled(tmp_path, records=20)
        files = list(query_log_files(path))
        assert files[-1] == path  # active file last
        assert [f.name for f in files[:-1]] == ["q.jsonl.2", "q.jsonl.1"]


class TestReplay:
    def test_torn_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text(
            '{"sql": "SELECT 1"}\n'
            "\n"
            '{"sql": "SELECT 2", "trunc\n'  # torn mid-record (crash)
            '{"sql": "SELECT 3"}\n'
        )
        sqls = [r["sql"] for r in iter_query_log(path)]
        assert sqls == ["SELECT 1", "SELECT 3"]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_query_log(tmp_path / "absent.jsonl")) == []

    def test_workload_from_query_log_aggregates_sql(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QueryLog(path) as log:
            for _ in range(3):
                log.write({"sql": "SELECT a FROM t", "outcome": "ok"})
            log.write({"sql": "SELECT b FROM t;", "outcome": "ok"})
            log.write({"sql": "NOT SQL", "outcome": "error"})
            log.write({"no_sql_key": True})
        workload = Workload.from_query_log(path)
        by_sql = {q.sql: q.repeats for q in workload.queries}
        # errors and malformed records dropped; trailing ';' stripped
        assert by_sql == {"SELECT a FROM t": 3, "SELECT b FROM t": 1}

    def test_workload_from_query_log_reads_rotated_files(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QueryLog(path, max_bytes=200, backups=3) as log:
            for _ in range(8):
                log.write({"sql": "SELECT x FROM t", "outcome": "ok"})
        assert path.with_name("q.jsonl.1").exists()
        workload = Workload.from_query_log(path)
        assert workload.queries[0].repeats == 8
