"""Trace spans: nesting, null-span fast path, annotate targeting,
remote-span grafting, and the bounded trace ring."""

import threading

from repro.obs import Span, Tracer, current_trace_id


class TestSpans:
    def test_root_and_children_share_trace_id(self):
        tracer = Tracer()
        with tracer.trace("http.query", mode="auto") as t:
            with tracer.span("aqp.parse"):
                pass
            with tracer.span("aqp.execute", rows=10):
                pass
        d = t.trace.to_dict()
        assert [s["name"] for s in d["spans"]] == [
            "http.query", "aqp.parse", "aqp.execute",
        ]
        assert {s["trace_id"] for s in d["spans"]} == {d["trace_id"]}
        assert all(s["duration"] is not None for s in d["spans"])
        assert d["tags"] == {"mode": "auto"}

    def test_children_nest_by_parent_id(self):
        tracer = Tracer()
        with tracer.trace("root") as t:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        spans = {s["name"]: s for s in t.trace.to_dict()["spans"]}
        assert spans["outer"]["parent_id"] == spans["root"]["span_id"]
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]

    def test_exception_tags_error_and_finishes(self):
        tracer = Tracer()
        try:
            with tracer.trace("root") as t:
                with tracer.span("child"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        spans = {s["name"]: s for s in t.trace.to_dict()["spans"]}
        assert spans["child"]["tags"]["error"] == "RuntimeError"
        assert spans["root"]["tags"]["error"] == "RuntimeError"
        assert t.root.duration is not None

    def test_span_without_active_trace_is_noop(self):
        tracer = Tracer()
        assert current_trace_id() is None
        with tracer.span("orphan") as span:
            span.set_tag("k", "v")  # must not blow up
        tracer.annotate(ignored=True)
        assert tracer.recent_traces() == []

    def test_spans_reuse_shared_null_instance(self):
        # The no-trace fast path must not allocate per call.
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")


class TestAnnotate:
    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        with tracer.trace("root") as t:
            with tracer.span("child"):
                tracer.annotate(inside="child")
            # child closed -> annotations land on the root span again,
            # which is how deep layers surface facts to the query log.
            tracer.annotate(route="sample")
        d = t.trace.to_dict()
        spans = {s["name"]: s for s in d["spans"]}
        assert spans["child"]["tags"] == {"inside": "child"}
        assert d["tags"]["route"] == "sample"


class TestRemoteGraft:
    def test_graft_attaches_remote_spans_to_root(self):
        tracer = Tracer()
        with tracer.trace("root") as t:
            remote = tracer.remote_span(
                t.trace_id, "shard.partials", shard=1
            )
            remote.finish()
            tracer.graft([remote.to_dict()])
        d = t.trace.to_dict()
        grafted = [s for s in d["spans"] if s["name"] == "shard.partials"]
        assert len(grafted) == 1
        assert grafted[0]["trace_id"] == d["trace_id"]
        assert grafted[0]["parent_id"] == t.root.span_id
        assert "pid" in grafted[0]["tags"]

    def test_graft_dedupes_by_span_id(self):
        # The in-process shard client shares the front's process, so a
        # span can arrive both locally and via the pipe payload.
        tracer = Tracer()
        with tracer.trace("root") as t:
            remote = tracer.remote_span(t.trace_id, "shard.partials")
            remote.finish()
            tracer.graft([remote.to_dict()])
            tracer.graft([remote.to_dict()])
        names = [s["name"] for s in t.trace.to_dict()["spans"]]
        assert names.count("shard.partials") == 1

    def test_graft_without_active_trace_is_noop(self):
        tracer = Tracer()
        tracer.graft([Span("tid", "x").to_dict()])  # must not raise


class TestRing:
    def test_ring_is_bounded_and_recent_first(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            with tracer.trace("q", seq=i):
                pass
        recent = tracer.recent_traces()
        assert [t["tags"]["seq"] for t in recent] == [4, 3, 2]
        assert [t["tags"]["seq"] for t in tracer.recent_traces(limit=1)] \
            == [4]
        tracer.clear()
        assert tracer.recent_traces() == []

    def test_concurrent_traces_do_not_mix_spans(self):
        # Each thread gets its own context, so spans must attach to the
        # thread's own trace even when traces overlap in time.
        tracer = Tracer(max_traces=16)
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with tracer.trace("q", owner=i):
                with tracer.span("child", owner=i):
                    pass

        ts = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        for d in tracer.recent_traces():
            owners = {s["tags"].get("owner") for s in d["spans"]}
            assert owners == {d["tags"]["owner"]}
