"""Storage backends: round-trips, format dispatch, mixed stores."""

import json
import os

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.schema import DType
from repro.engine.table import Table
from repro.warehouse.backends import (
    BACKENDS,
    MemoryBackend,
    NpzBackend,
    ParquetArrowBackend,
    available_backends,
    backend_for_format,
    resolve_backend,
)
from repro.warehouse.store import SampleStore
from repro.warehouse.service import WarehouseService

ALL_BACKENDS = ["npz", "parquet", "memory", "mmap"]

try:
    import pyarrow  # noqa: F401

    HAVE_PYARROW = True
except ImportError:
    HAVE_PYARROW = False


@pytest.fixture()
def typed_table():
    return Table.from_pydict(
        {
            "country": ["US", "IN", "US", "CN", "IN", "US"],
            "value": [1.5, 2.0, -3.25, 4.0, 0.0, 7.5],
            "count": [1, 2, 3, 4, 5, 6],
            "flag": [True, False, True, True, False, False],
        },
        name="Typed",
    )


class TestBlobRoundTrip:
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_table_round_trips_exactly(
        self, tmp_path, typed_table, backend_name
    ):
        backend = resolve_backend(backend_name)
        storage = backend.put_rows(tmp_path, typed_table)
        assert storage["backend"] == backend_name
        assert (tmp_path / storage["rows_file"]).is_file()
        back = backend.get_rows(tmp_path, storage)
        assert back.column_names == typed_table.column_names
        for name in typed_table.column_names:
            orig, rest = typed_table.column(name), back.column(name)
            assert rest.dtype is orig.dtype
            np.testing.assert_array_equal(rest.decode(), orig.decode())

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_timestamp_column_round_trips(self, tmp_path, backend_name):
        col = np.array(
            ["2020-01-01T00:00:00", "2021-06-15T12:30:00"],
            dtype="datetime64[s]",
        )
        table = Table.from_pydict({"ts": col, "v": [1.0, 2.0]})
        assert table.column("ts").dtype is DType.TIMESTAMP
        backend = resolve_backend(backend_name)
        storage = backend.put_rows(tmp_path, table)
        back = backend.get_rows(tmp_path, storage)
        assert back.column("ts").dtype is DType.TIMESTAMP
        np.testing.assert_array_equal(
            back.column("ts").data, table.column("ts").data
        )

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_empty_table_round_trips(self, tmp_path, backend_name):
        table = Table.from_pydict({"g": [], "v": []})
        backend = resolve_backend(backend_name)
        storage = backend.put_rows(tmp_path, table)
        back = backend.get_rows(tmp_path, storage)
        assert back.num_rows == 0
        assert set(back.column_names) == {"g", "v"}


class TestParquetFallback:
    def test_storage_block_is_truthful(self, tmp_path, typed_table):
        backend = ParquetArrowBackend()
        storage = backend.put_rows(tmp_path, typed_table)
        assert storage["backend"] == "parquet"
        if HAVE_PYARROW:
            assert storage["format"] == "parquet"
            assert storage["rows_file"] == "rows.parquet"
        else:
            assert storage["format"] == "npz"
            assert storage["rows_file"] == "rows.npz"
            assert "fallback" in storage
        # Whatever was written is readable through format dispatch.
        reader = backend_for_format(storage["format"])
        back = reader.get_rows(tmp_path, storage)
        assert back.num_rows == typed_table.num_rows

    @pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow is installed")
    def test_strict_requires_pyarrow(self):
        with pytest.raises(RuntimeError, match="pyarrow"):
            ParquetArrowBackend(strict=True)

    @pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
    def test_strict_constructs_with_pyarrow(self):
        assert ParquetArrowBackend(strict=True).available


class TestResolution:
    def test_names_and_instances(self):
        assert isinstance(resolve_backend(None), NpzBackend)
        assert isinstance(resolve_backend("npz"), NpzBackend)
        assert isinstance(resolve_backend("memory"), MemoryBackend)
        inst = NpzBackend()
        assert resolve_backend(inst) is inst

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            resolve_backend("s3")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            backend_for_format("orc")
        assert isinstance(backend_for_format(None), NpzBackend)

    def test_registry_covers_all(self):
        assert set(BACKENDS) == set(ALL_BACKENDS)
        assert set(available_backends()) == set(ALL_BACKENDS)


@pytest.fixture()
def small_sample(openaq_small):
    return CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country", "parameter"))]
    ).sample(openaq_small, 600, seed=0)


class TestStoreWithBackends:
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_put_get_and_meta_record_backend(
        self, tmp_path, small_sample, backend_name
    ):
        store = SampleStore(tmp_path / "wh", backend=backend_name)
        version = store.put("s", small_sample, table_name="OpenAQ")
        stored = store.get("s")
        assert stored.version == version
        assert stored.storage["backend"] == backend_name
        meta = json.loads(
            (store.root / "s" / version / "meta.json").read_text()
        )
        assert meta["storage"] == stored.storage
        assert stored.sample.num_rows == small_sample.num_rows

    def test_mixed_format_store_fully_readable(
        self, tmp_path, small_sample
    ):
        """A store whose versions were written by different backends is
        readable by any store instance — decode dispatches on each
        version's recorded format."""
        root = tmp_path / "wh"
        v1 = SampleStore(root, backend="npz").put("s", small_sample)
        v2 = SampleStore(root, backend="memory").put("s", small_sample)
        reader = SampleStore(root, backend="parquet")
        assert reader.versions("s") == [v1, v2]
        assert reader.get("s", v1).storage["backend"] == "npz"
        assert reader.get("s", v2).storage["backend"] == "memory"
        assert reader.get("s").version == v2

    def test_memory_blobs_do_not_survive_eviction(
        self, tmp_path, small_sample
    ):
        """Simulated process restart: resident blobs gone, marker files
        left — the sample has no readable version and says so."""
        store = SampleStore(tmp_path / "wh", backend="memory")
        version = store.put("s", small_sample)
        key = os.path.abspath(str(store.root / "s" / version))
        assert key in MemoryBackend._blobs
        MemoryBackend._blobs.pop(key)
        with pytest.raises(KeyError, match="no readable version"):
            store.get("s")

    def test_memory_backend_prune_evicts_blobs(
        self, tmp_path, small_sample
    ):
        store = SampleStore(tmp_path / "wh", backend="memory")
        for _ in range(3):
            store.put("s", small_sample)
        removed = store.prune("s", keep=1)
        assert removed == ["v000001", "v000002"]
        for version in removed:
            key = os.path.abspath(str(store.root / "s" / version))
            assert key not in MemoryBackend._blobs


class TestServiceRoundTrip:
    """Acceptance: the same build/refresh/query round-trip passes under
    all three backends."""

    SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_build_refresh_query(
        self, tmp_path, openaq_small, backend_name
    ):
        n = openaq_small.num_rows
        base = openaq_small.take(np.arange(0, int(n * 0.8)))
        batch = openaq_small.take(np.arange(int(n * 0.8), n))
        service = WarehouseService(
            tmp_path / "wh",
            {"OpenAQ": base},
            backend=backend_name,
        )
        report = service.build(
            "aq", "OpenAQ", group_by=["country", "parameter"],
            value_columns=["value"], budget=600,
        )
        assert report.version == "v000001"
        first = service.query(self.SQL)
        assert first.route.approximate
        assert first.table.num_rows > 0

        refreshed = service.refresh("aq", batch)
        assert refreshed.rows_ingested == batch.num_rows
        again = service.query(self.SQL)
        assert again.table.num_rows > 0
        assert service.served_versions()["aq"] == refreshed.version

        stats = service.stats()
        assert stats["store"]["backend"] == backend_name
        assert stats["store"]["manifest"]["records"] >= 2
        assert stats["samples"]["aq"]["backend"] == backend_name
