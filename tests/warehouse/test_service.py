"""WarehouseService: routing, caching, swaps, and concurrency."""

import os
import threading

import numpy as np
import pytest

from repro.engine.sql.executor import execute_sql
from repro.warehouse import LRUCache, RWLock, WarehouseService

# CI legs re-run this suite per storage backend (see conftest.py)
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"


def halves(table):
    n = table.num_rows
    return (
        table.take(np.arange(0, n // 2)),
        table.take(np.arange(n // 2, n)),
    )


@pytest.fixture()
def service(tmp_path, openaq_small):
    svc = WarehouseService(
        tmp_path / "wh", {"OpenAQ": openaq_small}, backend=_BACKEND
    )
    svc.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800,
    )
    return svc


class TestServing:
    def test_query_routes_to_sample(self, service):
        result = service.query(SQL)
        assert result.route.sample_name == "s"
        assert result.table.num_rows > 0

    def test_exact_mode_bypasses_samples(self, service):
        result = service.query(SQL, mode="exact")
        assert not result.route.approximate

    def test_answer_cache_hit(self, service):
        first = service.query(SQL)
        second = service.query(SQL)
        stats = service.stats()
        assert stats["answer_cache"]["hits"] == 1
        assert second is first  # memoized object, zero recompute

    def test_build_invalidates_cache(self, service, openaq_small):
        service.query(SQL)
        epoch = service.stats()["epoch"]
        service.build(
            "s2", "OpenAQ", group_by=["country", "parameter"],
            value_columns=["value"], budget=800,
        )
        assert service.stats()["epoch"] > epoch
        result = service.query(SQL)  # recomputed, not the stale entry
        assert result.route.approximate

    def test_warm_start_from_store(self, service, tmp_path, openaq_small):
        # A second service over the same root adopts the stored sample.
        twin = WarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, backend=_BACKEND
        )
        assert "s" in twin.samples()
        assert twin.query(SQL).route.sample_name == "s"

    def test_orphan_adopted_on_table_registration(
        self, service, tmp_path, openaq_small
    ):
        twin = WarehouseService(tmp_path / "wh", backend=_BACKEND)
        assert twin.samples() == []
        twin.register_table("OpenAQ", openaq_small)
        assert "s" in twin.samples()

    def test_stats_snapshot(self, service):
        service.query(SQL)
        stats = service.stats()
        assert stats["tables"]["OpenAQ"] > 0
        assert stats["samples"]["s"]["version"] == "v000001"
        assert stats["samples"]["s"]["served_version"] == "v000001"
        assert stats["queries_served"] >= 1


class TestRefresh:
    def test_refresh_swaps_version_and_grows_base(
        self, tmp_path, openaq_small
    ):
        base, batch = halves(openaq_small)
        svc = WarehouseService(
            tmp_path / "wh", {"OpenAQ": base}, backend=_BACKEND
        )
        svc.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=600,
        )
        report = svc.refresh("s", batch)
        assert report.action in ("incremental", "rebuild")
        assert svc.served_versions()["s"] == report.version
        # Exact fallback sees the appended rows too.
        exact = svc.execute("SELECT COUNT(*) c FROM OpenAQ")
        assert exact["c"][0] == openaq_small.num_rows

    def test_refreshed_sample_serves_consistent_population(
        self, tmp_path, openaq_small
    ):
        base, batch = halves(openaq_small)
        svc = WarehouseService(
            tmp_path / "wh", {"OpenAQ": base}, backend=_BACKEND
        )
        svc.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=600,
        )
        svc.refresh("s", batch)
        approx = svc.query(
            "SELECT country, SUM(value) s FROM OpenAQ GROUP BY country"
        )
        assert approx.route.approximate
        exact = execute_sql(
            "SELECT SUM(value) s FROM OpenAQ", {"OpenAQ": openaq_small}
        )
        total = float(np.sum(approx.table["s"]))
        assert total == pytest.approx(float(exact["s"][0]), rel=0.25)


class TestConcurrency:
    def test_concurrent_reads_during_refresh(self, tmp_path, openaq_small):
        """Readers keep getting complete, routable answers while the
        writer swaps refreshed versions underneath them."""
        base, rest = halves(openaq_small)
        batches = halves(rest)
        svc = WarehouseService(
            tmp_path / "wh", {"OpenAQ": base}, backend=_BACKEND
        )
        svc.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=500,
        )
        n_countries = len(set(base["country"]))

        stop = threading.Event()
        errors: list = []
        reads = [0]

        def reader():
            while not stop.is_set():
                try:
                    result = svc.query(SQL)
                    assert result.table.num_rows == n_countries
                    values = result.table["a"]
                    assert np.all(np.isfinite(values))
                    reads[0] += 1
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i, batch in enumerate(batches):
                svc.refresh("s", batch, seed=i)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert errors == []
        assert reads[0] > 0
        assert not any(t.is_alive() for t in threads)
        # After the dust settles the served version is the newest one.
        assert (
            svc.served_versions()["s"]
            == svc.store.current_version("s")
        )

    def test_reader_blocks_writer_not_vice_versa(self):
        lock = RWLock()
        order: list = []
        lock.acquire_read()

        def writer():
            with lock.write():
                order.append("write")

        t = threading.Thread(target=writer)
        t.start()
        # Writer must wait for the active reader...
        assert not order
        order.append("read-done")
        lock.release_read()
        t.join(timeout=10)
        assert order == ["read-done", "write"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()
        got_read = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            got_read.set()
            lock.release_read()

        w = threading.Thread(target=writer)
        w.start()
        # Give the writer time to queue up.
        import time

        time.sleep(0.05)
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        assert not got_read.is_set()  # writer preference holds
        lock.release_read()
        w.join(timeout=10)
        r.join(timeout=10)
        assert got_write.is_set() and got_read.is_set()


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
