"""Incremental maintenance: streaming ingest, staleness, drift, and the
pinned accuracy bound of the acceptance criterion."""

import numpy as np
import pytest

from repro.aqp.planning import predict_group_cvs
from repro.core.cvopt import CVOptSampler
from repro.core.sample import STRATUM_COLUMN, WEIGHT_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.core.streaming import StreamingCVOptSampler
from repro.engine.statistics import collect_strata_statistics
from repro.engine.table import Table
import os

from repro.warehouse import SampleMaintainer, SampleStore

# CI legs re-run this suite per storage backend (see tests/warehouse/conftest.py)
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")


def split_rows(table, *fractions):
    """Split a table into consecutive row ranges by cumulative fraction."""
    n = table.num_rows
    bounds = [0] + [int(n * f) for f in fractions] + [n]
    return [
        table.take(np.arange(bounds[i], bounds[i + 1]))
        for i in range(len(bounds) - 1)
    ]


@pytest.fixture()
def store(tmp_path):
    return SampleStore(tmp_path / "wh", backend=_BACKEND)


@pytest.fixture()
def maintainer(store):
    return SampleMaintainer(store)


class TestResume:
    def test_resume_preserves_population_accounting(self, openaq_small):
        base, batch = split_rows(openaq_small, 0.7)
        sample = CVOptSampler(
            [GroupByQuerySpec.single("value", by=("country",))]
        ).sample(base, 600, seed=0)
        sampler = StreamingCVOptSampler.resume(sample, "value", seed=1)
        assert sampler.rows_seen == base.num_rows
        sampler.observe_table(batch)
        refreshed = sampler.finalize()
        assert refreshed.source_rows == openaq_small.num_rows
        assert (
            int(refreshed.allocation.populations.sum())
            == openaq_small.num_rows
        )
        # Exact merged statistics: totals match a full-table scan.
        stats = refreshed.allocation.stats
        full = collect_strata_statistics(
            openaq_small, ("country",), ["value"]
        )
        idx = {k: i for i, k in enumerate(full.keys)}
        order = [idx[tuple(k)] for k in refreshed.allocation.keys]
        np.testing.assert_allclose(
            stats.stats_for("value").total,
            full.stats_for("value").total[order],
        )

    def test_resume_weights_are_ht(self, openaq_small):
        base, batch = split_rows(openaq_small, 0.7)
        sample = CVOptSampler(
            [GroupByQuerySpec.single("value", by=("country",))]
        ).sample(base, 600, seed=0)
        sampler = StreamingCVOptSampler.resume(sample, "value", seed=1)
        sampler.observe_table(batch)
        refreshed = sampler.finalize()
        alloc = refreshed.allocation
        gids = refreshed.table.column(STRATUM_COLUMN).data
        expected = alloc.populations[gids] / np.maximum(
            alloc.sizes[gids], 1
        )
        np.testing.assert_allclose(
            refreshed.table.column(WEIGHT_COLUMN).data, expected
        )

    def test_new_strata_fold_in(self):
        base = Table.from_pydict(
            {"g": ["a"] * 50 + ["b"] * 50, "x": list(range(100))}
        )
        batch = Table.from_pydict(
            {"g": ["c"] * 40, "x": [float(i) for i in range(40)]}
        )
        sample = CVOptSampler(
            [GroupByQuerySpec.single("x", by=("g",))]
        ).sample(base, 30, seed=0)
        sampler = StreamingCVOptSampler.resume(sample, "x", seed=1)
        sampler.observe_table(batch)
        refreshed = sampler.finalize()
        keys = [k[0] for k in refreshed.allocation.keys]
        assert "c" in keys
        c = keys.index("c")
        assert refreshed.allocation.populations[c] == 40
        assert refreshed.allocation.sizes[c] > 0


class TestMaintainer:
    def test_build_then_refresh_lineage(self, maintainer, openaq_small):
        base, b1, b2 = split_rows(openaq_small, 0.6, 0.8)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=800, table_name="OpenAQ", seed=0,
        )
        r1 = maintainer.refresh("s", b1, seed=1)
        assert r1.action == "incremental"
        assert r1.version == "v000002"
        r2 = maintainer.refresh("s", b2, seed=2)
        info = maintainer.staleness("s")
        assert info.refresh_count == 2
        assert info.rows_ingested == b1.num_rows + b2.num_rows
        assert info.base_rows == base.num_rows
        assert info.staleness == pytest.approx(
            (b1.num_rows + b2.num_rows) / base.num_rows
        )
        assert r2.source_rows == openaq_small.num_rows

    def test_refresh_is_one_pass_over_the_batch_only(
        self, maintainer, openaq_small
    ):
        # The maintained sample's population accounting covers rows the
        # maintainer never rescanned: only the batch is streamed.
        base, batch = split_rows(openaq_small, 0.75)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=600, seed=0,
        )
        report = maintainer.refresh("s", batch, seed=1)
        assert report.rows_ingested == batch.num_rows
        stored = maintainer.store.get("s")
        assert stored.sample.source_rows == openaq_small.num_rows

    def test_drift_near_one_on_stationary_data(
        self, maintainer, openaq_small
    ):
        base, batch = split_rows(openaq_small, 0.7)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=800, seed=0,
        )
        report = maintainer.refresh("s", batch, seed=1)
        assert report.drift == pytest.approx(1.0, abs=0.05)
        assert not report.needs_rebuild

    def test_drift_escalation_flags_rebuild(self, tmp_path):
        # Base: two low-variance strata. Batch: stratum "b" explodes in
        # variance and size, so its optimal share grows far past its
        # shrink-only capacity -> drift crosses the threshold.
        rng = np.random.default_rng(0)
        base = Table.from_pydict(
            {
                "g": ["a"] * 2000 + ["b"] * 50,
                "x": list(10 + rng.normal(0, 0.1, 2000))
                + list(10 + rng.normal(0, 0.1, 50)),
            }
        )
        batch = Table.from_pydict(
            {
                "g": ["b"] * 4000,
                "x": list(np.abs(rng.normal(5, 200, 4000)) + 0.1),
            }
        )
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        maintainer = SampleMaintainer(store, cv_degradation_threshold=1.5)
        maintainer.build(
            "s", base, group_by=["g"], value_columns=["x"], budget=120,
            seed=0,
        )
        report = maintainer.refresh("s", batch, seed=1)
        assert report.drift > 1.5
        assert report.needs_rebuild
        assert maintainer.staleness("s").needs_rebuild

    def test_escalation_rebuilds_with_full_table(self, tmp_path):
        rng = np.random.default_rng(0)
        base = Table.from_pydict(
            {
                "g": ["a"] * 2000 + ["b"] * 50,
                "x": list(10 + rng.normal(0, 0.1, 2000))
                + list(10 + rng.normal(0, 0.1, 50)),
            }
        )
        batch = Table.from_pydict(
            {
                "g": ["b"] * 4000,
                "x": list(np.abs(rng.normal(5, 200, 4000)) + 0.1),
            }
        )
        full = base.concat(batch)
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        maintainer = SampleMaintainer(store, cv_degradation_threshold=1.5)
        maintainer.build(
            "s", base, group_by=["g"], value_columns=["x"], budget=120,
            seed=0,
        )
        report = maintainer.refresh("s", batch, full_table=full, seed=1)
        assert report.action == "rebuild"
        assert not report.needs_rebuild
        assert report.staleness == 0.0
        info = maintainer.staleness("s")
        assert info.refresh_count == 0  # lineage reset by the rebuild
        assert info.drift == pytest.approx(1.0, abs=0.1)

    def test_refresh_preserves_multi_column_statistics(
        self, maintainer, openaq_small
    ):
        base, batch = split_rows(openaq_small, 0.7)
        maintainer.build(
            "s", base, group_by=["country"],
            value_columns=["value", "latitude"], budget=600, seed=0,
        )
        maintainer.refresh("s", batch, seed=1)
        stats = maintainer.store.get("s").statistics
        assert set(stats.columns) == {"value", "latitude"}
        # The merged second-column moments equal a full-table scan.
        full = collect_strata_statistics(
            openaq_small, ("country",), ["latitude"]
        )
        idx = {k: i for i, k in enumerate(full.keys)}
        order = [idx[tuple(k)] for k in stats.keys]
        np.testing.assert_allclose(
            stats.stats_for("latitude").total,
            full.stats_for("latitude").total[order],
        )
        np.testing.assert_allclose(
            stats.stats_for("latitude").total_sq,
            full.stats_for("latitude").total_sq[order],
        )

    def test_batch_schema_mismatch_rejected(self, maintainer, openaq_small):
        base, _ = split_rows(openaq_small, 0.7)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=500, seed=0,
        )
        bad = Table.from_pydict({"country": ["US"], "other": [1.0]})
        # The tracked value column is named in the error along with what
        # the batch actually carries — no heuristic fallback.
        with pytest.raises(
            ValueError, match="tracks value column\\(s\\) value"
        ) as excinfo:
            maintainer.refresh("s", bad)
        assert "'s'" in str(excinfo.value)
        assert "country" in str(excinfo.value)

    def test_columns_override_unknown_to_sample_rejected(
        self, maintainer, openaq_small
    ):
        # The override may only narrow/reorder what the sample's rows
        # carry; a column the stored sample never kept cannot be
        # tracked incrementally and must fail up front with a clear
        # error, not a KeyError deep in the sampler.
        base, batch = split_rows(openaq_small, 0.7)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=500, seed=0,
        )
        from repro.engine.schema import DType
        from repro.engine.table import Column

        widened = batch.with_column(
            "brand_new",
            Column(DType.FLOAT64, np.ones(batch.num_rows)),
        )
        with pytest.raises(
            ValueError, match="does not carry column"
        ) as excinfo:
            maintainer.refresh("s", widened, columns=["brand_new"])
        assert "'s'" in str(excinfo.value)
        assert "rebuild" in str(excinfo.value)

    def test_batch_missing_untracked_payload_column_rejected(
        self, maintainer, openaq_small
    ):
        base, batch = split_rows(openaq_small, 0.7)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=500, seed=0,
        )
        narrowed = batch.select(
            [n for n in batch.column_names if n != "latitude"]
        )
        with pytest.raises(ValueError, match="missing sample columns"):
            maintainer.refresh("s", narrowed)

    def test_batch_with_extra_columns_is_projected(
        self, maintainer, openaq_small
    ):
        # A widened upstream schema must not poison the reservoirs with
        # heterogeneous rows: extra columns are dropped on ingest.
        base, batch = split_rows(openaq_small, 0.7)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=500, seed=0,
        )
        from repro.engine.schema import DType
        from repro.engine.table import Column

        widened = batch.with_column(
            "extra",
            Column(
                DType.FLOAT64, np.zeros(batch.num_rows, dtype=np.float64)
            ),
        )
        report = maintainer.refresh("s", widened, seed=1)
        refreshed = maintainer.store.get("s").sample
        assert report.source_rows == openaq_small.num_rows
        assert "extra" not in refreshed.table


class TestAccuracyPin:
    """Acceptance criterion: built + persisted + reloaded + refreshed
    sample stays within 1.25x the per-group CV of a fresh two-pass
    CVOPT sample of the same budget."""

    BUDGET = 1200

    def test_per_group_cv_within_125_percent_of_fresh(
        self, tmp_path, openaq_small
    ):
        base, b1, b2 = split_rows(openaq_small, 0.6, 0.8)
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        maintainer = SampleMaintainer(store)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=self.BUDGET, seed=0,
        )
        # Round-trip through disk between refreshes: each refresh loads
        # the persisted version, never the in-memory object.
        maintainer.refresh("s", b1, seed=1)
        maintainer.refresh("s", b2, seed=2)
        incremental = store.get("s").sample

        fresh = CVOptSampler(
            [GroupByQuerySpec.single("value", by=("country",))]
        ).sample(openaq_small, self.BUDGET, seed=0)

        # Predicted per-group estimate CVs from exact full-table
        # statistics — deterministic, no Monte-Carlo noise.
        full = collect_strata_statistics(
            openaq_small, ("country",), ["value"]
        )
        idx = {k: i for i, k in enumerate(full.keys)}
        data_cvs = np.nan_to_num(
            full.stats_for("value").cv(mean_floor=1e-9)
        )

        def per_group(sample):
            alloc = sample.allocation
            order = [idx[tuple(k)] for k in alloc.keys]
            cvs = predict_group_cvs(
                alloc.populations, data_cvs[order], alloc.sizes
            )
            return dict(zip(order, cvs))

        cv_incr = per_group(incremental)
        cv_fresh = per_group(fresh)
        assert set(cv_incr) == set(cv_fresh)  # same groups answerable
        for group in cv_fresh:
            assert np.isfinite(cv_incr[group])
            assert cv_incr[group] <= 1.25 * cv_fresh[group] + 1e-12

    def test_refreshed_sample_answers_accurately(
        self, tmp_path, openaq_small
    ):
        base, batch = split_rows(openaq_small, 0.7)
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        maintainer = SampleMaintainer(store)
        maintainer.build(
            "s", base, group_by=["country"], value_columns=["value"],
            budget=self.BUDGET, seed=0,
        )
        maintainer.refresh("s", batch, seed=1)
        sample = store.get("s").sample
        sql = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        from repro.engine.sql.executor import execute_sql

        exact = execute_sql(sql, {"OpenAQ": openaq_small})
        exact_by = dict(zip(exact["country"], exact["a"]))

        def mean_error(s):
            approx = s.answer(sql, "OpenAQ")
            approx_by = dict(zip(approx["country"], approx["a"]))
            assert set(approx_by) == set(exact_by)
            return float(
                np.mean(
                    [
                        abs(approx_by[c] - exact_by[c]) / abs(exact_by[c])
                        for c in exact_by
                    ]
                )
            )

        fresh = CVOptSampler(
            [GroupByQuerySpec.single("value", by=("country",))]
        ).sample(openaq_small, self.BUDGET, seed=0)
        # The synthetic values are heavy-tailed (per-group data CV ~2),
        # so absolute errors are sizeable even for the fresh two-pass
        # sample; what must hold is that one-pass maintenance does not
        # meaningfully degrade the estimate quality.
        assert mean_error(sample) <= 2.0 * mean_error(fresh) + 0.02
        assert mean_error(sample) < 0.25
