"""Cross-process coordination: lock files, manifest log, torn reads."""

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.table import Table
from repro.warehouse.coordination import (
    FileLock,
    LockTimeout,
    ManifestLog,
    ManifestRecord,
)
from repro.warehouse.store import SampleStore


def _tiny_sample(seed=0):
    table = Table.from_pydict(
        {
            "g": ["a", "b", "a", "c", "b", "a", "c", "b"] * 8,
            "v": list(np.arange(64, dtype=float)),
        },
        name="T",
    )
    return CVOptSampler(
        [GroupByQuerySpec.single("v", by=("g",))]
    ).sample(table, 24, seed=seed)


# ----------------------------------------------------------------------
# FileLock
# ----------------------------------------------------------------------
class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert (tmp_path / "x.lock").exists()
            holder = json.loads((tmp_path / "x.lock").read_text())
            assert holder["pid"] == os.getpid()
        assert not (tmp_path / "x.lock").exists()

    def test_held_lock_times_out_waiter(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            waiter = FileLock(path, timeout=0.2, stale_timeout=60.0)
            started = time.monotonic()
            with pytest.raises(LockTimeout):
                waiter.acquire()
            assert time.monotonic() - started >= 0.2

    def test_dead_holder_is_broken_immediately(self, tmp_path):
        path = tmp_path / "x.lock"
        import socket

        path.write_text(
            json.dumps(
                {
                    # far beyond this machine's pid space -> not alive
                    "pid": 99_999_999,
                    "host": socket.gethostname(),
                    "created": time.time(),
                }
            )
        )
        lock = FileLock(path, timeout=1.0, stale_timeout=3600.0)
        lock.acquire()  # breaks the stale lock instead of timing out
        lock.release()

    def test_alive_holder_is_never_broken_by_age(self, tmp_path):
        """A verified-alive same-host holder keeps the lock however
        old the file is; waiters time out instead of breaking it."""
        import socket

        path = tmp_path / "x.lock"
        path.write_text(
            json.dumps(
                {
                    "pid": os.getpid(),  # us: definitely alive
                    "host": socket.gethostname(),
                    "created": time.time() - 300,
                }
            )
        )
        old = time.time() - 300
        os.utime(path, (old, old))
        waiter = FileLock(path, timeout=0.3, stale_timeout=30.0)
        with pytest.raises(LockTimeout):
            waiter.acquire()
        assert path.exists()  # still held

    def test_aged_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text(json.dumps({"pid": None, "host": "elsewhere"}))
        old = time.time() - 120
        os.utime(path, (old, old))
        lock = FileLock(path, timeout=1.0, stale_timeout=30.0)
        lock.acquire()
        lock.release()

    def test_store_put_breaks_stale_lock(self, tmp_path):
        import socket

        store = SampleStore(tmp_path / "wh", lock_timeout=2.0)
        sample_dir = store.root / "s"
        sample_dir.mkdir()
        (sample_dir / ".lock").write_text(
            json.dumps(
                {
                    "pid": 99_999_999,
                    "host": socket.gethostname(),
                    "created": time.time(),
                }
            )
        )
        assert store.put("s", _tiny_sample()) == "v000001"

    def test_store_put_times_out_on_live_lock(self, tmp_path):
        store = SampleStore(
            tmp_path / "wh", lock_timeout=0.2, stale_lock_timeout=3600.0
        )
        sample_dir = store.root / "s"
        sample_dir.mkdir()
        with FileLock(sample_dir / ".lock"):  # held by a live pid (us)
            with pytest.raises(LockTimeout):
                store.put("s", _tiny_sample())


# ----------------------------------------------------------------------
# ManifestLog
# ----------------------------------------------------------------------
class TestManifestLog:
    def test_append_replay_round_trip(self, tmp_path):
        log = ManifestLog(tmp_path / "manifest.log")
        log.append(
            ManifestRecord(
                op="put", name="s", version="v000001",
                storage={"backend": "npz", "format": "npz"},
            )
        )
        log.append(ManifestRecord(op="prune", name="s",
                                  versions=["v000001"]))
        records, offset, skipped = log.replay(0)
        assert [r.op for r in records] == ["put", "prune"]
        assert records[0].storage["backend"] == "npz"
        assert skipped == 0
        assert offset == log.size()

    def test_incremental_replay(self, tmp_path):
        log = ManifestLog(tmp_path / "manifest.log")
        log.append(ManifestRecord(op="put", name="s", version="v000001"))
        _, offset, _ = log.replay(0)
        log.append(ManifestRecord(op="put", name="s", version="v000002"))
        records, new_offset, _ = log.replay(offset)
        assert [r.version for r in records] == ["v000002"]
        assert new_offset > offset

    def test_torn_trailing_line_is_not_committed(self, tmp_path):
        log = ManifestLog(tmp_path / "manifest.log")
        log.append(ManifestRecord(op="put", name="s", version="v000001"))
        with open(log.path, "ab") as fh:
            fh.write(b'{"op":"put","name":"s","version":"v0000')  # torn
        records, offset, skipped = log.replay(0)
        assert [r.version for r in records] == ["v000001"]
        assert skipped == 0
        assert offset < log.size()
        # Completing the line commits it.
        with open(log.path, "ab") as fh:
            fh.write(b'02"}\n')
        records, _, _ = log.replay(offset)
        assert [r.version for r in records] == ["v000002"]

    def test_garbage_line_counted_as_skipped(self, tmp_path):
        log = ManifestLog(tmp_path / "manifest.log")
        with open(log.path, "ab") as fh:
            fh.write(b"!!! not json !!!\n")
        log.append(ManifestRecord(op="put", name="s", version="v000001"))
        records, _, skipped = log.replay(0)
        assert [r.version for r in records] == ["v000001"]
        assert skipped == 1


# ----------------------------------------------------------------------
# store integration
# ----------------------------------------------------------------------
class TestManifestDrivenStore:
    def test_every_mutation_is_logged(self, tmp_path):
        store = SampleStore(tmp_path / "wh")
        sample = _tiny_sample()
        store.put("s", sample)
        store.put("s", sample)
        store.prune("s", keep=1)
        store.put("other", sample)
        store.delete("other")
        records, _, skipped = store.manifest.replay(0)
        assert [r.op for r in records] == [
            "put", "put", "prune", "put", "delete",
        ]
        assert skipped == 0
        assert store.names() == ["s"]
        assert store.versions("s") == ["v000002"]
        position = store.manifest_position()
        assert position["records"] == 5
        assert position["skipped"] == 0
        assert position["offset"] == store.manifest.size()

    def test_uncommitted_version_dir_is_invisible(self, tmp_path):
        """Crash between the directory rename and the manifest append:
        the orphan is not listed, and rebuild_manifest adopts it."""
        store = SampleStore(tmp_path / "wh")
        sample = _tiny_sample()
        store.put("s", sample)
        # Forge the orphan: a fully-written v000002 with no log record.
        import shutil

        src = store.root / "s" / "v000001"
        dst = store.root / "s" / "v000002"
        shutil.copytree(src, dst)
        meta = json.loads((dst / "meta.json").read_text())
        meta["version"] = "v000002"
        (dst / "meta.json").write_text(json.dumps(meta))

        assert store.versions("s") == ["v000001"]
        assert store.get("s").version == "v000001"
        adopted = store.rebuild_manifest()
        assert adopted == [{"name": "s", "version": "v000002"}]
        assert store.versions("s") == ["v000001", "v000002"]

    def test_rebuild_skips_version_with_torn_meta(self, tmp_path):
        """A version whose meta.json is unparsable can never be
        loaded, so a rebuild must not adopt it into the manifest."""
        store = SampleStore(tmp_path / "wh")
        store.put("s", _tiny_sample())
        import shutil

        src = store.root / "s" / "v000001"
        dst = store.root / "s" / "v000002"
        shutil.copytree(src, dst)
        meta_text = (dst / "meta.json").read_text()
        (dst / "meta.json").write_text(meta_text[: len(meta_text) // 2])
        assert store.rebuild_manifest() == []
        assert store.versions("s") == ["v000001"]

    def test_next_version_never_reuses_orphan_ids(self, tmp_path):
        store = SampleStore(tmp_path / "wh")
        sample = _tiny_sample()
        store.put("s", sample)
        (store.root / "s" / "v000007").mkdir()  # orphan debris
        assert store.put("s", sample) == "v000008"

    def test_premanifest_store_is_migrated_on_open(self, tmp_path):
        """A store written before the manifest existed (or whose log
        was lost) rebuilds it from the directory tree at open time."""
        store = SampleStore(tmp_path / "wh")
        sample = _tiny_sample()
        store.put("s", sample)
        store.put("s", sample)
        store.manifest.path.unlink()

        reopened = SampleStore(tmp_path / "wh")
        assert reopened.manifest.exists()
        assert reopened.versions("s") == ["v000001", "v000002"]
        records, _, _ = reopened.manifest.replay(0)
        assert all(r.recovered for r in records)
        assert reopened.get("s").version == "v000002"

    def test_second_store_instance_sees_new_commits(self, tmp_path):
        """Two store handles on one root (stand-in for two processes):
        the reader's manifest view follows the writer's appends."""
        writer = SampleStore(tmp_path / "wh")
        sample = _tiny_sample()
        writer.put("s", sample)
        reader = SampleStore(tmp_path / "wh")
        assert reader.versions("s") == ["v000001"]
        writer.put("s", sample)
        assert reader.versions("s") == ["v000001", "v000002"]
        assert reader.get("s").version == "v000002"


# ----------------------------------------------------------------------
# two processes, one store
# ----------------------------------------------------------------------
_WRITER_SCRIPT = """
import sys
import numpy as np
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.table import Table
from repro.warehouse.store import SampleStore

root, puts = sys.argv[1], int(sys.argv[2])
table = Table.from_pydict(
    {
        "g": ["a", "b", "a", "c", "b", "a", "c", "b"] * 8,
        "v": list(np.arange(64, dtype=float)),
    },
    name="T",
)
sample = CVOptSampler(
    [GroupByQuerySpec.single("v", by=("g",))]
).sample(table, 24, seed=1)
store = SampleStore(root)
for i in range(puts):
    store.put("shared", sample, table_name="T")
print("writer done", flush=True)
"""


class TestTwoProcessCoordination:
    def test_reader_never_observes_a_torn_version(self, tmp_path):
        """A writer subprocess commits versions while this process
        reads; every successful read must be a complete sample, and at
        the end the manifest replay equals the directory scan."""
        root = tmp_path / "wh"
        puts = 25
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        writer = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(root), str(puts)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            reader = SampleStore(root)
            expected_rows = _tiny_sample(seed=1).num_rows
            good_reads = 0
            seen_versions = set()
            deadline = time.monotonic() + 60
            while writer.poll() is None and time.monotonic() < deadline:
                try:
                    stored = reader.get("shared")
                except KeyError as exc:
                    # Acceptable only while nothing is committed yet; a
                    # torn version would surface as "no readable".
                    assert "no readable" not in str(exc), exc
                    continue
                assert stored.sample.num_rows == expected_rows
                assert stored.sample.table.num_rows == expected_rows
                good_reads += 1
                seen_versions.add(stored.version)
            out, err = writer.communicate(timeout=60)
            assert writer.returncode == 0, err.decode()
        finally:
            if writer.poll() is None:
                writer.kill()
                writer.communicate()

        assert good_reads > 0
        # Manifest replay == directory scan: every committed version is
        # on disk and every on-disk version was committed.
        committed = {r.version for r in reader.manifest.replay(0)[0]}
        on_disk = {
            p.name
            for p in (root / "shared").iterdir()
            if p.is_dir() and p.name.startswith("v")
        }
        assert committed == on_disk
        assert len(on_disk) == puts
        assert reader.versions("shared") == sorted(on_disk)
        assert reader.get("shared").version == f"v{puts:06d}"
        # No lock debris left behind.
        assert not (root / "shared" / ".lock").exists()
