"""Multi-column pipeline end to end: build --columns a,b, refresh via
streaming batches, answer AVG(b) with a contract predicted from b's
moments — and keep loading pre-format-3 (single-column) metas."""

import json
import os

import numpy as np
import pytest

from repro.aqp.planning import predict_group_cvs
from repro.engine.statistics import collect_strata_statistics
from repro.engine.table import Table
from repro.warehouse import SampleStore, WarehouseService

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")


def split_rows(table, *fractions):
    n = table.num_rows
    bounds = [0] + [int(n * f) for f in fractions] + [n]
    return [
        table.take(np.arange(bounds[i], bounds[i + 1]))
        for i in range(len(bounds) - 1)
    ]


@pytest.fixture()
def service(tmp_path, openaq_small):
    base, _, _ = split_rows(openaq_small, 0.6, 0.8)
    svc = WarehouseService(
        tmp_path / "wh", {"OpenAQ": base}, backend=_BACKEND
    )
    svc.build(
        "s", "OpenAQ", group_by=["country"],
        value_columns=["value", "latitude"], budget=900,
    )
    return svc


class TestMultiColumnPipeline:
    def test_refreshed_moments_match_scratch_rebuild_per_column(
        self, service, openaq_small
    ):
        _, b1, b2 = split_rows(openaq_small, 0.6, 0.8)
        service.refresh("s", b1, seed=1)
        service.refresh("s", b2, seed=2)
        stats = service.store.get("s").statistics
        assert set(stats.columns) == {"value", "latitude"}
        full = collect_strata_statistics(
            openaq_small, ("country",), ["value", "latitude"]
        )
        idx = {k: i for i, k in enumerate(full.keys)}
        order = [idx[tuple(k)] for k in stats.keys]
        for column in ("value", "latitude"):
            merged = stats.stats_for(column)
            scratch = full.stats_for(column)
            np.testing.assert_allclose(
                merged.total, scratch.total[order], rtol=1e-9
            )
            np.testing.assert_allclose(
                merged.total_sq, scratch.total_sq[order], rtol=1e-9
            )

    def test_contract_for_avg_b_comes_from_bs_moments(
        self, service, openaq_small
    ):
        _, b1, b2 = split_rows(openaq_small, 0.6, 0.8)
        service.refresh("s", b1, seed=1)
        service.refresh("s", b2, seed=2)
        answer = service.query_with_contract(
            "SELECT country, AVG(latitude) a FROM OpenAQ GROUP BY country"
        )
        contract = answer.contract
        assert contract.executed == "approximate"
        assert contract.cv_columns == ("latitude",)
        # The per-group prediction is exactly the CV math applied to
        # latitude's persisted (exact, merged) moments.
        sample = service.store.get("s").sample
        alloc = sample.allocation
        data_cvs = np.nan_to_num(
            alloc.stats.stats_for("latitude").cv(mean_floor=1e-9)
        )
        expected = predict_group_cvs(
            alloc.populations, data_cvs, alloc.sizes
        )
        np.testing.assert_allclose(
            np.asarray(contract.group_cvs), expected, rtol=1e-12
        )
        # ...and differs from what value's moments would predict.
        value_cvs = np.nan_to_num(
            alloc.stats.stats_for("value").cv(mean_floor=1e-9)
        )
        assert not np.allclose(
            expected, predict_group_cvs(
                alloc.populations, value_cvs, alloc.sizes
            )
        )

    def test_lineage_and_summaries_surface_columns(self, service):
        stored = service.store.get("s")
        assert stored.tracked_columns == ["value", "latitude"]
        assert stored.primary_column == "value"
        summary = {
            s["name"]: s for s in service.sample_summaries()
        }["s"]
        assert summary["columns"] == ["value", "latitude"]
        assert summary["primary_column"] == "value"
        stats = service.stats()["samples"]["s"]
        assert stats["columns"]["tracked"] == ["value", "latitude"]
        assert stats["columns"]["primary"] == "value"
        assert set(stats["columns"]["stats"]) == {"value", "latitude"}
        per_col = stats["columns"]["stats"]["latitude"]
        assert per_col["strata"] >= per_col["populated_strata"] > 0
        assert per_col["mean_data_cv"] is not None

    def test_refresh_report_carries_per_column_drift(
        self, service, openaq_small
    ):
        _, b1, _ = split_rows(openaq_small, 0.6, 0.8)
        report = service.refresh("s", b1, seed=1)
        assert set(report.drift_by_column) == {"value", "latitude"}
        assert report.drift == pytest.approx(
            max(report.drift_by_column.values())
        )
        info = service.staleness("s")
        assert set(info.drift_by_column) == {"value", "latitude"}
        assert info.columns == ["value", "latitude"]


class TestLegacyMetaCompatibility:
    """Pre-format-3 metas (no ``columns`` block, single-column lineage)
    must still load, serve, and refresh."""

    def _downgrade_meta(self, store, name):
        """Rewrite the current version's meta to the format-2 shape."""
        version = store.current_version(name)
        meta_path = store.root / name / version / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = 2
        meta.pop("columns", None)
        lineage = meta.get("lineage") or {}
        lineage.pop("value_columns", None)
        lineage.pop("primary_column", None)
        lineage.pop("drift_by_column", None)
        lineage["value_column"] = "value"
        meta["lineage"] = lineage
        meta_path.write_text(json.dumps(meta, indent=2))

    @pytest.fixture()
    def legacy_store(self, tmp_path, openaq_small):
        base, _ = split_rows(openaq_small, 0.7)
        svc = WarehouseService(
            tmp_path / "wh", {"OpenAQ": base}, backend=_BACKEND
        )
        svc.build(
            "old", "OpenAQ", group_by=["country"],
            value_columns=["value"], budget=600,
        )
        self._downgrade_meta(svc.store, "old")
        return svc.store.root

    def test_legacy_meta_loads_with_derived_columns(
        self, legacy_store
    ):
        store = SampleStore(legacy_store, backend=_BACKEND)
        stored = store.get("old")
        assert json.loads(
            (stored.path / "meta.json").read_text()
        )["format"] == 2
        assert stored.tracked_columns == ["value"]
        assert stored.primary_column == "value"

    def test_legacy_meta_serves_and_refreshes(
        self, legacy_store, openaq_small
    ):
        base, batch = split_rows(openaq_small, 0.7)
        svc = WarehouseService(
            legacy_store, {"OpenAQ": base}, backend=_BACKEND
        )
        answer = svc.query_with_contract(
            "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
        )
        assert answer.contract.executed == "approximate"
        assert answer.contract.cv_columns == ("value",)
        report = svc.refresh("old", batch, seed=1)
        assert report.columns == ["value"]
        # The refreshed version is written in the current format.
        stored = svc.store.get("old")
        assert stored.tracked_columns == ["value"]
        meta = json.loads((stored.path / "meta.json").read_text())
        assert meta["format"] == 4
