"""Group-code cache correctness: identical answers across hits,
invalidation on hot-swap and ``clear_plan_cache()``, LRU bound under
eviction, and exactness under 8-thread contention (mirrors the
``tests/obs/test_metrics.py`` thread-safety style). Ends with the
sharded equivalence check: warm per-shard caches must not change a
single merged number."""

import os
import threading

import numpy as np
import pytest

from repro.engine.groupby import compute_group_keys
from repro.engine.groupcache import GroupCodeCache, default_group_code_cache
from repro.engine.table import Table
from repro.obs import default_tracer
from repro.warehouse import ShardedWarehouseService, WarehouseService

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")
_SHARDS = int(os.environ.get("REPRO_TEST_SHARDS", "2"))


def make_base(n=4000, seed=5):
    rng = np.random.default_rng(seed)
    return Table.from_pydict(
        {
            "g": [f"g{i % 9}" for i in range(n)],
            "h": [f"h{i % 4}" for i in range(n)],
            "x": rng.normal(100.0, 15.0, n),
        },
        name="T",
    )


def build_service(root, table, **kwargs):
    svc = WarehouseService(
        root, {"T": table}, backend=_BACKEND, **kwargs
    )
    svc.build("s", "T", ["g", "h"], ["x"], budget=900, seed=0)
    return svc


SQL_A = "SELECT g, AVG(x) a FROM T GROUP BY g"
SQL_B = "SELECT g, SUM(x) s, COUNT(*) c FROM T GROUP BY g"


class TestCacheHitsAnswerIdentically:
    def test_cold_and_warm_answers_match(self, tmp_path):
        svc = build_service(tmp_path / "wh", make_base())
        cache = default_group_code_cache()
        cold = svc.query(SQL_A).table.to_pydict()  # miss: populates
        before = cache.counters()
        # Different SQL, same group keys: skips the answer cache but
        # hits the group-code cache.
        warm_b = svc.query(SQL_B).table.to_pydict()
        after = cache.counters()
        assert after["hits"] > before["hits"]
        warm_a = svc.query(SQL_A).table.to_pydict()
        assert warm_a == cold
        # Re-derive SQL_B cold for comparison: clearing re-factorizes.
        svc._session.clear_plan_cache()
        svc._cache.clear()
        assert svc.query(SQL_B).table.to_pydict() == warm_b

    def test_direct_group_keys_identical_after_hit(self, tmp_path):
        svc = build_service(tmp_path / "wh", make_base())
        sample_table = svc.snapshot_sample("s")[0].table
        assert sample_table.cache_token is not None
        first = compute_group_keys(sample_table, ("g",))
        again = compute_group_keys(sample_table, ("g",))
        assert again is first  # the cached object itself
        assert np.array_equal(first.gids, again.gids)

    def test_derived_tables_bypass_the_cache(self, tmp_path):
        svc = build_service(tmp_path / "wh", make_base())
        sample_table = svc.snapshot_sample("s")[0].table
        compute_group_keys(sample_table, ("g",))
        filtered = sample_table.filter(
            np.ones(sample_table.num_rows, dtype=bool)
        )
        assert filtered.cache_token is None
        keys = compute_group_keys(filtered, ("g",))
        cached = compute_group_keys(sample_table, ("g",))
        assert keys is not cached

    def test_warm_hit_skips_factorize_span(self, tmp_path):
        svc = build_service(tmp_path / "wh", make_base())
        svc.query(SQL_A)  # populate
        with default_tracer().trace("q") as t:
            svc.query(SQL_B)  # warm keys, uncached answer
        d = t.trace.to_dict()
        names = [s["name"] for s in d["spans"]]
        assert "engine.factorize" not in names
        assert any(
            s["tags"].get("factorize.cached") for s in d["spans"]
        )


class TestInvalidation:
    def test_version_hot_swap_invalidates(self, tmp_path):
        base = make_base()
        svc = build_service(tmp_path / "wh", base)
        token_v1 = svc.snapshot_sample("s")[0].table.cache_token
        cold = svc.query(SQL_B).table.to_pydict()
        rng = np.random.default_rng(99)
        batch = Table.from_pydict(
            {
                "g": ["g_new"] * 500,
                "h": ["h0"] * 500,
                "x": rng.normal(500.0, 1.0, 500),
            },
            name="T",
        )
        svc.refresh("s", batch, seed=1)
        token_v2 = svc.snapshot_sample("s")[0].table.cache_token
        assert token_v2 != token_v1  # version is part of the key
        # clear_plan_cache ran during the swap: nothing stale survives.
        assert len(default_group_code_cache()) == 0
        fresh = svc.query(SQL_B).table.to_pydict()
        assert fresh != cold  # the new stratum is visible, not stale
        assert "g_new" in fresh["g"]

    def test_clear_plan_cache_invalidates(self, tmp_path):
        svc = build_service(tmp_path / "wh", make_base())
        svc.query(SQL_A)
        cache = default_group_code_cache()
        assert len(cache) > 0
        svc._session.clear_plan_cache()
        assert len(cache) == 0

    def test_invalidate_by_sample_name(self):
        cache = GroupCodeCache(capacity=8)
        cache.put(("", "a", "v1"), ("g",), object())
        cache.put(("shard-00", "a", "v2"), ("g",), object())
        cache.put(("", "b", "v1"), ("g",), object())
        cache.invalidate("a")
        assert len(cache) == 1
        assert cache.get(("", "b", "v1"), ("g",)) is not None


class TestEviction:
    def test_size_bound_holds_under_eviction(self):
        cache = GroupCodeCache(capacity=4)
        for i in range(12):
            cache.put(("", "s", f"v{i}"), ("g",), i)
        counters = cache.counters()
        assert len(cache) == 4
        assert counters["size"] == 4
        assert counters["evictions"] == 8
        # LRU: the four most recent versions survive.
        for i in range(8):
            assert cache.get(("", "s", f"v{i}"), ("g",)) is None
        for i in range(8, 12):
            assert cache.get(("", "s", f"v{i}"), ("g",)) == i

    def test_get_refreshes_recency(self):
        cache = GroupCodeCache(capacity=2)
        cache.put(("", "s", "v1"), ("g",), 1)
        cache.put(("", "s", "v2"), ("g",), 2)
        cache.get(("", "s", "v1"), ("g",))  # v1 becomes most recent
        cache.put(("", "s", "v3"), ("g",), 3)
        assert cache.get(("", "s", "v1"), ("g",)) == 1
        assert cache.get(("", "s", "v2"), ("g",)) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GroupCodeCache(capacity=0)


class TestThreadSafety:
    def test_concurrent_hits_and_misses_are_exact(self):
        # 8 threads hammering a shared cache: every lookup is either a
        # hit or a miss, nothing is lost, and the bound holds throughout.
        cache = GroupCodeCache(capacity=16)
        threads, per_thread = 8, 2000

        def hammer(i):
            for j in range(per_thread):
                token = ("", f"s{i % 2}", f"v{j % 8}")
                if cache.get(token, ("g",)) is None:
                    cache.put(token, ("g",), (i, j))

        ts = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        counters = cache.counters()
        assert counters["hits"] + counters["misses"] == threads * per_thread
        assert counters["size"] <= 16
        assert len(cache) == counters["size"]

    def test_concurrent_queries_share_one_factorization(self, tmp_path):
        svc = build_service(tmp_path / "wh", make_base())
        sample_table = svc.snapshot_sample("s")[0].table
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            results[i] = compute_group_keys(sample_table, ("g", "h"))

        ts = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        reference = results[0]
        for keys in results[1:]:
            assert keys.num_groups == reference.num_groups
            assert np.array_equal(keys.gids, reference.gids)
            assert np.array_equal(
                keys.representative, reference.representative
            )


class TestShardedEquivalence:
    def test_warm_caches_leave_sharded_answers_identical(self, tmp_path):
        # In-process workers share one process-wide cache; the per-shard
        # scope in the token must keep their (same-name, same-version,
        # different-rows) entries apart, so warm repeats merge the same
        # numbers as the plain warehouse.
        base = make_base()
        plain = build_service(tmp_path / "plain", base)
        sharded = ShardedWarehouseService(
            tmp_path / "sharded",
            {"T": base},
            shards=max(_SHARDS, 1),
            backend=_BACKEND,
            workers="inprocess",
        )
        try:
            sharded.build("s", "T", ["g", "h"], ["x"], budget=900, seed=0)
            for sql in (SQL_A, SQL_B):
                expected = plain.query(sql).table.to_pydict()
                first = sharded.query(sql).table.to_pydict()
                sharded._cache.clear()  # force re-merge from partials
                warm = sharded.query(sql).table.to_pydict()
                assert first == warm
                assert set(first["g"]) == set(expected["g"])
        finally:
            sharded.close()
