"""Zero-copy mmap backend: layout, laziness, projection, torn versions.

The differential eager-vs-lazy answer guarantees live in
``tests/properties/test_mmap_differential.py``; this file covers the
backend and store mechanics.
"""

import json

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.sample import WEIGHT_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.engine.schema import DType
from repro.engine.table import Column, Table
from repro.warehouse.backends import MmapBackend, infer_storage
from repro.warehouse.store import SampleStore


@pytest.fixture()
def sample(openaq_small):
    sampler = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country", "parameter"))]
    )
    return sampler.sample(openaq_small, 2_000, seed=0)


@pytest.fixture()
def store(tmp_path, sample):
    store = SampleStore(tmp_path / "store", backend="mmap")
    store.put("s", sample, table_name="OpenAQ")
    return store


class TestOnDiskLayout:
    def test_one_npy_per_column_plus_sidecar(self, store, sample):
        stored = store.get("s")
        files = sorted(p.name for p in stored.path.iterdir())
        ncols = len(sample.table.column_names)
        assert "rows.mmap" in files
        assert [f for f in files if f.endswith(".npy")] == [
            f"col-{i:03d}.npy" for i in range(ncols)
        ]
        sidecar = json.loads((stored.path / "rows.mmap").read_text())
        assert sidecar["rows"] == sample.num_rows
        assert [c["name"] for c in sidecar["columns"]] == list(
            sample.table.column_names
        )

    def test_storage_block_records_column_files(self, store, sample):
        stored = store.get("s")
        block = stored.storage
        assert block["backend"] == "mmap"
        assert block["format"] == "mmap"
        assert set(block["column_files"]) == set(sample.table.column_names)
        for fname in block["column_files"].values():
            assert (stored.path / fname).is_file()

    def test_column_files_are_raw_npy(self, store):
        stored = store.get("s")
        for fname in stored.storage["column_files"].values():
            with open(stored.path / fname, "rb") as fh:
                assert fh.read(6) == b"\x93NUMPY"


class TestLaziness:
    def test_get_defers_column_io(self, store, sample):
        table = store.get("s").sample.table
        assert table.num_rows == sample.num_rows
        assert all(
            not table.column(c).materialized for c in table.column_names
        )

    def test_first_access_memory_maps(self, store, sample):
        table = store.get("s").sample.table
        col = table.column("value")
        data = col.data
        assert isinstance(data, np.memmap)
        assert not data.flags.writeable
        np.testing.assert_array_equal(
            data, sample.table.column("value").data
        )
        assert all(
            not table.column(c).materialized
            for c in table.column_names
            if c != "value"
        )

    def test_projected_get_drops_other_columns(self, store):
        stored = store.get("s", columns=["country", "value", WEIGHT_COLUMN])
        assert set(stored.sample.table.column_names) == {
            "country",
            "value",
            WEIGHT_COLUMN,
        }

    def test_projection_ignores_unknown_names(self, store):
        stored = store.get("s", columns=["value", "no_such_column"])
        assert stored.sample.table.column_names == ("value",)


class TestTornVersions:
    def test_missing_column_file_raises_at_get_not_mid_query(
        self, tmp_path, sample
    ):
        store = SampleStore(tmp_path / "t", backend="mmap")
        store.put("s", sample)
        stored = store.get("s")
        # Delete a column file nobody is asking for: the projected get
        # must still fail eagerly (inside the store's skip machinery),
        # never later on first lazy access.
        victim = stored.storage["column_files"]["latitude"]
        (stored.path / victim).unlink()
        with pytest.raises(KeyError):
            store.get("s", columns=["value"])

    def test_get_falls_back_to_previous_complete_version(
        self, tmp_path, sample
    ):
        store = SampleStore(tmp_path / "t", backend="mmap")
        v1 = store.put("s", sample)
        v2 = store.put("s", sample)
        stored = store.get("s", v2)
        (stored.path / stored.storage["column_files"]["value"]).unlink()
        assert store.get("s").version == v1

    def test_rebuild_manifest_skips_torn_mmap_directory(
        self, tmp_path, sample
    ):
        store = SampleStore(tmp_path / "t", backend="mmap")
        version = store.put("s", sample)
        vdir = store.root / "s" / version
        # Simulate a hand-copied/legacy directory: strip the storage
        # block so adoption must go through infer_storage.
        meta_path = vdir / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta.pop("storage", None)
        meta_path.write_text(json.dumps(meta))
        (store.root / "manifest.log").write_text("")

        fresh = SampleStore(tmp_path / "t", backend="mmap")
        adopted = fresh.rebuild_manifest()
        assert {"name": "s", "version": version} in adopted

        # Now tear it: a missing column file must block adoption.
        (store.root / "manifest.log").write_text("")
        (vdir / "col-000.npy").unlink()
        fresh2 = SampleStore(tmp_path / "t", backend="mmap")
        assert fresh2.rebuild_manifest() == []

    def test_infer_storage_reconstructs_mmap_block(self, store):
        stored = store.get("s")
        block = infer_storage(stored.path)
        assert block["format"] == "mmap"
        assert block["rows_file"] == "rows.mmap"
        assert block["column_files"] == stored.storage["column_files"]


class TestRoundTripDtypes:
    def test_all_dtypes_survive(self, tmp_path):
        table = Table.from_pydict(
            {
                "s": ["a", "b", "a"],
                "f": [1.5, -2.0, 0.25],
                "i": [1, 2, 3],
                "b": [True, False, True],
                "ts": np.array(
                    ["2020-01-01", "2021-06-15", "2022-12-31"],
                    dtype="datetime64[s]",
                ),
            },
            name="Typed",
        )
        backend = MmapBackend()
        block = backend.put_rows(tmp_path, table)
        back = backend.get_rows(tmp_path, block)
        assert back.name == "Typed"
        for cname in table.column_names:
            orig, rest = table.column(cname), back.column(cname)
            assert rest.dtype is orig.dtype
            assert rest.categories == orig.categories
            np.testing.assert_array_equal(rest.data, orig.data)
        assert back.column("ts").dtype is DType.TIMESTAMP

    def test_empty_table_round_trips(self, tmp_path):
        table = Table.from_pydict({"x": np.asarray([], dtype=np.int64)})
        backend = MmapBackend()
        block = backend.put_rows(tmp_path, table)
        back = backend.get_rows(tmp_path, block)
        assert back.num_rows == 0
        assert back.column("x").dtype is DType.INT64

    def test_lazy_table_round_trips_through_put(self, tmp_path, store):
        # put() of a still-lazy table must materialize on demand and
        # write correct bytes (maintenance re-publishes loaded samples).
        lazy = store.get("s").sample.table
        backend = MmapBackend()
        out = tmp_path / "copy"
        out.mkdir()
        block = backend.put_rows(out, lazy)
        back = backend.get_rows(out, block)
        for cname in lazy.column_names:
            np.testing.assert_array_equal(
                back.column(cname).data, lazy.column(cname).data
            )


class _SpyMmapBackend(MmapBackend):
    """MmapBackend that records which column files get opened.

    Wraps every lazy loader with a counter, so a test can assert that a
    query's projection keeps untouched column files closed — no strace
    needed.
    """

    def __init__(self):
        self.opened = []

    def get_rows(self, version_dir, storage, columns=None):
        table = super().get_rows(version_dir, storage, columns)
        wrapped = {}
        for cname in table.column_names:
            col = table.column(cname)
            loader = col._loader

            def counting(loader=loader, cname=cname):
                self.opened.append(cname)
                return loader()

            wrapped[cname] = Column.lazy(
                col.dtype, counting, len(col), categories=col.categories
            )
        spied = Table(wrapped, name=table.name)
        spied.cache_token = table.cache_token
        return spied


class TestProjectionPushdown:
    def test_query_never_opens_untouched_column_files(
        self, tmp_path, openaq_small, sample
    ):
        from repro.aqp.session import AQPSession

        writer = SampleStore(tmp_path / "p", backend="mmap")
        writer.put("s", sample, table_name="OpenAQ")
        spy = _SpyMmapBackend()
        store = SampleStore(tmp_path / "p", backend=spy)
        stored = store.get("s")

        session = AQPSession(tables={"OpenAQ": openaq_small})
        session.register_sample("s", stored.sample, "OpenAQ")
        result = session.query(
            "SELECT country, AVG(value) AS v FROM OpenAQ GROUP BY country"
        )
        assert result.route.approximate
        assert result.table.num_rows > 0
        opened = set(spy.opened)
        # The query touches its keys, its aggregate argument, the HT
        # weights, and (at most) routing's stratum/value fallback —
        # never the untouched sensor geometry columns.
        assert opened, "query answered without reading any column?"
        for untouched in ("latitude", "location", "unit", "local_time"):
            assert untouched not in opened

    def test_compute_partials_projects_before_filtering(
        self, tmp_path, sample
    ):
        from repro.warehouse.partials import compute_partials, decompose
        from repro.engine.sql.parser import parse_query

        writer = SampleStore(tmp_path / "q", backend="mmap")
        writer.put("s", sample, table_name="OpenAQ")
        spy = _SpyMmapBackend()
        store = SampleStore(tmp_path / "q", backend=spy)
        lazy_sample = store.get("s").sample

        dq = decompose(
            parse_query(
                "SELECT country, SUM(value) AS s FROM OpenAQ "
                "WHERE parameter = 'pm25' GROUP BY country"
            )
        )
        partials = compute_partials(lazy_sample, dq)
        assert partials.keys  # produced real work
        opened = set(spy.opened)
        assert opened <= {"country", "parameter", "value", WEIGHT_COLUMN}
        for untouched in ("latitude", "location", "unit", "local_time"):
            assert untouched not in opened
