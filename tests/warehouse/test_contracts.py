"""Accuracy contracts: construction, constraints, consistency."""

import os

import numpy as np
import pytest

from repro.warehouse import (
    AccuracyContract,
    AccuracyContractViolation,
    WarehouseService,
)

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")


@pytest.fixture()
def service(tmp_path, openaq_small):
    svc = WarehouseService(
        tmp_path / "wh", {"OpenAQ": openaq_small}, backend=_BACKEND
    )
    svc.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800,
    )
    return svc


class TestContractBlock:
    def test_approximate_contract_fields(self, service):
        answer = service.query_with_contract(SQL)
        contract = answer.contract
        assert contract.executed == "approximate"
        assert contract.sample_name == "s"
        assert contract.sample_version == "v000001"
        assert contract.predicted_cv > 0
        assert contract.max_group_cv >= contract.predicted_cv * 0.999
        assert len(contract.group_cvs) == len(contract.group_keys)
        assert contract.staleness == 0.0
        assert not contract.fallback_exact
        assert contract.satisfied

    def test_exact_mode_contract(self, service):
        contract = service.query_with_contract(SQL, mode="exact").contract
        assert contract.executed == "exact"
        assert not contract.fallback_exact  # exact was *requested*
        assert contract.sample_name is None
        assert contract.predicted_cv is None

    def test_router_fallback_is_flagged(self, service):
        # No sample stratifies parameter -> router runs exactly.
        contract = service.query_with_contract(
            "SELECT parameter, AVG(value) a FROM OpenAQ "
            "GROUP BY parameter"
        ).contract
        assert contract.executed == "exact"
        assert contract.fallback_exact

    def test_to_dict_schema_and_group_detail(self, service):
        payload = service.query_with_contract(SQL).contract.to_dict()
        for key in (
            "executed", "sample_name", "sample_version", "predicted_cv",
            "max_group_cv", "staleness", "drift", "needs_rebuild",
            "fallback_exact", "reason", "constraints", "satisfied",
        ):
            assert key in payload
        assert isinstance(payload["group_cvs"], dict)
        assert len(payload["group_cvs"]) > 0
        # capping removes per-group detail but keeps the summary
        capped = service.query_with_contract(SQL).contract.to_dict(
            max_groups=1
        )
        assert "group_cvs" not in capped
        assert capped["max_group_cv"] is not None

    def test_contract_matches_route_prediction(self, service):
        answer = service.query_with_contract(SQL)
        route = answer.result.route
        assert answer.contract.predicted_cv == route.predicted_cv
        assert answer.contract.group_cvs == route.group_cvs
        assert answer.contract.max_group_cv == max(route.group_cvs)


class TestConstraints:
    def test_unsatisfiable_max_cv_falls_back(self, service):
        answer = service.query_with_contract(SQL, max_cv=1e-12)
        assert answer.contract.executed == "exact"
        assert answer.contract.fallback_exact
        assert answer.contract.satisfied
        assert "max_cv" in answer.contract.reason
        # the answer is genuinely exact
        exact = service.query(SQL, mode="exact")
        assert np.allclose(
            np.asarray(answer.table["a"], dtype=float),
            np.asarray(exact.table["a"], dtype=float),
        )

    def test_reject_raises_with_contract(self, service):
        with pytest.raises(AccuracyContractViolation) as excinfo:
            service.query_with_contract(
                SQL, max_cv=1e-12, on_violation="reject"
            )
        err = excinfo.value
        assert err.violations
        assert isinstance(err.contract, AccuracyContract)
        assert not err.contract.satisfied
        assert err.contract.constraints == {"max_cv": 1e-12}

    def test_approx_mode_cannot_fall_back(self, service):
        with pytest.raises(AccuracyContractViolation):
            service.query_with_contract(SQL, mode="approx", max_cv=1e-12)

    def test_generous_constraints_pass_through(self, service):
        answer = service.query_with_contract(
            SQL, max_cv=100.0, max_staleness=10.0
        )
        assert answer.contract.executed == "approximate"
        assert answer.contract.satisfied
        assert answer.contract.constraints == {
            "max_cv": 100.0,
            "max_staleness": 10.0,
        }

    def test_max_staleness_enforced_after_refresh(
        self, tmp_path, openaq_small
    ):
        n = openaq_small.num_rows
        base = openaq_small.take(np.arange(0, int(n * 0.6)))
        batch = openaq_small.take(np.arange(int(n * 0.6), n))
        svc = WarehouseService(
            tmp_path / "wh2", {"OpenAQ": base}, backend=_BACKEND
        )
        svc.build(
            "s", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=600,
        )
        report = svc.refresh("s", batch)
        contract = svc.query_with_contract(SQL).contract
        if report.action == "incremental":
            assert contract.staleness > 0.0
            tighter = contract.staleness / 2
            fallen = svc.query_with_contract(
                SQL, max_staleness=tighter
            ).contract
            assert fallen.executed == "exact" and fallen.fallback_exact
        else:  # escalated to rebuild: fresh again
            assert contract.staleness == 0.0

    def test_bad_on_violation_rejected(self, service):
        with pytest.raises(ValueError):
            service.query_with_contract(SQL, on_violation="explode")


class TestCaching:
    def test_contracted_answers_memoized_per_epoch(self, service):
        first = service.query_with_contract(SQL)
        second = service.query_with_contract(SQL)
        assert second is first
        # different constraints -> different cache entry
        third = service.query_with_contract(SQL, max_cv=100.0)
        assert third is not first

    def test_swap_invalidates_contracted_answers(
        self, service, openaq_small
    ):
        first = service.query_with_contract(SQL)
        service.build(
            "s2", "OpenAQ", group_by=["country", "parameter"],
            value_columns=["value"], budget=800,
        )
        again = service.query_with_contract(SQL)
        assert again is not first
