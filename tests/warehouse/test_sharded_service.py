"""Scatter-gather front: equivalence with the unsharded service,
contracts on merged moments, parallel refresh, and central rebuild
escalation."""

import os

import numpy as np
import pytest

from repro.engine.sql.executor import execute_sql
from repro.warehouse import (
    AccuracyContractViolation,
    ShardedWarehouseService,
    WarehouseService,
)

# CI legs re-run this suite per storage backend (see conftest.py)
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

SQL = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
QUERIES = [
    SQL,
    "SELECT country, SUM(value) s, COUNT(*) c FROM OpenAQ "
    "GROUP BY country ORDER BY s DESC LIMIT 5",
    "SELECT parameter, MIN(value) lo, MAX(value) hi, STD(value) sd "
    "FROM OpenAQ WHERE country = 'C00' GROUP BY parameter",
    "SELECT COUNT(*) n FROM OpenAQ",
    "SELECT country, SUM(value) / COUNT(value) m FROM OpenAQ "
    "GROUP BY country ORDER BY country",
]


def _by_key(table, key_cols, value_cols):
    """Order-independent {key: values} view of an answer table."""
    keys = (
        list(
            zip(*(table.column(c).decode() for c in key_cols))
        )
        if key_cols
        else [()] * table.num_rows
    )
    return {
        k: tuple(
            float(table.column(c).data[i]) for c in value_cols
        )
        for i, k in enumerate(keys)
    }


@pytest.fixture()
def pair(tmp_path, openaq_small):
    """A 3-shard front and an unsharded twin built identically."""
    sharded = ShardedWarehouseService(
        tmp_path / "sh", {"OpenAQ": openaq_small}, shards=3,
        backend=_BACKEND, workers="inprocess",
    )
    sharded.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800, seed=4,
    )
    plain = WarehouseService(
        tmp_path / "un", {"OpenAQ": openaq_small}, backend=_BACKEND
    )
    plain.build(
        "s", "OpenAQ", group_by=["country"], value_columns=["value"],
        budget=800, seed=4,
    )
    yield sharded, plain
    sharded.close()


class TestEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_answers_match_unsharded(self, pair, sql):
        sharded, plain = pair
        a = sharded.query(sql)
        b = plain.query(sql)
        assert a.route.approximate == b.route.approximate
        key_cols = [
            c
            for c in a.table.column_names
            if a.table.column(c).categories is not None
        ]
        value_cols = [
            c for c in a.table.column_names if c not in key_cols
        ]
        got = _by_key(a.table, key_cols, value_cols)
        want = _by_key(b.table, key_cols, value_cols)
        assert set(got) == set(want)
        for key, values in want.items():
            assert got[key] == pytest.approx(values, rel=1e-9)

    def test_route_scores_match(self, pair):
        sharded, plain = pair
        a = sharded.query(SQL).route
        b = plain.query(SQL).route
        assert a.sample_name == b.sample_name == "s"
        assert a.predicted_cv == pytest.approx(
            b.predicted_cv, rel=1e-12
        )

    def test_exact_mode_matches(self, pair):
        sharded, plain = pair
        a = sharded.query(SQL, mode="exact")
        b = plain.query(SQL, mode="exact")
        assert not a.route.approximate
        got = _by_key(a.table, ["country"], ["a"])
        want = _by_key(b.table, ["country"], ["a"])
        assert got == want

    def test_contract_cvs_match(self, pair):
        sharded, plain = pair
        ca = sharded.query_with_contract(SQL).contract
        cb = plain.query_with_contract(SQL).contract
        assert ca.executed == cb.executed == "approximate"
        assert ca.predicted_cv == pytest.approx(
            cb.predicted_cv, rel=1e-12
        )
        # Same key -> cv mapping (group order may differ).
        assert dict(zip(ca.group_keys, ca.group_cvs)) == pytest.approx(
            dict(zip(cb.group_keys, cb.group_cvs)), rel=1e-12
        )


class TestServing:
    def test_non_decomposable_falls_back_exact(self, pair, openaq_small):
        sharded, _ = pair
        sql = (
            "SELECT country, MEDIAN(value) m FROM OpenAQ "
            "GROUP BY country"
        )
        result = sharded.query(sql)
        assert not result.route.approximate
        assert "does not decompose" in result.route.reason
        expected = execute_sql(sql, {"OpenAQ": openaq_small})
        assert _by_key(result.table, ["country"], ["m"]) == _by_key(
            expected, ["country"], ["m"]
        )

    def test_non_decomposable_approx_mode_rejected(self, pair):
        from repro.engine.sql.errors import QueryExecutionError

        sharded, _ = pair
        with pytest.raises(QueryExecutionError, match="decompose"):
            sharded.query(
                "SELECT country, MEDIAN(value) m FROM OpenAQ "
                "GROUP BY country",
                mode="approx",
            )

    def test_shard_failure_falls_back_exact(self, pair):
        sharded, _ = pair
        sharded.clients[1].server.service._session.drop_sample("s")
        result = sharded.query(SQL)
        assert not result.route.approximate
        assert "shard fan-out failed" in result.route.reason

    def test_answer_cache_hit(self, pair):
        sharded, _ = pair
        first = sharded.query(SQL)
        second = sharded.query(SQL)
        assert second is first

    def test_contract_reject_raises(self, pair):
        sharded, _ = pair
        with pytest.raises(AccuracyContractViolation):
            sharded.query_with_contract(
                SQL, max_cv=1e-9, on_violation="reject"
            )

    def test_contract_fallback_executes_exactly(self, pair):
        sharded, _ = pair
        answer = sharded.query_with_contract(SQL, max_cv=1e-9)
        assert answer.contract.fallback_exact
        assert answer.contract.executed == "exact"
        assert answer.contract.satisfied


class TestMaintenance:
    def test_refresh_matches_unsharded_accounting(
        self, pair, openaq_small
    ):
        sharded, plain = pair
        batch = openaq_small.take(np.arange(0, 2000))
        a = sharded.refresh("s", batch, seed=9)
        b = plain.refresh("s", batch, seed=9)
        assert a.action == b.action == "incremental"
        assert a.rows_ingested == b.rows_ingested == batch.num_rows
        assert a.source_rows == b.source_rows
        assert a.staleness == pytest.approx(b.staleness)
        # The post-refresh merged statistics stay exact: routing sees
        # the same numbers the unsharded maintainer computes.
        ra = sharded.query(SQL).route
        rb = plain.query(SQL).route
        assert ra.predicted_cv == pytest.approx(
            rb.predicted_cv, rel=1e-9
        )

    def test_refresh_bumps_epoch_and_versions(self, pair, openaq_small):
        sharded, _ = pair
        before = sharded.served_versions()["s"]
        epoch = sharded.epoch
        sharded.refresh(
            "s", openaq_small.take(np.arange(0, 300)), seed=1
        )
        assert sharded.served_versions()["s"] != before
        assert sharded.epoch > epoch

    def test_rebuild_escalates_centrally(self, tmp_path, openaq_small):
        # threshold 1.0 makes any drift trigger escalation; the front
        # owns the full table, so the rebuild happens centrally and the
        # rebuilt pieces land on every shard.
        with ShardedWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, shards=2,
            backend=_BACKEND, workers="inprocess",
            cv_degradation_threshold=1.0,
        ) as service:
            service.build(
                "s", "OpenAQ", group_by=["country"],
                value_columns=["value"], budget=600, seed=2,
            )
            report = service.refresh(
                "s", openaq_small.take(np.arange(0, 4000)), seed=3
            )
            assert report.action == "rebuild"
            lineage = service.served_lineages()["s"]
            assert lineage["action"] == "rebuild"
            assert not lineage["needs_rebuild"]
            assert service.query(SQL).route.approximate


class TestTopology:
    def test_single_shard_answers_like_unsharded(
        self, tmp_path, openaq_small
    ):
        with ShardedWarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, shards=1,
            backend=_BACKEND, workers="inprocess",
        ) as service:
            service.build(
                "s", "OpenAQ", group_by=["country"],
                value_columns=["value"], budget=800, seed=4,
            )
            plain = WarehouseService(
                tmp_path / "un", {"OpenAQ": openaq_small},
                backend=_BACKEND,
            )
            plain.build(
                "s", "OpenAQ", group_by=["country"],
                value_columns=["value"], budget=800, seed=4,
            )
            got = _by_key(service.query(SQL).table, ["country"], ["a"])
            want = _by_key(plain.query(SQL).table, ["country"], ["a"])
            assert set(got) == set(want)
            for key, values in want.items():
                assert got[key] == pytest.approx(values, rel=1e-9)

    def test_orphan_adopted_on_table_registration(
        self, pair, tmp_path, openaq_small
    ):
        sharded, _ = pair
        twin = ShardedWarehouseService(
            tmp_path / "sh", backend=_BACKEND, workers="inprocess"
        )
        try:
            assert twin.samples() == []
            twin.register_table("OpenAQ", openaq_small)
            assert "s" in twin.samples()
            assert twin.query(SQL).route.approximate
        finally:
            twin.close()

    def test_health_and_stats_expose_shards(self, pair):
        sharded, _ = pair
        health = sharded.health()
        assert health["shards"] == {"count": 3, "alive": 3}
        stats = sharded.stats()
        assert stats["store"]["shards"]["count"] == 3
        assert len(stats["shards"]) == 3
        assert {s["shard"] for s in stats["shards"]} == {0, 1, 2}
        assert stats["samples"]["s"]["rows"] > 0
        summary = sharded.sample_summaries()[0]
        assert summary["shards"] == 3
