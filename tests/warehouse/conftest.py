"""Warehouse test fixtures.

``REPRO_TEST_BACKEND`` selects the storage backend the store fixtures
write with (default ``npz``). CI runs the suite once per backend; the
parquet leg installs pyarrow so the real Arrow path is exercised (on
machines without pyarrow the backend's npz fallback is what gets
tested, which is itself a supported configuration).
"""

import os

import pytest


@pytest.fixture()
def store_backend():
    return os.environ.get("REPRO_TEST_BACKEND", "npz")
