"""SampleStore: serialization round-trips, versioning, atomic swaps."""

import json

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.sample import STRATUM_COLUMN, WEIGHT_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.engine.schema import DType
from repro.warehouse.store import (
    SampleStore,
    _decode_key,
    _encode_key,
)


@pytest.fixture()
def sample(openaq_small):
    return CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country", "parameter"))]
    ).sample(openaq_small, 900, seed=0)


@pytest.fixture()
def store(tmp_path, store_backend):
    return SampleStore(tmp_path / "wh", backend=store_backend)


class TestRoundTrip:
    def test_sample_round_trips_exactly(self, store, sample):
        store.put("s", sample, table_name="OpenAQ")
        stored = store.get("s")
        restored = stored.sample

        assert stored.table_name == "OpenAQ"
        assert restored.method == sample.method
        assert restored.budget == sample.budget
        assert restored.source_rows == sample.source_rows
        assert restored.num_rows == sample.num_rows
        assert restored.allocation.by == sample.allocation.by
        np.testing.assert_array_equal(
            restored.allocation.populations, sample.allocation.populations
        )
        np.testing.assert_array_equal(
            restored.allocation.sizes, sample.allocation.sizes
        )
        assert [tuple(k) for k in restored.allocation.keys] == [
            tuple(k) for k in sample.allocation.keys
        ]

    def test_dtypes_and_categories_preserved(self, store, sample):
        store.put("s", sample)
        restored = store.get("s").sample.table
        for name in sample.table.column_names:
            orig = sample.table.column(name)
            back = restored.column(name)
            assert back.dtype is orig.dtype
            assert back.data.dtype == orig.data.dtype
            if orig.dtype is DType.STRING:
                assert tuple(back.categories) == tuple(orig.categories)
                np.testing.assert_array_equal(back.decode(), orig.decode())
            else:
                np.testing.assert_array_equal(back.data, orig.data)

    def test_ht_weights_equal_after_reload(self, store, sample):
        store.put("s", sample)
        restored = store.get("s").sample
        np.testing.assert_array_equal(
            restored.table.column(WEIGHT_COLUMN).data,
            sample.table.column(WEIGHT_COLUMN).data,
        )
        np.testing.assert_array_equal(
            restored.table.column(STRATUM_COLUMN).data,
            sample.table.column(STRATUM_COLUMN).data,
        )
        # And the weights still are n_c / s_c for their stratum.
        alloc = restored.allocation
        gids = restored.table.column(STRATUM_COLUMN).data
        expected = (
            alloc.populations[gids] / np.maximum(alloc.sizes[gids], 1)
        )
        np.testing.assert_allclose(
            restored.table.column(WEIGHT_COLUMN).data, expected
        )

    def test_statistics_round_trip(self, store, sample):
        assert sample.allocation.stats is not None  # CVOPT keeps pass-1
        store.put("s", sample)
        restored = store.get("s").sample.allocation.stats
        orig = sample.allocation.stats
        assert set(restored.columns) == set(orig.columns)
        for column in orig.columns:
            np.testing.assert_allclose(
                restored.stats_for(column).total,
                orig.stats_for(column).total,
            )
            np.testing.assert_allclose(
                restored.stats_for(column).total_sq,
                orig.stats_for(column).total_sq,
            )

    def test_reloaded_sample_answers_queries(self, store, sample):
        store.put("s", sample)
        out = store.get("s").sample.answer(
            "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country",
            "OpenAQ",
        )
        assert out.num_rows > 0


class TestVersioning:
    def test_versions_accumulate(self, store, sample):
        v1 = store.put("s", sample)
        v2 = store.put("s", sample)
        assert [v1, v2] == ["v000001", "v000002"]
        assert store.versions("s") == [v1, v2]
        assert store.current_version("s") == v2
        assert store.get("s").version == v2
        assert store.get("s", v1).version == v1

    def test_current_pointer_is_atomic_file(self, store, sample, tmp_path):
        store.put("s", sample)
        pointer = store.root / "s" / "CURRENT"
        assert pointer.read_text().strip() == "v000001"
        # No staging debris left behind.
        leftovers = [
            p for p in (store.root / "s").iterdir()
            if p.name.startswith(".staging")
        ]
        assert leftovers == []

    def test_prune_keeps_newest_and_current(self, store, sample):
        for _ in range(4):
            store.put("s", sample)
        removed = store.prune("s", keep=2)
        assert removed == ["v000001", "v000002"]
        assert store.versions("s") == ["v000003", "v000004"]
        assert store.current_version("s") == "v000004"

    def test_delete(self, store, sample):
        store.put("s", sample)
        store.delete("s")
        assert "s" not in store
        with pytest.raises(KeyError):
            store.get("s")

    def test_names_and_contains(self, store, sample):
        assert store.names() == []
        store.put("a", sample)
        store.put("b", sample)
        assert store.names() == ["a", "b"]
        assert "a" in store and "nope" not in store

    def test_invalid_names_rejected(self, store, sample):
        for bad in ("", "a/b", ".hidden", " padded "):
            with pytest.raises(ValueError):
                store.put(bad, sample)

    def test_stats_survives_concurrent_pruning(self, store, sample):
        import threading

        for _ in range(3):
            store.put("s", sample)
        stop = threading.Event()
        errors: list = []

        def churn():
            i = 0
            while not stop.is_set():
                store.put("s", sample)
                store.prune("s", keep=1)
                i += 1
                if i >= 15:
                    return

        t = threading.Thread(target=churn)
        t.start()
        try:
            for _ in range(200):
                for entry in store.stats():
                    assert entry.bytes_on_disk >= 0
        except FileNotFoundError as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()
            t.join(timeout=30)
        assert errors == []

    def test_stats_accounting(self, store, sample):
        store.put("s", sample, lineage={"staleness": 0.5})
        (entry,) = store.stats()
        assert entry.name == "s"
        assert entry.rows == sample.num_rows
        assert entry.strata == sample.allocation.num_strata
        assert entry.bytes_on_disk > 0
        assert entry.lineage["staleness"] == 0.5


def _corrupt_version(store, name, version):
    """Simulate a crash mid-write: truncate the rows blob to half its
    bytes (and, for the memory backend, evict the resident blob the
    marker points at — its file is only accounting)."""
    from repro.warehouse.backends import MemoryBackend

    import os

    stored = store.get(name, version)
    rows_path = store.root / name / version / stored.storage["rows_file"]
    data = rows_path.read_bytes()
    rows_path.write_bytes(data[: len(data) // 2])
    MemoryBackend._blobs.pop(os.path.abspath(str(rows_path.parent)), None)


class TestCorruptVersionRecovery:
    """A partially-written version directory (crash mid-put) must be
    skipped by the default ``get``, not raise."""

    def test_get_skips_truncated_current_version(self, store, sample):
        v1 = store.put("s", sample)
        v2 = store.put("s", sample)
        _corrupt_version(store, "s", v2)
        stored = store.get("s")
        assert stored.version == v1
        assert stored.sample.num_rows == sample.num_rows

    def test_get_skips_version_with_missing_meta(self, store, sample):
        v1 = store.put("s", sample)
        v2 = store.put("s", sample)
        (store.root / "s" / v2 / "meta.json").unlink()
        assert store.get("s").version == v1

    def test_get_skips_version_with_missing_rows(self, store, sample):
        import os

        from repro.warehouse.backends import MemoryBackend

        v1 = store.put("s", sample)
        v2 = store.put("s", sample)
        stored = store.get("s", v2)
        rows_path = store.root / "s" / v2 / stored.storage["rows_file"]
        rows_path.unlink()
        MemoryBackend._blobs.pop(
            os.path.abspath(str(rows_path.parent)), None
        )
        assert store.get("s").version == v1

    def test_all_versions_corrupt_raises_key_error(self, store, sample):
        v1 = store.put("s", sample)
        _corrupt_version(store, "s", v1)
        with pytest.raises(KeyError, match="no readable version"):
            store.get("s")

    def test_explicit_version_still_surfaces_corruption(self, store, sample):
        store.put("s", sample)
        v2 = store.put("s", sample)
        _corrupt_version(store, "s", v2)
        with pytest.raises(Exception):
            store.get("s", v2)

    def test_corrupt_current_does_not_break_stats(self, store, sample):
        v1 = store.put("s", sample)
        _corrupt_version(store, "s", v1)
        (entry,) = store.stats()
        assert entry.name == "s"
        assert entry.bytes_on_disk >= 0

    def test_maintainer_refresh_survives_torn_current(
        self, store, sample, openaq_small
    ):
        """The maintenance path reads through the same skip logic: a
        torn current version falls back to the previous one."""
        from repro.warehouse.maintenance import SampleMaintainer

        maintainer = SampleMaintainer(store)
        maintainer.build(
            "m", openaq_small, group_by=["country", "parameter"],
            value_columns=["value"], budget=600,
        )
        v2 = store.put("m", store.get("m").sample)
        _corrupt_version(store, "m", v2)
        batch = openaq_small.take(np.arange(200))
        report = maintainer.refresh("m", batch)
        assert report.rows_ingested == 200
        assert store.get("m").version == report.version


class TestKeyEncoding:
    def test_mixed_types_round_trip(self):
        key = ("US", 3, 2.5, True, None)
        assert _decode_key(_encode_key(key)) == key

    def test_numpy_scalars_normalized(self):
        key = (np.str_("US"), np.int64(3), np.float64(2.5), np.bool_(False))
        decoded = _decode_key(_encode_key(key))
        assert decoded == ("US", 3, 2.5, False)
        assert [type(v) for v in decoded] == [str, int, float, bool]

    def test_json_serializable(self, store, sample):
        store.put("s", sample)
        meta_path = store.root / "s" / "v000001" / "meta.json"
        meta = json.loads(meta_path.read_text())
        assert meta["format"] == 4
        assert meta["storage"]["format"] in ("npz", "parquet", "memory", "mmap")
        assert set(meta["columns"]) == {"tracked", "primary"}
        assert len(meta["allocation"]["keys"]) == sample.allocation.num_strata
