"""Router regressions for time-windowed samples.

``WHERE ts >= ...`` / ``BETWEEN`` predicates route to the covering
window set (a single member or the materialized ``@slide`` merge),
half-open boundary timestamps land in exactly one window, predicates
the windows cannot cover fall back to exact, and retention violations
surface through the contract machinery.

Budgets here exceed the per-window row counts, so every windowed
member carries *all* of its window's rows at weight 1 and an
approximate answer must equal the exact one — any routing slip that
includes or drops a window shows up as a hard value mismatch.
"""

import os

import numpy as np
import pytest

from repro.engine.schema import DType
from repro.engine.table import Column, Table
from repro.warehouse import WarehouseService
from repro.warehouse.contracts import AccuracyContractViolation
from repro.warehouse.windows import SLIDE_SUFFIX

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

HOUR = 3600
N_HOURS = 6
ROWS_PER_HOUR = 24  # well under the budget: windows sample everything


def timestamped_table() -> Table:
    """Six hours of deterministic rows, 24 per hour, two groups.

    One row sits exactly on every window boundary (ts = k * HOUR), so
    half-open assignment is exercised by construction.
    """
    ts, g, v = [], [], []
    for hour in range(N_HOURS):
        for i in range(ROWS_PER_HOUR):
            ts.append(hour * HOUR + i * (HOUR // ROWS_PER_HOUR))
            g.append("A" if i % 3 else "B")
            v.append(float(hour * 100 + i))
    return Table.from_pydict({"g": g, "ts": ts, "v": v}, name="T")


def answer_map(table):
    groups = table.column("g").decode()
    values = table.column(table.column_names[-1]).decode()
    return dict(zip(groups, values))


@pytest.fixture()
def service(tmp_path):
    svc = WarehouseService(
        tmp_path / "wh", {"T": timestamped_table()}, backend=_BACKEND
    )
    svc.build_windowed(
        "s", "T", group_by=["g"], value_columns=["v"], budget=500,
        ts_column="ts", window=HOUR,
    )
    return svc


def sql(where: str) -> str:
    return f"SELECT g, SUM(v) s FROM T WHERE {where} GROUP BY g"


class TestRouting:
    def test_ge_predicate_routes_to_slide(self, service):
        result = service.query(sql(f"ts >= {HOUR}"))
        assert result.route.sample_name == "s" + SLIDE_SUFFIX
        assert result.route.window_bounds == (HOUR, N_HOURS * HOUR)

    def test_between_routes_to_window_set(self, service):
        result = service.query(
            sql(f"ts BETWEEN {HOUR} AND {3 * HOUR - 1}")
        )
        assert result.route.sample_name == "s" + SLIDE_SUFFIX
        assert result.route.window_bounds == (HOUR, 3 * HOUR)

    def test_single_window_routes_to_member(self, service):
        result = service.query(
            sql(f"ts >= {HOUR} AND ts < {2 * HOUR}")
        )
        assert result.route.sample_name == f"s@w{HOUR}"
        assert result.route.window_bounds == (HOUR, 2 * HOUR)

    def test_stale_wider_slide_never_outranks_tighter_member(
        self, service
    ):
        """Routing is independent of query order.

        A wide slide query registers ``s@slide`` with more rows (hence
        a lower predicted CV) than any single member; a later
        single-window query must still route to the exactly-matching
        member, not to the stale wider slide that happens to cover it.
        """
        wide = service.query(sql(f"ts >= {HOUR} AND ts < {5 * HOUR}"))
        assert wide.route.sample_name == "s" + SLIDE_SUFFIX
        assert wide.route.window_bounds == (HOUR, 5 * HOUR)
        narrow = service.query(
            sql(f"ts >= {HOUR} AND ts < {2 * HOUR}")
        )
        assert narrow.route.sample_name == f"s@w{HOUR}"
        assert narrow.route.window_bounds == (HOUR, 2 * HOUR)

    def test_windowed_answers_match_exact(self, service):
        """Saturated budgets make any mis-covered window a value bug."""
        for where in (
            f"ts >= {HOUR}",
            f"ts >= {HOUR} AND ts < {4 * HOUR}",
            f"ts BETWEEN 0 AND {2 * HOUR - 1}",
        ):
            approx = service.query(sql(where))
            exact = service.query(sql(where), mode="exact")
            assert approx.route.approximate
            assert answer_map(approx.table) == pytest.approx(
                answer_map(exact.table)
            )

    def test_boundary_row_lands_in_exactly_one_window(self, service):
        """ts = 2 * HOUR belongs to [2h, 3h), never to [1h, 2h)."""
        below = service.query(sql(f"ts >= {HOUR} AND ts < {2 * HOUR}"))
        above = service.query(
            sql(f"ts >= {2 * HOUR} AND ts < {3 * HOUR}")
        )
        table = timestamped_table()
        ts = np.asarray(table.column("ts").decode())
        v = np.asarray(table.column("v").decode())
        want_below = v[(ts >= HOUR) & (ts < 2 * HOUR)].sum()
        want_above = v[(ts >= 2 * HOUR) & (ts < 3 * HOUR)].sum()
        assert sum(answer_map(below.table).values()) == pytest.approx(
            want_below
        )
        assert sum(answer_map(above.table).values()) == pytest.approx(
            want_above
        )

    def test_range_past_horizon_falls_back_to_exact(self, service):
        result = service.query(
            sql(f"ts >= 0 AND ts < {(N_HOURS + 2) * HOUR}")
        )
        assert not result.route.approximate

    def test_no_time_predicate_falls_back_to_exact(self, service):
        result = service.query("SELECT g, SUM(v) s FROM T GROUP BY g")
        assert not result.route.approximate

    def test_unbounded_range_reaches_the_horizon(self, service):
        """An open-ended ``ts >=`` is only sound from a window set whose
        coverage reaches the newest ingested window."""
        result = service.query(sql(f"ts >= {(N_HOURS - 1) * HOUR}"))
        assert result.route.approximate
        assert result.route.window_bounds[1] == N_HOURS * HOUR

    def test_refresh_rolls_the_horizon_forward(self, service):
        batch = Table.from_pydict(
            {
                "g": ["A", "B"],
                "ts": [N_HOURS * HOUR + 1, N_HOURS * HOUR + 2],
                "v": [1.0, 2.0],
            }
        )
        report = service.refresh("s", batch)
        assert report.action == "windowed"
        assert report.opened == [N_HOURS * HOUR]
        result = service.query(sql(f"ts >= {HOUR}"))
        assert result.route.window_bounds[1] == (N_HOURS + 1) * HOUR


class TestContracts:
    def test_contract_carries_window_bounds(self, service):
        answer = service.query_with_contract(sql(f"ts >= {HOUR}"))
        contract = answer.contract
        assert contract.executed == "approximate"
        assert contract.window_bounds == (HOUR, N_HOURS * HOUR)
        assert contract.to_dict()["window_bounds"] == [
            HOUR, N_HOURS * HOUR,
        ]

    def test_exact_contract_has_no_window_bounds(self, service):
        answer = service.query_with_contract(
            sql(f"ts >= {HOUR}"), mode="exact"
        )
        assert answer.contract.window_bounds is None

    def test_below_retention_rejected(self, tmp_path):
        svc = WarehouseService(
            tmp_path / "wh", {"T": timestamped_table()}, backend=_BACKEND
        )
        svc.build_windowed(
            "s", "T", group_by=["g"], value_columns=["v"], budget=500,
            ts_column="ts", window=HOUR, retention=3,
        )
        # Only the newest 3 windows remain.
        assert sorted(svc.samples()) == [
            f"s@w{h * HOUR}" for h in range(3, N_HOURS)
        ]
        with pytest.raises(AccuracyContractViolation) as err:
            svc.query_with_contract(
                sql(f"ts >= {HOUR}"), on_violation="reject"
            )
        assert "retention" in str(err.value)
        # Default policy: fall back to the (complete) base table.
        answer = svc.query_with_contract(sql(f"ts >= {HOUR}"))
        assert answer.contract.executed == "exact"
        exact = svc.query(sql(f"ts >= {HOUR}"), mode="exact")
        assert answer_map(answer.result.table) == pytest.approx(
            answer_map(exact.table)
        )


class TestStoreMeta:
    def test_windowed_member_round_trips_window_block(self, service):
        stored = service.store.get(f"s@w{HOUR}")
        assert stored.window == {
            "column": "ts",
            "width": HOUR,
            "start": HOUR,
            "end": 2 * HOUR,
        }

    def test_unwindowed_member_has_no_window_block(
        self, tmp_path, openaq_small
    ):
        svc = WarehouseService(
            tmp_path / "wh", {"OpenAQ": openaq_small}, backend=_BACKEND
        )
        svc.build(
            "p", "OpenAQ", group_by=["country"], value_columns=["value"],
            budget=400,
        )
        assert svc.store.get("p").window is None

    def test_warm_start_readopts_windowed_family(self, service, tmp_path):
        twin = WarehouseService(
            tmp_path / "wh", {"T": timestamped_table()}, backend=_BACKEND
        )
        result = twin.query(sql(f"ts >= {HOUR}"))
        assert result.route.sample_name == "s" + SLIDE_SUFFIX
        assert result.route.window_bounds == (HOUR, N_HOURS * HOUR)


class TestMaintenanceOnlyProcess:
    def test_refresh_without_base_table_rolls_forward(
        self, service, tmp_path
    ):
        """A maintenance-only process (no base table registered — the
        CLI ``warehouse refresh`` shape) must still re-adopt the family
        from the store and roll its windows forward."""
        maintenance = WarehouseService(
            tmp_path / "wh", {}, backend=_BACKEND
        )
        batch = Table.from_pydict(
            {
                "g": ["A", "B"],
                "ts": [N_HOURS * HOUR + 1, N_HOURS * HOUR + 2],
                "v": [1.0, 2.0],
            }
        )
        report = maintenance.refresh("s", batch)
        assert report.action == "windowed"
        assert report.opened == [N_HOURS * HOUR]
        # A serving process (table registered) sees the rolled horizon.
        twin = WarehouseService(
            tmp_path / "wh", {"T": timestamped_table()}, backend=_BACKEND
        )
        result = twin.query(sql(f"ts >= {HOUR}"))
        assert result.route.window_bounds == (HOUR, (N_HOURS + 1) * HOUR)

    def test_timestamp_dtype_survives_refresh_and_slides(self, tmp_path):
        """Streaming refresh rebuilds the reservoir from python values;
        the member's logical schema (TIMESTAMP ts) must round-trip, or
        the next slide merge fails concatenating member tables."""
        base = timestamped_table()
        base = base.with_column(
            "ts",
            Column.from_values(
                base.column("ts").decode(), DType.TIMESTAMP
            ),
        )
        svc = WarehouseService(
            tmp_path / "wh", {"T": base}, backend=_BACKEND
        )
        svc.build_windowed(
            "s", "T", group_by=["g"], value_columns=["v"], budget=500,
            ts_column="ts", window=HOUR,
        )
        newest = (N_HOURS - 1) * HOUR
        batch = Table.from_pydict({"g": ["A"], "v": [9.0]}).with_column(
            "ts", Column.from_values([newest + 5], DType.TIMESTAMP)
        )
        report = svc.refresh("s", batch)
        assert report.refreshed == [newest]
        stored = svc.store.get(f"s@w{newest}")
        assert stored.sample.table.column("ts").dtype is DType.TIMESTAMP
        result = svc.query(sql(f"ts >= {HOUR}"))
        assert result.route.sample_name == "s" + SLIDE_SUFFIX
        assert result.route.window_bounds == (HOUR, N_HOURS * HOUR)
