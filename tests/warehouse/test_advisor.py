"""Workload-driven advisor: candidate pricing, greedy cover, logs."""

import os

import pytest

from repro.warehouse import SampleMaintainer, SampleStore, advise
from repro.workload import Workload

Q_COUNTRY = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"
Q_FINE = (
    "SELECT country, parameter, AVG(value) a FROM OpenAQ "
    "GROUP BY country, parameter"
)
Q_PARAM = "SELECT parameter, SUM(value) s FROM OpenAQ GROUP BY parameter"

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")


@pytest.fixture()
def workload():
    return (
        Workload()
        .add(Q_COUNTRY, repeats=20, name="by_country")
        .add(Q_FINE, repeats=5, name="fine")
        .add(Q_PARAM, repeats=10, name="by_param")
    )


class TestAdvise:
    def test_fine_stratification_subsumes_coarse(
        self, workload, openaq_small
    ):
        plan = advise(
            workload, openaq_small, storage_budget=30_000, target_cv=0.2
        )
        # One sample on (country, parameter) answers all three queries.
        assert len(plan.recommendations) == 1
        rec = plan.recommendations[0]
        assert rec.candidate.attrs == ("country", "parameter")
        assert plan.coverage == pytest.approx(1.0)
        assert plan.uncovered_queries == []

    def test_budget_respected(self, workload, openaq_small):
        plan = advise(
            workload, openaq_small, storage_budget=30_000, target_cv=0.2
        )
        assert plan.rows_used <= plan.storage_budget
        for rec in plan.recommendations:
            assert rec.candidate.budget <= plan.storage_budget

    def test_tiny_budget_leaves_queries_uncovered(
        self, workload, openaq_small
    ):
        plan = advise(
            workload, openaq_small, storage_budget=10, target_cv=0.05
        )
        assert plan.rows_used <= 10
        assert plan.uncovered_queries  # nothing affordable covers all

    def test_tighter_cv_costs_more_rows(self, workload, openaq_small):
        loose = advise(
            workload, openaq_small, storage_budget=10**9, target_cv=0.3
        )
        tight = advise(
            workload, openaq_small, storage_budget=10**9, target_cv=0.05
        )
        assert tight.rows_used > loose.rows_used

    def test_empty_workload(self, openaq_small):
        plan = advise(Workload(), openaq_small, storage_budget=1000)
        assert plan.recommendations == []
        assert plan.coverage == 1.0

    def test_count_star_workload_materializes(
        self, openaq_small, tmp_path
    ):
        # COUNT(*) synthesizes a derived constant column; the advisor
        # must not hand that synthetic name to the maintainer.
        workload = (
            Workload()
            .add(
                "SELECT country, COUNT(*) c, AVG(value) a FROM OpenAQ "
                "GROUP BY country",
                repeats=5,
            )
        )
        plan = advise(
            workload, openaq_small, storage_budget=30_000, target_cv=0.25
        )
        (rec,) = plan.recommendations
        assert rec.candidate.agg_columns == ("value",)
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        built = plan.materialize(SampleMaintainer(store), openaq_small)
        assert built and store.get(built[0]).sample.num_rows > 0

    def test_materialize_builds_into_store(
        self, workload, openaq_small, tmp_path
    ):
        plan = advise(
            workload, openaq_small, storage_budget=30_000, target_cv=0.25
        )
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        built = plan.materialize(
            SampleMaintainer(store), openaq_small, table_name="OpenAQ"
        )
        assert built == [r.name for r in plan.recommendations]
        for name in built:
            stored = store.get(name)
            assert stored.table_name == "OpenAQ"
            assert stored.sample.num_rows > 0


class TestWorkloadLog:
    def test_plain_sql_lines_aggregate(self):
        lines = [Q_COUNTRY, Q_COUNTRY + ";", "-- a comment", "", Q_PARAM]
        workload = Workload.from_log(lines)
        by_sql = {q.sql: q.repeats for q in workload.queries}
        assert by_sql[Q_COUNTRY] == 2
        assert by_sql[Q_PARAM] == 1

    def test_json_lines(self):
        lines = [
            '{"sql": "%s", "repeats": 7, "name": "c"}' % Q_COUNTRY,
        ]
        workload = Workload.from_log(lines)
        assert workload.queries[0].repeats == 7
        assert workload.queries[0].name == "c"

    def test_from_file(self, tmp_path):
        log = tmp_path / "queries.log"
        log.write_text(Q_COUNTRY + "\n" + Q_COUNTRY + "\n")
        workload = Workload.from_log(log)
        assert workload.total_queries == 2

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Workload.from_log(str(tmp_path / "typo.log"))

    def test_single_query_string_is_not_a_path(self):
        workload = Workload.from_log(Q_COUNTRY)
        assert workload.queries[0].sql == Q_COUNTRY
