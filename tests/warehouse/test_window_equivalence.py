"""Property tests of the tumbling-window layer's central promise.

Windows partition the base rows, so the per-(stratum, column)
``(count, total, total_sq)`` moments of any set of covered windows
**sum** to the moments a single sample built on only the in-window rows
would carry — the sliding-window merge is exact, not approximate
(see ``repro/warehouse/windows.py``). The suite drives that invariant
with hypothesis-generated timestamped streams:

- merged 1..8-window slides are moment-exact (and therefore mean- and
  CV-exact per group) versus a from-scratch sample on the in-window
  rows,
- the invariant survives per-window resume/finalize round-trips (the
  store persists and reloads between refreshes),
- decay factors never let an older window outweigh a newer one at
  equal mass, and uniform moment scaling leaves per-window means and
  CVs untouched,
- tumbling windows are half-open: every row lands in exactly one
  window.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.core.streaming import StreamingCVOptSampler
from repro.engine.table import Table
from repro.warehouse.windows import (
    merge_window_allocations,
    merge_window_samples,
    partition_by_window,
    window_decay_factors,
    window_start,
)

WIDTH = 100  # seconds per tumbling window; streams span up to 8 windows
COLUMNS = ("a", "b")
SPEC = GroupByQuerySpec(group_by=("g",), aggregates=COLUMNS)

# Positive value columns: CVOPT's CV objective (paper Section 1) rejects
# a column whose group means are all zero.
rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["g1", "g2", "g3"]),
        st.integers(0, 8 * WIDTH - 1),  # event timestamp
        st.floats(0.1, 1000.0),  # a
        st.floats(1.0, 500.0),  # b
    ),
    min_size=8,
    max_size=160,
)


def make_table(rows):
    return Table.from_pydict(
        {
            "g": [r[0] for r in rows],
            "ts": [r[1] for r in rows],
            "a": [r[2] for r in rows],
            "b": [r[3] for r in rows],
        }
    )


def build_members(table, budget, seed=0):
    """One independent CVOPT sample per tumbling window, keyed by start
    (exactly what ``SampleMaintainer.build_windowed`` persists)."""
    return {
        start: CVOptSampler([SPEC]).sample(part, budget, seed=seed)
        for start, part in partition_by_window(table, "ts", WIDTH).items()
    }


def group_moments(stats, column):
    """``{group key: (count, total, total_sq)}`` for one column."""
    cs = stats.stats_for(column)
    return {
        tuple(k): (float(c), float(t), float(q))
        for k, c, t, q in zip(stats.keys, cs.count, cs.total, cs.total_sq)
    }


def mean_and_cv(moments):
    """Per-group mean and population CV derived purely from moments."""
    count, total, total_sq = moments
    mean = total / count
    var = max(total_sq / count - mean * mean, 0.0)
    return mean, float(np.sqrt(var)) / mean


def assert_moment_equal(merged_stats, scratch_stats):
    assert set(map(tuple, merged_stats.keys)) == set(
        map(tuple, scratch_stats.keys)
    )
    for column in COLUMNS:
        merged = group_moments(merged_stats, column)
        scratch = group_moments(scratch_stats, column)
        for key, m in merged.items():
            s = scratch[key]
            # Counts are sums of integers: exact. Totals only differ by
            # float summation order.
            assert m[0] == s[0]
            np.testing.assert_allclose(m[1:], s[1:], rtol=1e-9, atol=1e-7)
            # atol absorbs catastrophic cancellation on zero-variance
            # groups, where sqrt(var) amplifies ~1e-16 moment noise.
            np.testing.assert_allclose(
                mean_and_cv(m), mean_and_cv(s), rtol=1e-9, atol=1e-6
            )


class TestWindowEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=rows_strategy,
        first=st.integers(0, 7),
        span=st.integers(1, 8),
        budget=st.integers(2, 30),
    )
    def test_merged_slide_is_moment_exact(self, rows, first, span, budget):
        """Any 1..8-window slide == a from-scratch sample on only the
        in-window rows, moment for moment (hence mean/CV for mean/CV)."""
        members = build_members(make_table(rows), budget)
        lo, hi = first * WIDTH, (first + span) * WIDTH
        covered = [s for s in members if lo <= s < hi]
        in_rows = [r for r in rows if lo <= window_start(r[1], WIDTH) < hi]
        if not covered:
            assert not in_rows
            return
        merged = merge_window_samples([members[s] for s in covered])
        scratch = CVOptSampler([SPEC]).sample(
            make_table(in_rows), budget, seed=0
        )
        assert merged.source_rows == len(in_rows)
        assert int(merged.allocation.populations.sum()) == len(in_rows)
        assert_moment_equal(merged.allocation.stats, scratch.allocation.stats)

    @settings(max_examples=30, deadline=None)
    @given(
        base_rows=rows_strategy,
        batch_rows=rows_strategy,
        budget=st.integers(2, 30),
    )
    def test_resume_round_trips_stay_exact(
        self, base_rows, batch_rows, budget
    ):
        """Refresh each open window via resume/finalize (the store
        round-trip the warehouse does), then merge everything: still
        moment-exact versus one sample over all rows."""
        members = build_members(make_table(base_rows), budget)
        for start, part in partition_by_window(
            make_table(batch_rows), "ts", WIDTH
        ).items():
            if start in members:
                sampler = StreamingCVOptSampler.resume(
                    members[start], COLUMNS, seed=start + 1
                )
                sampler.observe_table(part)
                members[start] = sampler.finalize()
            else:  # a window only the batch opened
                members[start] = CVOptSampler([SPEC]).sample(
                    part, budget, seed=0
                )
        merged = merge_window_samples(
            [members[s] for s in sorted(members)]
        )
        scratch = CVOptSampler([SPEC]).sample(
            make_table(base_rows + batch_rows), budget, seed=0
        )
        assert merged.source_rows == len(base_rows) + len(batch_rows)
        assert_moment_equal(merged.allocation.stats, scratch.allocation.stats)

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy)
    def test_every_row_lands_in_exactly_one_window(self, rows):
        """Half-open partition: window counts sum to the total and each
        part holds exactly the rows whose floored start matches."""
        table = make_table(rows)
        parts = partition_by_window(table, "ts", WIDTH)
        assert sum(p.num_rows for p in parts.values()) == table.num_rows
        for start, part in parts.items():
            ts = part.column("ts").values_numeric()
            assert ((ts >= start) & (ts < start + WIDTH)).all()
        from collections import Counter

        expected = Counter(window_start(r[1], WIDTH) for r in rows)
        assert {s: p.num_rows for s, p in parts.items()} == dict(expected)


class TestDecay:
    @settings(max_examples=40, deadline=None)
    @given(
        n_windows=st.integers(2, 8),
        decay=st.floats(0.05, 1.0),
        mass=st.integers(2, 20),
    )
    def test_older_windows_never_outweigh_newer_at_equal_mass(
        self, n_windows, decay, mass
    ):
        """Newest window's factor is exactly 1.0 and factors fall
        monotonically going back in time, so at equal raw mass an older
        window's decayed contribution can never exceed a newer one's."""
        rows = [
            ("g1", w * WIDTH + i, 1.0 + i, 1.0 + w)
            for w in range(n_windows)
            for i in range(mass)
        ]
        members = build_members(make_table(rows), budget=mass)
        starts = sorted(members)
        factors = window_decay_factors(starts, WIDTH, decay)
        assert factors[starts[-1]] == 1.0
        ordered = [factors[s] for s in starts]
        assert all(a <= b or np.isclose(a, b) for a, b in zip(ordered, ordered[1:]))
        merged = merge_window_allocations(
            [members[s].allocation for s in starts],
            factors=[factors[s] for s in starts],
        )
        # Decayed counts: sum over windows of factor * mass, exactly.
        total_count = group_moments(merged.stats, "a")[("g1",)][0]
        np.testing.assert_allclose(
            total_count, sum(f * mass for f in ordered), rtol=1e-12
        )
        # Raw integer populations are never decayed.
        assert int(merged.populations.sum()) == n_windows * mass

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy, factor=st.floats(0.05, 1.0))
    def test_uniform_scaling_preserves_mean_and_cv(self, rows, factor):
        """Scaling (count, total, total_sq) uniformly shifts a window's
        *mass*, not its shape: per-group mean and CV are unchanged."""
        members = build_members(make_table(rows), budget=16)
        start = sorted(members)[0]
        alloc = members[start].allocation
        scaled = merge_window_allocations([alloc], factors=[factor])
        for column in COLUMNS:
            raw = group_moments(alloc.stats, column)
            dec = group_moments(scaled.stats, column)
            for key in raw:
                np.testing.assert_allclose(
                    mean_and_cv(dec[key]),
                    mean_and_cv(raw[key]),
                    rtol=1e-9,
                    atol=1e-6,  # zero-variance cancellation noise
                )
