"""Stratum-hash sharding: deterministic placement, exact split/merge,
batch routing, and the sharded store layout."""

import json
import os

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.sample import STRATUM_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.warehouse import (
    SHARD_SCHEME,
    ShardedSampleStore,
    merge_shard_allocations,
    partition_table,
    shard_of_key,
    split_sample,
)

# CI legs re-run this suite per storage backend (see conftest.py)
_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")


@pytest.fixture()
def sample(openaq_small):
    spec = GroupByQuerySpec.single(
        "value", by=("country", "parameter")
    )
    return CVOptSampler([spec]).sample(openaq_small, 900, seed=11)


class TestShardOfKey:
    def test_deterministic_across_calls(self):
        key = ("DE", "pm25")
        assert shard_of_key(key, 4) == shard_of_key(key, 4)

    def test_pinned_values(self):
        # Placement is part of the on-disk format (scheme
        # stratum-hash-v1): these pins fail if the hash or the key
        # encoding ever changes without a scheme bump.
        assert shard_of_key(("DE", "pm25"), 4) == 2
        assert shard_of_key(("US",), 4) == 0
        assert shard_of_key((7,), 4) == 1
        assert shard_of_key((None,), 4) == 0

    def test_single_shard_short_circuits(self):
        assert shard_of_key(("anything",), 1) == 0

    def test_type_tagging_distinguishes_int_and_string(self):
        # "1" and 1 are different strata; the tagged-JSON encoding must
        # keep them apart even when their repr collides.
        assert shard_of_key(("1",), 1000) != shard_of_key((1,), 1000)

    def test_spread_over_shards(self):
        hits = {
            shard_of_key((f"k{i}",), 8) for i in range(200)
        }
        assert hits == set(range(8))


class TestSplitSample:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_union_is_exact(self, sample, num_shards):
        pieces = split_sample(sample, num_shards)
        assert len(pieces) == num_shards
        assert sum(p.table.num_rows for p in pieces) == sample.num_rows
        assert (
            sum(int(p.allocation.populations.sum()) for p in pieces)
            == sample.source_rows
        )
        merged = merge_shard_allocations([p.allocation for p in pieces])
        alloc = sample.allocation
        order = sorted(
            range(alloc.num_strata), key=lambda i: tuple(alloc.keys[i])
        )
        assert merged.keys == [tuple(alloc.keys[i]) for i in order]
        np.testing.assert_array_equal(
            merged.populations, alloc.populations[order]
        )
        np.testing.assert_array_equal(merged.sizes, alloc.sizes[order])
        for name, cs in alloc.stats.columns.items():
            np.testing.assert_allclose(
                merged.stats.columns[name].total,
                np.asarray(cs.total)[order],
            )
            np.testing.assert_allclose(
                merged.stats.columns[name].total_sq,
                np.asarray(cs.total_sq)[order],
            )

    def test_strata_stay_whole(self, sample):
        pieces = split_sample(sample, 3)
        for shard, piece in enumerate(pieces):
            for key in piece.allocation.keys:
                assert shard_of_key(key, 3) == shard
            # Stratum ids are re-densified: every row's id addresses
            # this piece's allocation.
            if piece.table.num_rows:
                gids = piece.table.column(STRATUM_COLUMN).data
                assert gids.max() < piece.allocation.num_strata

    def test_weights_preserved(self, sample):
        from repro.core.sample import WEIGHT_COLUMN

        pieces = split_sample(sample, 3)
        total = sum(
            float(p.table.column(WEIGHT_COLUMN).data.sum())
            for p in pieces
            if p.table.num_rows
        )
        expected = float(
            sample.table.column(WEIGHT_COLUMN).data.sum()
        )
        assert total == pytest.approx(expected, rel=1e-12)

    def test_empty_shard_is_valid(self, simple_table):
        sample = CVOptSampler(
            [GroupByQuerySpec.single("x", by=("g",))]
        ).sample(simple_table, 4, seed=0)
        # More shards than strata: some pieces must be empty yet whole.
        pieces = split_sample(sample, 7)
        empties = [p for p in pieces if p.allocation.num_strata == 0]
        assert empties
        for piece in empties:
            assert piece.table.num_rows == 0
            assert piece.source_rows == 0


class TestMergeShardAllocations:
    def test_rejects_mismatched_stratification(self, sample):
        a = split_sample(sample, 2)[0].allocation
        with pytest.raises(ValueError, match="stratify differently"):
            merge_shard_allocations([a, _rebrand(a)])

    def test_merge_is_shard_count_invariant(self, sample):
        merged2 = merge_shard_allocations(
            [p.allocation for p in split_sample(sample, 2)]
        )
        merged5 = merge_shard_allocations(
            [p.allocation for p in split_sample(sample, 5)]
        )
        assert merged2.keys == merged5.keys
        np.testing.assert_array_equal(
            merged2.populations, merged5.populations
        )
        np.testing.assert_array_equal(merged2.sizes, merged5.sizes)


def _rebrand(alloc):
    from repro.core.sample import Allocation

    return Allocation(
        by=("country",),
        keys=[k[:1] for k in alloc.keys],
        populations=alloc.populations,
        sizes=alloc.sizes,
        scores=alloc.scores,
        stats=None,
    )


class TestPartitionTable:
    def test_rows_follow_their_stratum(self, openaq_small):
        pieces = partition_table(
            openaq_small, ("country", "parameter"), 4
        )
        assert (
            sum(p.num_rows for p in pieces) == openaq_small.num_rows
        )
        from repro.engine.groupby import compute_group_keys

        for shard, piece in enumerate(pieces):
            if piece.num_rows == 0:
                continue
            keys = compute_group_keys(
                piece, ("country", "parameter")
            ).key_tuples(piece)
            assert all(
                shard_of_key(k, 4) == shard for k in keys
            )

    def test_single_shard_passthrough(self, openaq_small):
        pieces = partition_table(openaq_small, ("country",), 1)
        assert len(pieces) == 1 and pieces[0] is openaq_small


class TestShardedSampleStore:
    def test_layout_and_topology_record(self, tmp_path, sample):
        store = ShardedSampleStore(
            tmp_path / "wh", shards=3, backend=_BACKEND
        )
        meta = json.loads((tmp_path / "wh" / "shards.json").read_text())
        assert meta["shards"] == {"count": 3, "scheme": SHARD_SCHEME}
        versions = store.put("s", sample, table_name="OpenAQ")
        assert len(versions) == 3
        for i in range(3):
            assert (tmp_path / "wh" / f"shard-{i:02d}").is_dir()

    def test_reopen_reads_recorded_count(self, tmp_path):
        ShardedSampleStore(tmp_path / "wh", shards=4, backend=_BACKEND)
        reopened = ShardedSampleStore(tmp_path / "wh", backend=_BACKEND)
        assert reopened.num_shards == 4

    def test_conflicting_count_rejected(self, tmp_path):
        ShardedSampleStore(tmp_path / "wh", shards=4, backend=_BACKEND)
        with pytest.raises(ValueError, match="sharded 4 ways"):
            ShardedSampleStore(
                tmp_path / "wh", shards=2, backend=_BACKEND
            )

    def test_unknown_scheme_rejected(self, tmp_path):
        root = tmp_path / "wh"
        ShardedSampleStore(root, shards=2, backend=_BACKEND)
        meta = json.loads((root / "shards.json").read_text())
        meta["shards"]["scheme"] = "round-robin-v9"
        (root / "shards.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="partition scheme"):
            ShardedSampleStore(root, backend=_BACKEND)

    def test_missing_count_for_new_root_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no shard count"):
            ShardedSampleStore(tmp_path / "fresh", backend=_BACKEND)

    def test_put_get_round_trip(self, tmp_path, sample):
        store = ShardedSampleStore(
            tmp_path / "wh", shards=3, backend=_BACKEND
        )
        store.put(
            "s", sample, table_name="OpenAQ",
            lineage={"base_rows": sample.source_rows,
                     "rows_ingested": 0},
        )
        shards = store.get_shards("s")
        assert [s.table_name for s in shards] == ["OpenAQ"] * 3
        # Per-shard lineage is rescaled to the shard's own population.
        assert [
            s.lineage["base_rows"] for s in shards
        ] == [int(p.allocation.populations.sum())
              for p in split_sample(sample, 3)]
        merged = store.merged_allocation("s")
        assert (
            int(merged.populations.sum()) == sample.source_rows
        )

    def test_names_deduplicate_across_shards(self, tmp_path, sample):
        store = ShardedSampleStore(
            tmp_path / "wh", shards=2, backend=_BACKEND
        )
        store.put("s", sample, table_name="OpenAQ")
        assert store.names() == ["s"]
