"""Contract-aware routing: a max_cv-satisfying sample beats the
globally-lowest-CV sample that violates the constraint.

The two candidate samples are crafted so the preference is
deterministic:

* sample ``lopsided`` has the lower *mean* predicted CV (the router's
  default score) but one starved stratum whose predicted CV blows
  through any reasonable ``max_cv``;
* sample ``even`` has a slightly higher mean predicted CV but every
  stratum comfortably under the bound.

Without a constraint the router must pick ``lopsided``; with
``max_cv`` it must prefer ``even`` and serve the request from a sample
(HTTP 200 with a contract) instead of falling back to exact / 412.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.aqp.session import AQPSession
from repro.core.sample import (
    STRATUM_COLUMN,
    WEIGHT_COLUMN,
    Allocation,
    StratifiedSample,
)
from repro.engine.schema import DType
from repro.engine.table import Column, Table
from repro.engine.statistics import ColumnStats, StrataStatistics
from repro.warehouse import SampleStore, WarehouseService

_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "npz")

SQL = "SELECT g, AVG(v) a FROM T GROUP BY g"

NUM_STRATA = 10
POPULATION = 10_000  # per stratum
DATA_CV = 0.5  # per stratum, column v


def crafted_sample(sizes):
    """A stratified sample over strata k0..k9 with controlled moments.

    Every stratum has population 10k and data CV 0.5 on column ``v``
    (mean 1), so the predicted estimate CV per stratum is exactly
    ``0.5 * sqrt((n - s) / (n * s))`` — the router's preference is a
    pure function of the allocation ``sizes``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    assert len(sizes) == NUM_STRATA
    keys = [(f"k{i}",) for i in range(NUM_STRATA)]
    populations = np.full(NUM_STRATA, POPULATION, dtype=np.int64)
    g, v, w, gid = [], [], [], []
    for i, size in enumerate(sizes):
        g.extend([f"k{i}"] * int(size))
        v.extend([1.0] * int(size))
        w.extend([POPULATION / size] * int(size))
        gid.extend([i] * int(size))
    table = Table.from_pydict({"g": g, "v": v})
    table = table.with_column(
        WEIGHT_COLUMN, Column(DType.FLOAT64, np.asarray(w))
    )
    table = table.with_column(
        STRATUM_COLUMN, Column(DType.INT64, np.asarray(gid, dtype=np.int64))
    )
    stats = StrataStatistics(by=("g",), keys=keys, sizes=populations)
    counts = populations.astype(np.float64)
    stats.columns["v"] = ColumnStats(
        count=counts,
        total=counts * 1.0,  # mean 1
        total_sq=counts * (1.0 + DATA_CV**2),  # variance = DATA_CV^2
    )
    allocation = Allocation(
        by=("g",), keys=keys, populations=populations, sizes=sizes,
        stats=stats,
    )
    return StratifiedSample(
        table=table,
        allocation=allocation,
        method="TEST",
        source_rows=NUM_STRATA * POPULATION,
        budget=int(sizes.sum()),
    )


def predicted(size):
    n = POPULATION
    return DATA_CV * np.sqrt((n - size) / (n * size))


@pytest.fixture()
def base_table():
    return Table.from_pydict(
        {"g": [f"k{i}" for i in range(NUM_STRATA)], "v": [1.0] * NUM_STRATA},
        name="T",
    )


# lopsided: nine well-fed strata, one starved; even: all moderate.
LOPSIDED = [2000] * 9 + [2]
EVEN = [100] * NUM_STRATA


@pytest.fixture()
def session(base_table):
    s = AQPSession({"T": base_table})
    s.register_sample("lopsided", crafted_sample(LOPSIDED), "T")
    s.register_sample("even", crafted_sample(EVEN), "T")
    return s


def test_crafted_cv_ordering():
    """The construction really produces the intended crossover."""
    lop = [predicted(s) for s in LOPSIDED]
    even = [predicted(s) for s in EVEN]
    assert np.mean(lop) < np.mean(even)  # lopsided wins on the score
    assert max(lop) > 0.1 > max(even)  # ...but violates max_cv=0.1


class TestSessionRouting:
    def test_without_constraint_lowest_mean_cv_wins(self, session):
        result = session.query(SQL)
        assert result.route.sample_name == "lopsided"
        assert result.route.cv_columns == ("v",)

    def test_max_cv_prefers_satisfying_sample(self, session):
        result = session.query(SQL, max_cv=0.1)
        route = result.route
        assert route.sample_name == "even"
        assert max(route.group_cvs) <= 0.1
        assert "meets max_cv" in route.reason
        assert "'lopsided'" in route.reason  # names the sample it beat

    def test_unsatisfiable_max_cv_still_routes_lowest(self, session):
        # No candidate satisfies: the router returns the best sample
        # and leaves the violation decision to the caller.
        result = session.query(SQL, max_cv=1e-6)
        assert result.route.sample_name == "lopsided"

    def test_constraint_values_cached_separately(self, session):
        first = session.query(SQL)
        constrained = session.query(SQL, max_cv=0.1)
        again = session.query(SQL, max_cv=0.1)
        assert first.route.sample_name == "lopsided"
        assert constrained.route.sample_name == "even"
        assert not constrained.plan_cached and again.plan_cached

    def test_shape_cache_bounded_under_varying_max_cv(self, session):
        # max_cv is caller-controlled and part of the cache key; a
        # client sweeping constraint values must not grow the shape
        # cache without bound.
        from repro.aqp import session as session_module

        for i in range(session_module._MAX_CACHED_SHAPES + 10):
            session.query(SQL, max_cv=0.2 + i * 1e-6)
        assert (
            len(session._shape_cache)
            <= session_module._MAX_CACHED_SHAPES
        )


class TestServiceRouting:
    @pytest.fixture()
    def service(self, tmp_path, base_table):
        store = SampleStore(tmp_path / "wh", backend=_BACKEND)
        store.put("lopsided", crafted_sample(LOPSIDED), table_name="T")
        store.put("even", crafted_sample(EVEN), table_name="T")
        return WarehouseService(store, {"T": base_table})

    def test_satisfying_sample_served_not_rejected(self, service):
        # Even with on_violation="reject": the router found a
        # satisfying sample, so there is nothing to reject.
        answer = service.query_with_contract(
            SQL, max_cv=0.1, on_violation="reject"
        )
        contract = answer.contract
        assert contract.executed == "approximate"
        assert contract.sample_name == "even"
        assert contract.max_group_cv <= 0.1
        assert contract.cv_columns == ("v",)
        assert contract.satisfied and not contract.fallback_exact

    def test_http_request_served_with_contract(self, service):
        """Acceptance: the HTTP answer is 200 + contract, not 412."""
        from repro.serve import (
            AsyncWarehouseService,
            WarehouseHTTPServer,
            request,
        )

        async def main():
            async_service = AsyncWarehouseService(service)
            server = await WarehouseHTTPServer(
                async_service, port=0
            ).start()
            try:
                status, payload = await request(
                    "127.0.0.1", server.port, "POST", "/query",
                    {
                        "sql": SQL,
                        "max_cv": 0.1,
                        "on_violation": "reject",
                    },
                )
            finally:
                await server.stop()
            assert status == 200, payload
            contract = payload["contract"]
            assert contract["executed"] == "approximate"
            assert contract["sample_name"] == "even"
            assert contract["cv_columns"] == ["v"]
            assert contract["max_group_cv"] <= 0.1
            assert contract["satisfied"]

        asyncio.run(main())
