import numpy as np
import pytest

from repro.baselines.rl import RLSampler, rl_single_grouping
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


class TestRlSingleGrouping:
    def test_cv_proportional(self):
        out = rl_single_grouping(
            np.asarray([10_000, 10_000]), np.asarray([0.3, 0.1]), 100
        )
        assert list(out) == [75, 25]

    def test_ignores_group_size(self):
        """Identical CVs get identical shares regardless of size — RL's
        defining assumption (and flaw)."""
        out = rl_single_grouping(
            np.asarray([100_000, 200]), np.asarray([0.5, 0.5]), 100
        )
        assert out[0] == out[1]

    def test_cap_without_redistribution_loses_budget(self):
        """When the CV share exceeds a small group, RL wastes budget
        (the paper's critique: 'RL may allocate a sample size greater
        than the group size')."""
        out = rl_single_grouping(
            np.asarray([10, 100_000]), np.asarray([0.9, 0.1]), 100
        )
        assert out[0] == 10  # wanted 90, capped at 10
        assert out[1] == 10  # keeps its own share only
        assert out.sum() < 100  # 80 rows of budget lost

    def test_zero_cvs_even_split(self):
        out = rl_single_grouping(
            np.asarray([100, 100]), np.asarray([0.0, 0.0]), 10
        )
        assert list(out) == [5, 5]

    def test_nan_cv_treated_as_zero(self):
        out = rl_single_grouping(
            np.asarray([100, 100]), np.asarray([np.nan, 1.0]), 10
        )
        assert out[0] == 0 and out[1] == 10


class TestRLSampler:
    def test_single_grouping(self):
        table = make_grouped_table(
            sizes=[5000, 5000],
            means=[100.0, 100.0],
            stds=[30.0, 10.0],
            exact_moments=True,
        )
        sampler = RLSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 100)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[0] == 75 and by_key[1] == 25

    def test_multiple_aggregates_rss(self):
        table = make_grouped_table(
            sizes=[1000, 1000], means=[10.0, 10.0], stds=[1.0, 1.0],
            exact_moments=True,
        )
        from repro.engine.schema import DType
        from repro.engine.table import Column

        # Second measure: flat for group 0, dispersed for group 1.
        g = np.asarray(table["g"])
        v = np.asarray(table["v"], dtype=float)
        w = np.where(g == 1, (v - 10.0) * 8 + 10.0, 10.0)
        table = table.with_column("w", Column(DType.FLOAT64, w))
        spec = GroupByQuerySpec(group_by=("g",), aggregates=("v", "w"))
        allocation = RLSampler(spec).allocation(table, 100)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[1] > by_key[0]

    def test_hierarchical_for_multiple_groupbys(self, openaq_small):
        specs = [
            GroupByQuerySpec.single("value", by=("country",)),
            GroupByQuerySpec.single("value", by=("parameter",)),
        ]
        sampler = RLSampler(specs)
        allocation = sampler.allocation(openaq_small, 1000)
        assert allocation.by == ("country", "parameter")
        assert allocation.total <= 1000  # capping may lose budget
        assert allocation.total > 0

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            RLSampler([])

    def test_small_group_starves_budget_vs_cvopt(self):
        """End-to-end: on data with a tiny high-CV group RL wastes
        budget that CVOPT re-invests (paper Section 6.1, AQ4
        discussion)."""
        from repro.core.cvopt import CVOptSampler

        table = make_grouped_table(
            sizes=[20, 10_000, 10_000],
            means=[10.0, 10.0, 10.0],
            stds=[8.0, 3.0, 3.0],
            exact_moments=True,
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        rl = RLSampler(spec).allocation(table, 300)
        cvopt = CVOptSampler(spec).allocation(table, 300)
        assert rl.total < 300
        assert cvopt.total == 300
