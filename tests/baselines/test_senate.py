import numpy as np
import pytest

from repro.baselines.senate import SenateSampler, equal_allocation
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


class TestEqualAllocation:
    def test_even_split(self):
        out = equal_allocation(np.asarray([100, 100, 100, 100]), 40)
        assert list(out) == [10, 10, 10, 10]

    def test_cap_and_redistribute(self):
        out = equal_allocation(np.asarray([3, 100, 100]), 30)
        assert out[0] == 3
        assert out.sum() == 30
        # The capped stratum's surplus flows to the others.
        assert out[1] + out[2] == 27

    def test_budget_larger_than_population(self):
        out = equal_allocation(np.asarray([5, 5]), 100)
        assert list(out) == [5, 5]

    def test_budget_smaller_than_strata(self):
        out = equal_allocation(np.asarray([10, 10, 10]), 2)
        assert out.sum() == 2
        assert out.max() == 1

    def test_empty(self):
        out = equal_allocation(np.asarray([], dtype=np.int64), 10)
        assert len(out) == 0

    def test_zero_population_stratum(self):
        out = equal_allocation(np.asarray([0, 10]), 4)
        assert out[0] == 0
        assert out[1] == 4

    def test_never_exceeds_population(self, rng):
        for _ in range(30):
            pops = rng.integers(0, 30, size=int(rng.integers(1, 10)))
            budget = int(rng.integers(0, 100))
            out = equal_allocation(pops, budget)
            assert (out <= pops).all()
            assert out.sum() == min(budget, pops.sum())


class TestSenateSampler:
    def test_equal_sizes_regardless_of_moments(self):
        table = make_grouped_table(
            sizes=[5000, 5000],
            means=[100.0, 100.0],
            stds=[50.0, 1.0],  # wildly different variance
            exact_moments=True,
        )
        sampler = SenateSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 100)
        assert list(allocation.sizes) == [50, 50]

    def test_finest_stratification_for_multiple_queries(self, openaq_small):
        specs = [
            GroupByQuerySpec.single("value", by=("country",)),
            GroupByQuerySpec.single("value", by=("parameter",)),
        ]
        sampler = SenateSampler(specs)
        allocation = sampler.allocation(openaq_small, 1000)
        assert allocation.by == ("country", "parameter")
        assert allocation.total == 1000

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            SenateSampler([])

    def test_paper_critique(self):
        """Senate ignores variance: the high-variance group gets no more
        than the constant one (Section 3.1's motivating flaw)."""
        table = make_grouped_table(
            sizes=[1000, 1000],
            means=[50.0, 50.0],
            stds=[25.0, 0.5],
            exact_moments=True,
        )
        sampler = SenateSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 200)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[0] == by_key[1]
