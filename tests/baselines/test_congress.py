import numpy as np
import pytest

from repro.baselines.congress import (
    CongressSampler,
    congress_scaled,
    congress_single_grouping,
)
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


class TestCongressSingleGrouping:
    def test_hybrid_of_house_and_senate(self):
        # Populations 900/90/10, budget 100.
        # House: 90/9/1; Senate: 33.3 each; Congress: max -> 90/33/33,
        # scaled down to 100.
        out = congress_single_grouping(np.asarray([900, 90, 10]), 100)
        assert out.sum() == 100
        # Small strata keep a senate-like floor well above their house
        # share.
        assert out[2] >= 10  # house share would be 1 (capped at pop 10)
        assert out[0] > out[1] >= out[2]

    def test_equal_populations_equal_split(self):
        out = congress_single_grouping(np.asarray([100, 100]), 50)
        assert list(out) == [25, 25]

    def test_caps_respected(self):
        out = congress_single_grouping(np.asarray([5, 1000]), 100)
        assert out[0] <= 5
        assert out.sum() == 100

    def test_empty(self):
        out = congress_single_grouping(np.asarray([], dtype=np.int64), 10)
        assert len(out) == 0

    def test_budget_exceeds_population(self):
        out = congress_single_grouping(np.asarray([3, 4]), 100)
        assert list(out) == [3, 4]

    def test_ignores_variance_by_construction(self):
        """CS only sees frequencies (the gap CVOPT fills)."""
        out_a = congress_single_grouping(np.asarray([500, 500]), 100)
        assert out_a[0] == out_a[1]


class TestCongressScaled:
    def test_two_grouping_sets(self):
        # Finest strata: (a1,b1) 600, (a1,b2) 300, (a2,b1) 100.
        populations = np.asarray([600, 300, 100])
        # Grouping by A: parents a1 (900), a2 (100).
        a_gids = np.asarray([0, 0, 1])
        a_sizes = np.asarray([900.0, 100.0])
        # Grouping by B: parents b1 (700), b2 (300).
        b_gids = np.asarray([0, 1, 0])
        b_sizes = np.asarray([700.0, 300.0])
        out = congress_scaled(
            populations, [a_gids, b_gids], [a_sizes, b_sizes], 100
        )
        assert out.sum() == 100
        assert (out > 0).all()  # every stratum represented

    def test_single_set_equivalent_to_even_group_split(self):
        populations = np.asarray([50, 50])
        gids = np.asarray([0, 1])
        sizes = np.asarray([50.0, 50.0])
        out = congress_scaled(populations, [gids], [sizes], 20)
        assert list(out) == [10, 10]


class TestCongressSampler:
    def test_single_grouping_path(self):
        table = make_grouped_table(
            sizes=[900, 90, 10], means=[1.0, 1.0, 1.0], stds=[0.1] * 3
        )
        sampler = CongressSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 100)
        assert allocation.total == 100
        assert allocation.by == ("g",)

    def test_multiple_grouping_path(self, openaq_small):
        specs = [
            GroupByQuerySpec.single("value", by=("country",)),
            GroupByQuerySpec.single("value", by=("parameter",)),
            GroupByQuerySpec.single("value", by=("country", "parameter")),
        ]
        sampler = CongressSampler(specs)
        allocation = sampler.allocation(openaq_small, 2000)
        assert allocation.by == ("country", "parameter")
        assert allocation.total == 2000
        # Congress guarantees every group of every grouping a share.
        assert (allocation.sizes > 0).all()

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            CongressSampler([])

    def test_variance_blind(self):
        """Same frequencies, different variances -> same allocation."""
        low_var = make_grouped_table(
            sizes=[500, 500], means=[10.0, 10.0], stds=[0.1, 0.1],
            exact_moments=True,
        )
        high_var = make_grouped_table(
            sizes=[500, 500], means=[10.0, 10.0], stds=[0.1, 9.0],
            exact_moments=True,
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        a = CongressSampler(spec).allocation(low_var, 100)
        b = CongressSampler(spec).allocation(high_var, 100)
        assert list(a.sizes) == list(b.sizes)
