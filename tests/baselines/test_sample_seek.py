import numpy as np
import pytest

from repro.baselines.sample_seek import SampleSeekSampler, measure_bias_weights
from repro.core.sample import WEIGHT_COLUMN
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table
from repro.engine.table import Table


class TestMeasureBiasWeights:
    def test_single_measure_normalized(self):
        table = Table.from_pydict({"v": [1.0, 2.0, 3.0]})
        out = measure_bias_weights(table, ["v"])
        np.testing.assert_allclose(out, np.asarray([1.0, 2.0, 3.0]) / 2.0)

    def test_multiple_measures_balanced(self):
        table = Table.from_pydict(
            {"v": [1.0, 3.0], "w": [1000.0, 3000.0]}
        )
        out = measure_bias_weights(table, ["v", "w"])
        # Each measure normalized to mean 1 before summing.
        np.testing.assert_allclose(out, [1.0, 3.0])

    def test_absolute_values_used(self):
        table = Table.from_pydict({"v": [-4.0, 4.0]})
        out = measure_bias_weights(table, ["v"])
        assert out[0] == out[1]

    def test_no_measures_uniform(self):
        table = Table.from_pydict({"v": [1.0, 2.0]})
        out = measure_bias_weights(table, [])
        assert out[0] == out[1]

    def test_zero_rows_floored(self):
        table = Table.from_pydict({"v": [0.0, 10.0]})
        out = measure_bias_weights(table, ["v"])
        assert (out > 0).all()


class TestSampleSeekSampler:
    @pytest.fixture()
    def table(self):
        return make_grouped_table(
            sizes=[1000, 1000],
            means=[100.0, 1.0],  # group 0 has 100x the measure
            stds=[5.0, 0.05],
            exact_moments=True,
            distribution="lognormal",
        )

    def test_sample_size(self, table):
        sampler = SampleSeekSampler(GroupByQuerySpec.single("v", by=("g",)))
        sample = sampler.sample(table, 100, seed=0)
        assert sample.num_rows == 100
        assert sample.method == "Sample+Seek"

    def test_measure_bias_favors_heavy_group(self, table):
        sampler = SampleSeekSampler(GroupByQuerySpec.single("v", by=("g",)))
        sample = sampler.sample(table, 100, seed=0)
        groups = np.asarray(sample.table["g"])
        assert (groups == 0).sum() > 80

    def test_ht_weights_inverse_of_inclusion(self, table):
        sampler = SampleSeekSampler(GroupByQuerySpec.single("v", by=("g",)))
        sample = sampler.sample(table, 200, seed=0)
        weights = np.asarray(sample.table[WEIGHT_COLUMN])
        assert (weights >= 1.0 - 1e-9).all()
        # Light rows carry larger weights than heavy rows.
        groups = np.asarray(sample.table["g"])
        if (groups == 1).any() and (groups == 0).any():
            assert weights[groups == 1].mean() > weights[groups == 0].mean()

    def test_sum_estimate_roughly_unbiased(self, table):
        """Measure-biased HT SUM estimates average near the truth."""
        truth = float(np.asarray(table["v"], dtype=float).sum())
        sampler = SampleSeekSampler(GroupByQuerySpec.single("v", by=("g",)))
        rng = np.random.default_rng(1)
        estimates = []
        for _ in range(40):
            sample = sampler.sample(table, 150, seed=rng)
            out = sample.answer("SELECT SUM(v) s FROM T", "T")
            estimates.append(out["s"][0])
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_ignores_within_group_variability(self):
        """A group of identical heavy rows still soaks budget — the
        paper's criticism of measure-biased sampling."""
        table = make_grouped_table(
            sizes=[1000, 1000],
            means=[100.0, 10.0],
            stds=[0.0, 8.0],  # heavy group is constant!
            exact_moments=True,
        )
        sampler = SampleSeekSampler(GroupByQuerySpec.single("v", by=("g",)))
        sample = sampler.sample(table, 200, seed=0)
        groups = np.asarray(sample.table["g"])
        # Despite zero variance, the heavy constant group dominates.
        assert (groups == 0).sum() > (groups == 1).sum()

    def test_budget_validation(self, table):
        sampler = SampleSeekSampler(GroupByQuerySpec.single("v", by=("g",)))
        with pytest.raises(ValueError):
            sampler.sample(table, 0)

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            SampleSeekSampler([])
