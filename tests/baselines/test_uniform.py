import numpy as np
import pytest

from repro.baselines.uniform import UniformSampler
from repro.core.sample import WEIGHT_COLUMN
from repro.datasets.synthetic import make_grouped_table


class TestUniformSampler:
    @pytest.fixture()
    def table(self):
        return make_grouped_table(
            sizes=[900, 90, 10],
            means=[10.0, 20.0, 30.0],
            stds=[1.0, 2.0, 3.0],
            exact_moments=True,
        )

    def test_single_stratum(self, table):
        sample = UniformSampler().sample(table, 100, seed=0)
        assert sample.allocation.by == ()
        assert sample.allocation.num_strata == 1
        assert sample.num_rows == 100

    def test_uniform_weights(self, table):
        sample = UniformSampler().sample(table, 100, seed=0)
        weights = np.asarray(sample.table[WEIGHT_COLUMN])
        assert np.allclose(weights, 1000 / 100)

    def test_budget_capped_at_population(self, table):
        sample = UniformSampler().sample(table, 10_000, seed=0)
        assert sample.num_rows == 1000

    def test_representation_proportional_to_volume(self, table):
        """Groups appear roughly in proportion to their sizes — the
        failure mode the paper highlights (small groups vanish)."""
        rng = np.random.default_rng(7)
        missing_small_group = 0
        for _ in range(30):
            sample = UniformSampler().sample(table, 20, seed=rng)
            groups = set(sample.table["g"])
            if 2 not in groups:
                missing_small_group += 1
        # Group 2 holds 1% of rows; a 2% uniform sample misses it often.
        assert missing_small_group > 10

    def test_empty_table(self):
        from repro.engine.table import Table

        table = Table.from_pydict({"v": []})
        sample = UniformSampler().sample(table, 5, seed=0)
        assert sample.num_rows == 0

    def test_count_estimate_unbiased(self, table):
        """Weighted COUNT over many repetitions averages to the truth."""
        rng = np.random.default_rng(0)
        totals = []
        for _ in range(60):
            sample = UniformSampler().sample(table, 50, seed=rng)
            out = sample.answer("SELECT COUNT(*) c FROM T", "T")
            totals.append(out["c"][0])
        assert np.mean(totals) == pytest.approx(1000, rel=0.02)
