import numpy as np
import pytest

from repro.baselines.neyman import NeymanSampler, neyman_fractional_allocation
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table


class TestNeymanClosedForm:
    def test_proportional_to_n_sigma(self):
        out = neyman_fractional_allocation(
            100, np.asarray([100, 300]), np.asarray([2.0, 2.0])
        )
        np.testing.assert_allclose(out, [25.0, 75.0])

    def test_variance_matters(self):
        out = neyman_fractional_allocation(
            100, np.asarray([100, 100]), np.asarray([1.0, 3.0])
        )
        np.testing.assert_allclose(out, [25.0, 75.0])

    def test_degenerate_even_split(self):
        out = neyman_fractional_allocation(
            10, np.asarray([5, 5]), np.asarray([0.0, 0.0])
        )
        np.testing.assert_allclose(out, [5.0, 5.0])


class TestNeymanSampler:
    def test_allocation_matches_closed_form(self):
        table = make_grouped_table(
            sizes=[1000, 3000],
            means=[50.0, 50.0],
            stds=[4.0, 4.0],
            exact_moments=True,
        )
        sampler = NeymanSampler(GroupByQuerySpec.single("v", by=("g",)))
        allocation = sampler.allocation(table, 100)
        by_key = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
        assert by_key[0] == 25 and by_key[1] == 75

    def test_contrast_with_cvopt_on_unequal_means(self):
        """The introduction's point: Neyman optimizes absolute variance
        and over-allocates to the large-mean group; CVOPT (relative
        error) splits evenly when CVs are equal."""
        from repro.core.cvopt import CVOptSampler

        table = make_grouped_table(
            sizes=[1000, 1000],
            means=[1000.0, 10.0],
            stds=[100.0, 1.0],  # same CV = 0.1
            exact_moments=True,
        )
        spec = GroupByQuerySpec.single("v", by=("g",))
        neyman = NeymanSampler(spec).allocation(table, 200)
        cvopt = CVOptSampler(spec).allocation(table, 200)
        n_by = dict(zip([k[0] for k in neyman.keys], neyman.sizes))
        c_by = dict(zip([k[0] for k in cvopt.keys], cvopt.sizes))
        assert n_by[0] > 50 * n_by[1] * 0.8  # Neyman ~100:1
        assert c_by[0] == c_by[1]  # CVOPT equal

    def test_multiple_aggregates(self):
        table = make_grouped_table(
            sizes=[500, 500], means=[10.0, 10.0], stds=[1.0, 1.0],
            exact_moments=True,
        )
        spec = GroupByQuerySpec(group_by=("g",), aggregates=("v", "v"))
        allocation = NeymanSampler(spec).allocation(table, 100)
        assert allocation.total == 100

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            NeymanSampler([])


class TestMakeSamplers:
    def test_lineup_names_and_order(self):
        from repro.baselines import make_samplers

        spec = GroupByQuerySpec.single("v", by=("g",))
        lineup = make_samplers(spec)
        assert list(lineup) == ["Uniform", "Sample+Seek", "CS", "RL", "CVOPT"]

    def test_without_sample_seek(self):
        from repro.baselines import make_samplers

        spec = GroupByQuerySpec.single("v", by=("g",))
        lineup = make_samplers(spec, include_sample_seek=False)
        assert "Sample+Seek" not in lineup
