import pytest

from repro.core.cvopt import CVOptSampler
from repro.datasets.student import student_table, student_workload
from repro.workload.model import (
    Workload,
    WorkloadQuery,
    derive_aggregation_groups,
    specs_from_workload,
)


class TestWorkloadBasics:
    def test_add_and_totals(self):
        workload = Workload()
        workload.add("SELECT g, AVG(v) FROM T GROUP BY g", repeats=3)
        workload.add("SELECT h, AVG(v) FROM T GROUP BY h", repeats=2)
        assert workload.total_queries == 5

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkloadQuery(sql="SELECT 1", repeats=0)


class TestPaperExample:
    """Paper Tables 1-3: the Student workload's aggregation groups.

    The text's derivation gives frequency 20 for groups produced only by
    query A, 35 (=20+15) for the (gpa, major in Science) groups shared
    by A and C, and 10 for B's college groups. (Table 3 prints 25 for
    the first set — inconsistent with its own Table 2, see DESIGN.md.)
    """

    @pytest.fixture(scope="class")
    def groups(self):
        return derive_aggregation_groups(student_workload(), student_table())

    def lookup(self, groups, column, **assignment):
        key = tuple(sorted(assignment.items()))
        for g in groups:
            if g.agg_column == column and g.assignment == key:
                return g.frequency
        raise AssertionError(f"group ({column}, {assignment}) not found")

    def test_age_major_groups(self, groups):
        for major in ("CS", "Math", "EE", "ME"):
            assert self.lookup(groups, "age", major=major) == 20

    def test_gpa_science_majors_shared_by_a_and_c(self, groups):
        assert self.lookup(groups, "gpa", major="CS") == 35
        assert self.lookup(groups, "gpa", major="Math") == 35

    def test_gpa_engineering_majors_only_a(self, groups):
        assert self.lookup(groups, "gpa", major="EE") == 20
        assert self.lookup(groups, "gpa", major="ME") == 20

    def test_college_groups_from_b(self, groups):
        for college in ("Science", "Engineering"):
            assert self.lookup(groups, "age", college=college) == 10
            assert self.lookup(groups, "sat", college=college) == 10

    def test_total_group_count(self, groups):
        # 4 age-major + 4 gpa-major + 2 age-college + 2 sat-college = 12.
        assert len(groups) == 12

    def test_describe(self, groups):
        descriptions = {g.describe() for g in groups}
        assert "(age, major=CS)" in descriptions


class TestSpecsFromWorkload:
    def test_specs_structure(self):
        specs, derived = specs_from_workload(
            student_workload(), student_table()
        )
        by_attrs = {spec.group_by: spec for spec in specs}
        assert set(by_attrs) == {("major",), ("college",)}
        major_spec = by_attrs[("major",)]
        assert set(major_spec.agg_columns) == {"age", "gpa"}
        college_spec = by_attrs[("college",)]
        assert set(college_spec.agg_columns) == {"age", "sat"}

    def test_cell_weights_are_frequencies(self):
        specs, _ = specs_from_workload(student_workload(), student_table())
        major_spec = next(s for s in specs if s.group_by == ("major",))
        assert major_spec.cell_weights[(("CS",), "gpa")] == 35.0
        assert major_spec.cell_weights[(("EE",), "gpa")] == 20.0
        assert major_spec.cell_weights[(("CS",), "age")] == 20.0

    def test_untouched_groups_weight_zero(self):
        table = student_table()
        workload = Workload().add(
            "SELECT AVG(gpa) FROM Student WHERE college = 'Science' "
            "GROUP BY major",
            repeats=5,
        )
        specs, _ = specs_from_workload(workload, table)
        spec = specs[0]
        # Engineering majors never appear under the predicate.
        assert spec.cell_weights[(("EE",), "gpa")] == 0.0
        assert spec.cell_weights[(("CS",), "gpa")] == 5.0

    def test_specs_drive_cvopt(self):
        """Workload-derived specs plug straight into the sampler."""
        table = student_table()
        specs, derived = specs_from_workload(student_workload(), table)
        sampler = CVOptSampler(specs, derived=derived)
        sample = sampler.sample(table, 4, seed=0)
        assert sample.num_rows == 4
        assert sample.allocation.by == ("major", "college")

    def test_weighted_groups_get_more_samples(self, openaq_small):
        """A group hammered by the workload receives more budget than
        under the unweighted default."""
        hot_sql = (
            "SELECT parameter, AVG(value) FROM OpenAQ "
            "WHERE parameter = 'pm25' GROUP BY parameter"
        )
        cold_sql = "SELECT parameter, AVG(value) FROM OpenAQ GROUP BY parameter"
        workload = Workload()
        workload.add(hot_sql, repeats=50)
        workload.add(cold_sql, repeats=1)
        specs, derived = specs_from_workload(workload, openaq_small)
        weighted = CVOptSampler(specs, derived=derived).allocation(
            openaq_small, 500
        )
        from repro.core.spec import GroupByQuerySpec

        unweighted = CVOptSampler(
            GroupByQuerySpec.single("value", by=("parameter",))
        ).allocation(openaq_small, 500)

        def share(allocation, key):
            lookup = dict(zip([k[0] for k in allocation.keys], allocation.sizes))
            return lookup[key] / allocation.total

        assert share(weighted, "pm25") > share(unweighted, "pm25")
