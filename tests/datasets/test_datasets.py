import numpy as np
import pytest

from repro.datasets.bikes import generate_bikes
from repro.datasets.openaq import (
    OPENAQ_COUNTRIES,
    OPENAQ_PARAMETERS,
    generate_openaq,
)
from repro.datasets.student import student_table, student_workload
from repro.datasets.synthetic import (
    heterogeneity_scenario,
    make_grouped_table,
    two_group_example,
)


class TestOpenAQ:
    def test_shape_and_columns(self, openaq_small):
        assert openaq_small.num_rows == 30_000
        assert set(openaq_small.column_names) == {
            "country", "parameter", "unit", "location",
            "latitude", "value", "local_time",
        }

    def test_deterministic(self):
        a = generate_openaq(num_rows=2000, seed=4)
        b = generate_openaq(num_rows=2000, seed=4)
        assert list(a["value"]) == list(b["value"])
        assert list(a["country"]) == list(b["country"])

    def test_seed_changes_data(self):
        a = generate_openaq(num_rows=2000, seed=4)
        b = generate_openaq(num_rows=2000, seed=5)
        assert list(a["value"]) != list(b["value"])

    def test_country_count_limit(self):
        with pytest.raises(ValueError):
            generate_openaq(num_rows=100, num_countries=999)

    def test_zipf_skew(self, openaq_small):
        counts = np.unique(
            np.asarray(openaq_small["country"]), return_counts=True
        )[1]
        assert counts.max() > 8 * counts.min()

    def test_values_positive(self, openaq_small):
        assert (np.asarray(openaq_small["value"], dtype=float) > 0).all()

    def test_parameters_valid(self, openaq_small):
        assert set(openaq_small["parameter"]) <= set(OPENAQ_PARAMETERS)

    def test_units_match_parameters(self, openaq_small):
        pairs = set(zip(openaq_small["parameter"], openaq_small["unit"]))
        for param, unit in pairs:
            if param in ("pm25", "pm10", "bc"):
                assert unit == "ug/m3"
            else:
                assert unit == "ppm"

    def test_both_hemispheres(self):
        table = generate_openaq(num_rows=20_000, num_countries=48, seed=0)
        lat = np.asarray(table["latitude"], dtype=float)
        assert (lat > 0).any() and (lat < 0).any()

    def test_time_range(self, openaq_small):
        from repro.engine.functions import sql_year

        years = sql_year(np.asarray(openaq_small["local_time"]))
        assert set(years) <= {2015, 2016, 2017, 2018}
        assert {2017, 2018} <= set(years)  # AQ1 needs both years

    def test_vn_reports_co_and_bc(self):
        table = generate_openaq(num_rows=50_000, num_countries=38, seed=7)
        vn_params = {
            p
            for c, p in zip(table["country"], table["parameter"])
            if c == "VN"
        }
        assert "co" in vn_params  # AQ6 needs it

    def test_bc_threshold_meaningful(self):
        """AQ1's 0.04 cutoff must split bc measurements non-trivially."""
        table = generate_openaq(num_rows=100_000, seed=7)
        mask = np.asarray(table["parameter"]) == "bc"
        values = np.asarray(table["value"], dtype=float)[mask]
        assert mask.sum() > 100
        share_high = (values > 0.04).mean()
        assert 0.05 < share_high < 0.95


class TestBikes:
    def test_shape_and_columns(self, bikes_small):
        assert bikes_small.num_rows == 20_000
        assert set(bikes_small.column_names) == {
            "trip_id", "from_station_id", "to_station_id", "year",
            "start_time", "trip_duration", "age", "gender",
        }

    def test_deterministic(self):
        a = generate_bikes(num_rows=1000, seed=1)
        b = generate_bikes(num_rows=1000, seed=1)
        assert list(a["trip_duration"]) == list(b["trip_duration"])

    def test_station_range(self, bikes_small):
        stations = np.asarray(bikes_small["from_station_id"])
        assert stations.min() >= 1
        assert stations.max() <= 60

    def test_station_skew(self, bikes_small):
        counts = np.unique(
            np.asarray(bikes_small["from_station_id"]), return_counts=True
        )[1]
        assert counts.max() > 5 * counts.min()

    def test_years(self, bikes_small):
        assert set(bikes_small["year"]) == {2016, 2017, 2018}

    def test_year_matches_start_time(self, bikes_small):
        from repro.engine.functions import sql_year

        derived = sql_year(np.asarray(bikes_small["start_time"]))
        declared = np.asarray(bikes_small["year"])
        # start_time is generated from the year with a <=1-year offset;
        # allow boundary spillover but demand strong agreement.
        assert (derived == declared).mean() > 0.95

    def test_invalid_ages_present(self, bikes_small):
        ages = np.asarray(bikes_small["age"])
        share_zero = (ages == 0).mean()
        assert 0.01 < share_zero < 0.15  # B1/B3 filter these
        valid = ages[ages > 0]
        assert valid.min() >= 16 and valid.max() <= 80

    def test_durations_positive(self, bikes_small):
        durations = np.asarray(bikes_small["trip_duration"], dtype=float)
        assert durations.min() >= 60.0

    def test_genders(self, bikes_small):
        assert set(bikes_small["gender"]) <= {"Male", "Female", "Unknown"}

    def test_station_count_param(self):
        table = generate_bikes(num_rows=5000, num_stations=619, seed=2)
        assert np.asarray(table["from_station_id"]).max() <= 619


class TestStudent:
    def test_exact_paper_table(self, student):
        assert student.num_rows == 8
        assert list(student["age"]) == [25, 22, 24, 28, 21, 23, 27, 26]
        assert list(student["major"]) == [
            "CS", "CS", "Math", "Math", "EE", "EE", "ME", "ME",
        ]

    def test_workload_composition(self):
        workload = student_workload()
        assert workload.total_queries == 45
        assert [q.repeats for q in workload.queries] == [20, 10, 15]


class TestSynthetic:
    def test_exact_moments(self):
        table = make_grouped_table(
            sizes=[100, 50],
            means=[10.0, -5.0],
            stds=[2.0, 1.0],
            exact_moments=True,
        )
        g = np.asarray(table["g"])
        v = np.asarray(table["v"], dtype=float)
        assert v[g == 0].mean() == pytest.approx(10.0)
        assert v[g == 0].std() == pytest.approx(2.0)
        assert v[g == 1].mean() == pytest.approx(-5.0)

    def test_lognormal_hits_requested_moments_roughly(self):
        table = make_grouped_table(
            sizes=[50_000], means=[10.0], stds=[5.0],
            distribution="lognormal",
        )
        v = np.asarray(table["v"], dtype=float)
        assert v.mean() == pytest.approx(10.0, rel=0.05)
        assert v.std() == pytest.approx(5.0, rel=0.15)
        assert (v > 0).all()

    def test_lognormal_needs_positive_mean(self):
        with pytest.raises(ValueError):
            make_grouped_table(
                sizes=[10], means=[-1.0], stds=[1.0],
                distribution="lognormal",
            )

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            make_grouped_table(
                sizes=[10], means=[1.0], stds=[1.0], distribution="cauchy"
            )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            make_grouped_table(sizes=[10], means=[1.0, 2.0], stds=[1.0])

    def test_zero_size_groups_skipped(self):
        table = make_grouped_table(
            sizes=[0, 10], means=[1.0, 2.0], stds=[0.1, 0.1]
        )
        assert set(table["g"]) == {1}

    def test_two_group_example(self):
        table = two_group_example()
        g = np.asarray(table["g"])
        v = np.asarray(table["v"], dtype=float)
        assert v[g == 0].std() == pytest.approx(50.0)
        assert v[g == 1].std() == pytest.approx(2.0)

    @pytest.mark.parametrize("kind", ["sizes", "variances", "means", "mixed"])
    def test_scenarios(self, kind):
        table = heterogeneity_scenario(kind, num_groups=5, seed=0)
        assert table.num_rows > 0
        assert len(set(table["g"])) == 5

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            heterogeneity_scenario("nope")
