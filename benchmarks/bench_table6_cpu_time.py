"""Table 6 — CPU time of sample precomputation and query processing:
full-data query vs 1% samples, on OpenAQ and a duplicated scale-up
(the paper's OpenAQ-25x; here 5x to keep the bench quick — the ratios,
not the absolutes, are the target).

Paper result: query processing on samples is 50-300x cheaper than the
full-data query; stratified precomputation (two passes) costs more than
Uniform's single pass; CVOPT's precompute is ~1.5x one full-data query,
so it amortizes after about two queries.

Shape to reproduce: sample query time << full query time; Uniform
precompute < stratified precompute; CVOPT precompute within a small
factor of the full-data query.
"""

import time

import numpy as np
import pytest

from repro.aqp.runner import QueryTask, ground_truth
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import record_table, shape_check

SCALE_UP = 5
RATE = 0.01


def _measure(table, task, sql):
    specs, derived = specs_from_sql(sql)
    samplers = make_samplers(specs, derived)
    timings = {}

    start = time.perf_counter()
    ground_truth(task, table)
    full_query = time.perf_counter() - start
    timings["Full Data"] = {"precompute_s": 0.0, "query_s": full_query}

    for method, sampler in samplers.items():
        start = time.perf_counter()
        sample = sampler.sample_rate(table, RATE, seed=0)
        precompute = time.perf_counter() - start
        start = time.perf_counter()
        sample.answer(task.sql, task.table_name)
        query_time = time.perf_counter() - start
        timings[method] = {
            "precompute_s": precompute, "query_s": query_time
        }
    return timings


def _run(openaq):
    task = task_for("AQ1")
    sql = get_query("AQ1").sql
    base = _measure(openaq, task, sql)
    scaled = _measure(openaq.duplicate(SCALE_UP), task, sql)
    return {"base": base, "scaled": scaled}


@pytest.mark.benchmark(group="table6")
def test_table6_cpu_time(benchmark, openaq):
    results = benchmark.pedantic(_run, args=(openaq,), rounds=1, iterations=1)
    for scale, timings in results.items():
        rows = {
            method: {
                "precompute": t["precompute_s"],
                "query": t["query_s"],
            }
            for method, t in timings.items()
        }
        # record_table renders percentages; print seconds directly.
        print(f"\nTable 6 ({scale}, AQ1, {RATE:.0%} sample): seconds")
        for method, row in rows.items():
            print(
                f"  {method:12s} precompute {row['precompute']:8.4f}s"
                f"   query {row['query']:8.4f}s"
            )
        benchmark.extra_info[f"table6_{scale}"] = {
            method: {k: float(v) for k, v in row.items()}
            for method, row in rows.items()
        }

    for scale, timings in results.items():
        full = timings["Full Data"]["query_s"]
        for method in ("Uniform", "CS", "RL", "CVOPT"):
            shape_check(
                timings[method]["query_s"] < full,
                f"{method} sample query must be cheaper than full scan "
                f"({scale})",
            )
        shape_check(
            timings["CVOPT"]["query_s"] < full / 3,
            f"CVOPT sample query must be several times cheaper ({scale})",
        )
        shape_check(
            timings["Uniform"]["precompute_s"]
            <= timings["CVOPT"]["precompute_s"],
            f"single-pass Uniform precompute <= two-pass CVOPT ({scale})",
        )

    # Scaling the data scales the costs roughly linearly.
    shape_check(
        results["scaled"]["Full Data"]["query_s"]
        > results["base"]["Full Data"]["query_s"] * (SCALE_UP / 3),
        "full-data query cost must grow with data size",
    )
