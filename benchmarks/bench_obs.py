"""Observability overhead benchmark: instrumented vs disabled.

Standalone like ``bench_serve.py`` so CI can run it in smoke mode and
archive the JSON::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke \
        --out bench_obs.json

Phases:

* ``micro``    — per-call cost of the primitives in ns/op: counter
                 inc, labelled inc, histogram observe, and the null
                 span taken when no trace is active.
* ``query``    — the number that matters: wall time of a batch of
                 warehouse queries with the registry **enabled** vs
                 **disabled** (``set_enabled(False)`` short-circuits
                 every recording site without unwiring anything).
                 Batches use varying literals so the answer cache
                 cannot flatten the measurement; each configuration is
                 timed ``--repeats`` times interleaved and the minima
                 are compared — min-of-repeats is the standard way to
                 strip scheduler noise from a ratio.
* ``traced``   — the same batch with a root span per query (the HTTP
                 front's worst case: full span tree + trace ring).

The run **fails** (exit 1) when the enabled-vs-disabled overhead
exceeds ``--max-overhead-pct`` (default 5%), which is the acceptance
bar CI enforces on every leg.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.datasets import generate_openaq
from repro.obs import default_registry, default_tracer
from repro.warehouse import WarehouseService


def _micro_phase(loops: int) -> dict:
    registry = default_registry()
    counter = registry.counter("bench_obs_plain_total", "bench")
    labelled = registry.counter(
        "bench_obs_labelled_total", "bench", ["route"]
    )
    histogram = registry.histogram("bench_obs_seconds", "bench")
    tracer = default_tracer()

    def timed(fn) -> float:
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        return (time.perf_counter() - start) / loops * 1e9

    return {
        "loops": loops,
        "counter_inc_ns": timed(lambda: counter.inc()),
        "labelled_inc_ns": timed(lambda: labelled.inc(route="sample")),
        "histogram_observe_ns": timed(lambda: histogram.observe(0.01)),
        "null_span_ns": timed(lambda: tracer.span("bench").__exit__(
            None, None, None
        )),
    }


def _run_batch(service, queries: int, salt: str) -> float:
    """Wall seconds for ``queries`` cache-missing warehouse queries.

    ``salt`` must be digits — it becomes the fractional part of each
    predicate literal, making every SQL text unique per configuration
    and repeat so the answer cache cannot flatten the measurement.
    """
    start = time.perf_counter()
    for i in range(queries):
        service.query(
            "SELECT country, AVG(value) a FROM OpenAQ "
            f"WHERE value > {i % 97}.{salt} GROUP BY country"
        )
    return time.perf_counter() - start


def _query_phase(service, queries: int, repeats: int) -> dict:
    registry = default_registry()
    tracer = default_tracer()
    enabled: list = []
    disabled: list = []
    traced: list = []
    # interleave so drift (cache warmth, frequency scaling) hits every
    # configuration equally
    for r in range(repeats):
        registry.set_enabled(False)
        disabled.append(_run_batch(service, queries, f"{r}0"))
        registry.set_enabled(True)
        enabled.append(_run_batch(service, queries, f"{r}1"))
        start = time.perf_counter()
        for i in range(queries):
            with tracer.trace("bench.query"):
                service.query(
                    "SELECT country, AVG(value) a FROM OpenAQ "
                    f"WHERE value > {i % 97}.{r}2 GROUP BY country"
                )
        traced.append(time.perf_counter() - start)
    registry.set_enabled(True)
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    best_traced = min(traced)
    return {
        "queries_per_batch": queries,
        "repeats": repeats,
        "disabled_s": best_disabled,
        "enabled_s": best_enabled,
        "traced_s": best_traced,
        "overhead_pct": (
            (best_enabled - best_disabled) / best_disabled * 100.0
        ),
        "traced_overhead_pct": (
            (best_traced - best_disabled) / best_disabled * 100.0
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI (seconds, not minutes)",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--micro-loops", type=int, default=None)
    parser.add_argument(
        "--max-overhead-pct", type=float, default=5.0,
        help="fail when enabled-vs-disabled overhead exceeds this",
    )
    parser.add_argument("--out", default="bench_obs.json")
    args = parser.parse_args(argv)

    rows = args.rows or (16_000 if args.smoke else 100_000)
    queries = args.queries or (120 if args.smoke else 400)
    repeats = args.repeats or (4 if args.smoke else 5)
    micro_loops = args.micro_loops or (20_000 if args.smoke else 200_000)

    table = generate_openaq(num_rows=rows, num_countries=12, seed=7)
    with tempfile.TemporaryDirectory() as root:
        service = WarehouseService(root, {"OpenAQ": table})
        service.build(
            "s", "OpenAQ", group_by=["country"],
            value_columns=["value"], budget=max(600, rows // 10),
        )
        # warm up plan/compile paths before timing anything
        _run_batch(service, min(queries, 10), "999")

        results = {
            "config": {
                "rows": rows, "queries": queries, "repeats": repeats,
            },
            "micro": _micro_phase(micro_loops),
            "query": _query_phase(service, queries, repeats),
        }

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    micro = results["micro"]
    query = results["query"]
    print(
        f"micro: counter {micro['counter_inc_ns']:.0f} ns, "
        f"labelled {micro['labelled_inc_ns']:.0f} ns, "
        f"histogram {micro['histogram_observe_ns']:.0f} ns, "
        f"null span {micro['null_span_ns']:.0f} ns"
    )
    print(
        f"query: disabled {query['disabled_s']:.3f}s, "
        f"enabled {query['enabled_s']:.3f}s "
        f"({query['overhead_pct']:+.2f}%), "
        f"traced {query['traced_s']:.3f}s "
        f"({query['traced_overhead_pct']:+.2f}%)"
    )
    print(f"wrote {args.out}")

    if query["overhead_pct"] > args.max_overhead_pct:
        print(
            f"FAIL: instrumentation overhead "
            f"{query['overhead_pct']:.2f}% exceeds "
            f"{args.max_overhead_pct:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
