"""Shared fixtures and helpers for the paper-reproduction benches.

Each bench file regenerates one table or figure of the paper (see
DESIGN.md Section 3 for the index). Datasets are scaled down from the
paper's corpora (200M / 11.5M rows) to laptop scale; the reproduction
target is the *shape* of each result — method ordering, rough factors,
crossovers — not absolute numbers. Every bench prints the same rows or
series the paper reports and records them in ``benchmark.extra_info``.
"""

import numpy as np
import pytest

from repro.datasets import generate_bikes, generate_openaq

#: Bench-scale dataset sizes (the paper: 200M and 11.5M rows).
OPENAQ_ROWS = 200_000
BIKES_ROWS = 120_000
REPETITIONS = 3  # the paper uses 5; 3 keeps bench runtime sane


@pytest.fixture(scope="session")
def openaq():
    return generate_openaq(num_rows=OPENAQ_ROWS, seed=7)


@pytest.fixture(scope="session")
def bikes():
    return generate_bikes(num_rows=BIKES_ROWS, num_stations=120, seed=11)


def record_table(benchmark, title, rows):
    """Print a paper-style table and stash it in extra_info.

    ``rows`` is {row_label: {column_label: value}}; values are error
    fractions rendered as percentages.
    """
    columns = []
    for row in rows.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    lines = [title, " ".join(["method".ljust(12)] + [c.rjust(12) for c in columns])]
    for label, row in rows.items():
        cells = [label.ljust(12)]
        for col in columns:
            value = row.get(col, float("nan"))
            cells.append(f"{value * 100:11.2f}%")
        lines.append(" ".join(cells))
    text = "\n".join(lines)
    print("\n" + text)
    benchmark.extra_info[title] = {
        label: {col: float(v) for col, v in row.items()}
        for label, row in rows.items()
    }
    return text


def shape_check(condition, message):
    """Loud assertion for a paper's qualitative claim."""
    assert condition, f"paper-shape violated: {message}"
