"""Figure 3 — sensitivity of the maximum error to the sample rate
(MASG query AQ2 and SASG query B2), Uniform / CS / RL / CVOPT.

Paper result: errors fall with the rate for every method and CVOPT
dominates at nearly all rates. The shape to reproduce: monotone-ish
decrease per method, CVOPT best (or tied) at most rates.

The paper sweeps 0.01%-10% on 200M rows; at laptop scale the smallest
rates would put zero rows in most strata for every method, so the sweep
is 0.5%-10%.
"""

import pytest

from repro.aqp.runner import run_experiment
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import REPETITIONS, record_table, shape_check

RATES = (0.005, 0.01, 0.05, 0.10)


def _sweep(table, name):
    query = get_query(name)
    specs, derived = specs_from_sql(query.sql)
    samplers = make_samplers(specs, derived, include_sample_seek=False)
    results = {}
    for rate in RATES:
        outcome = run_experiment(
            table,
            [task_for(name)],
            samplers,
            rate=rate,
            repetitions=REPETITIONS,
            seed=23,
        )
        for method in samplers:
            results.setdefault(method, {})[f"{rate:.1%}"] = outcome.get(
                method, name
            ).max_error()
    return results


@pytest.mark.benchmark(group="fig3")
def test_fig3_rate_sweep_aq2(benchmark, openaq):
    results = benchmark.pedantic(
        _sweep, args=(openaq, "AQ2"), rounds=1, iterations=1
    )
    record_table(
        benchmark, "Figure 3a: AQ2 max error vs sample rate", results
    )
    for method, by_rate in results.items():
        series = list(by_rate.values())
        shape_check(
            series[-1] <= series[0] * 1.1,
            f"{method} error must fall from the smallest to largest rate",
        )
    wins = sum(
        results["CVOPT"][rate]
        <= min(results[m][rate] for m in ("Uniform", "CS", "RL")) * 1.15
        for rate in results["CVOPT"]
    )
    shape_check(
        wins >= len(RATES) - 1,
        "CVOPT must be best or near-best at nearly all rates (AQ2)",
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_rate_sweep_b2(benchmark, bikes):
    results = benchmark.pedantic(
        _sweep, args=(bikes, "B2"), rounds=1, iterations=1
    )
    record_table(
        benchmark, "Figure 3b: B2 max error vs sample rate", results
    )
    wins = sum(
        results["CVOPT"][rate]
        <= min(results[m][rate] for m in ("Uniform", "CS", "RL")) * 1.15
        for rate in results["CVOPT"]
    )
    shape_check(
        wins >= len(RATES) - 1,
        "CVOPT must be best or near-best at nearly all rates (B2)",
    )
