"""Windowed-warehouse benchmark: sliding-merge latency and scaling.

Standalone script (same idiom as ``bench_warehouse.py``) so CI can run
it in smoke mode and archive the JSON::

    PYTHONPATH=src python benchmarks/bench_windows.py --smoke \
        --out bench_windows.json

Measured phases:

* ``build``        — windowed family build (one CVOPT sample per
                     tumbling window of the timestamp column)
* ``merge``        — pure ``merge_window_samples`` latency as the
                     number of covered windows grows (1, 2, 4, ...)
* ``serve_cold``   — first sliding-window query per span: routing +
                     slide materialization + weighted execution
* ``serve_hot``    — the same spans again (materialized slide reuse +
                     answer cache)
* ``row_scaling``  — merge latency at 1x vs 4x base rows under the
                     same budget: the merge works on per-window sample
                     rows and moments, never the base rows, so latency
                     must grow *sublinearly* in base row count (this is
                     the acceptance check — exit 1 if it doesn't)
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time

import numpy as np

from repro.datasets import generate_openaq
from repro.warehouse import WarehouseService, merge_window_samples

TS = "local_time"  # openaq event-time column (int64 epoch seconds)


def timed(fn, repeat: int = 3):
    """Best-of-``repeat`` wall time and the last result."""
    best, out = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def windowed_family(root: str, rows: int, budget: int, width: int):
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    service = WarehouseService(root, {"OpenAQ": table})
    report = service.build_windowed(
        "bench", "OpenAQ", group_by=["country"],
        value_columns=["value"], budget=budget,
        ts_column=TS, window=width,
    )
    return service, report


def run(rows: int, budget: int, width: int, scale: int,
        root: str) -> dict:
    results: dict = {
        "config": {
            "rows": rows,
            "budget": budget,
            "window_seconds": width,
            "row_scale": scale,
        }
    }

    elapsed, (service, report) = timed(
        lambda: windowed_family(
            tempfile.mkdtemp(prefix="bench_windows_", dir=root),
            rows, budget, width,
        ),
        repeat=1,
    )
    starts = report.starts
    results["build"] = {
        "seconds": elapsed,
        "windows": len(starts),
        "sample_rows": report.rows,
    }

    members = {
        s: service.store.get(f"bench@w{s}").sample for s in starts
    }
    spans = [
        n for n in (1, 2, 4, 8, 16) if n <= len(starts)
    ]

    merge = {}
    for n in spans:
        subset = [members[s] for s in starts[:n]]
        seconds, merged = timed(lambda: merge_window_samples(subset))
        merge[n] = {
            "seconds": seconds,
            "sample_rows": merged.table.num_rows,
        }
    results["merge"] = merge

    def span_sql(n: int) -> str:
        lo, hi = starts[0], starts[n - 1] + width
        return (
            "SELECT country, AVG(value) a FROM OpenAQ "
            f"WHERE {TS} >= {lo} AND {TS} < {hi} GROUP BY country"
        )

    cold, hot = {}, {}
    for n in spans:
        seconds, answer = timed(
            lambda: service.query(span_sql(n)), repeat=1
        )
        cold[n] = {
            "seconds": seconds,
            "route": answer.route.sample_name,
        }
        seconds, _ = timed(lambda: service.query(span_sql(n)))
        hot[n] = {"seconds": seconds}
    results["serve_cold"] = cold
    results["serve_hot"] = hot

    # Same budget, `scale`x the base rows: the merge path touches only
    # sample rows + moments, so its latency must not scale with the
    # base data.
    big_rows = rows * scale
    _, (big_service, big_report) = timed(
        lambda: windowed_family(
            tempfile.mkdtemp(prefix="bench_windows_big_", dir=root),
            big_rows, budget, width,
        ),
        repeat=1,
    )
    big_members = [
        big_service.store.get(f"bench@w{s}").sample
        for s in big_report.starts
    ]
    n = min(len(starts), len(big_report.starts), max(spans))
    small_seconds, _ = timed(
        lambda: merge_window_samples([members[s] for s in starts[:n]])
    )
    big_seconds, _ = timed(lambda: merge_window_samples(big_members[:n]))
    ratio = big_seconds / small_seconds if small_seconds else 1.0
    results["row_scaling"] = {
        "windows_merged": n,
        "rows": {"small": rows, "big": big_rows},
        "merge_seconds": {"small": small_seconds, "big": big_seconds},
        "latency_ratio": ratio,
        "row_ratio": float(scale),
        # Sublinear with headroom: scale x the rows must cost well
        # under scale x the merge time.
        "sublinear": ratio < scale / 1.5,
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (seconds, not minutes)",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument(
        "--window", type=int, default=None,
        help="window width in seconds (default ~90 days: the openaq "
        "timestamps span ~3.5 years, giving ~14 windows)",
    )
    parser.add_argument(
        "--scale", type=int, default=4,
        help="row multiplier for the sublinearity check",
    )
    parser.add_argument("--root", default=None, help="work directory")
    parser.add_argument("--out", default="bench_windows.json")
    args = parser.parse_args(argv)

    rows = args.rows or (6_000 if args.smoke else 100_000)
    budget = args.budget or (400 if args.smoke else 4_000)
    width = args.window or 90 * 86400
    root = args.root or tempfile.mkdtemp(prefix="bench_windows_root_")

    results = run(
        rows=rows, budget=budget, width=width, scale=args.scale,
        root=root,
    )
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    b = results["build"]
    print(f"build     {b['seconds']:.3f}s ({b['windows']} windows, "
          f"{b['sample_rows']} sample rows)")
    for n, m in results["merge"].items():
        print(f"merge     {n:>2} windows: {m['seconds'] * 1e3:.2f}ms "
              f"({m['sample_rows']} rows)")
    for n in results["serve_cold"]:
        print(f"serve     {n:>2} windows: "
              f"cold {results['serve_cold'][n]['seconds'] * 1e3:.2f}ms "
              f"-> {results['serve_cold'][n]['route']}, "
              f"hot {results['serve_hot'][n]['seconds'] * 1e6:.0f}us")
    rs = results["row_scaling"]
    print(f"scaling   {rs['row_ratio']:.0f}x rows -> "
          f"{rs['latency_ratio']:.2f}x merge latency "
          f"({'sublinear' if rs['sublinear'] else 'NOT sublinear'})")
    print(f"wrote {args.out}")
    return 0 if rs["sublinear"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
