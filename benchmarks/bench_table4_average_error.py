"""Table 4 — percentage average error for SASG/MASG/SAMG/MAMG queries on
OpenAQ (1% sample) and Bikes (5% sample), for Uniform / Sample+Seek /
CS / RL / CVOPT.

Paper result: CVOPT has the lowest average error in every column
(OpenAQ: 1.6 / 0.8 / 2.4 / 2.2; Bikes: 4.0 / 2.3 / 6.3 / 4.8); the
ordering of the other methods varies by query type, with Uniform and
Sample+Seek far behind. The shape to reproduce: CVOPT best-or-tied per
column, stratified methods well ahead of Uniform/Sample+Seek.
"""

import pytest

from repro.aqp.runner import run_experiment
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import REPETITIONS, record_table, shape_check

#: Query representing each class, per the paper's Section 6.1/6.4.
OPENAQ_COLUMNS = {"SASG": "AQ3", "MASG": "AQ2", "SAMG": "AQ7", "MAMG": "AQ8"}
BIKES_COLUMNS = {"SASG": "B2", "MASG": "B1", "SAMG": "B3", "MAMG": "B4"}


def _run_dataset(table, columns, rate):
    results = {}
    for kind, name in columns.items():
        query = get_query(name)
        specs, derived = specs_from_sql(query.sql)
        samplers = make_samplers(specs, derived)
        outcome = run_experiment(
            table,
            [task_for(name)],
            samplers,
            rate=rate,
            repetitions=REPETITIONS,
            seed=7,
        )
        for method in samplers:
            label = f"{kind} ({name})"
            results.setdefault(method, {})[label] = outcome.get(
                method, name
            ).mean_error()
    return results


@pytest.mark.benchmark(group="table4")
def test_table4_openaq(benchmark, openaq):
    results = benchmark.pedantic(
        _run_dataset, args=(openaq, OPENAQ_COLUMNS, 0.01),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark, "Table 4 (OpenAQ, 1% sample): average error", results
    )
    for label in results["CVOPT"]:
        competitors = [
            results[m][label] for m in ("Uniform", "Sample+Seek", "CS", "RL")
        ]
        shape_check(
            results["CVOPT"][label] <= min(competitors) * 1.25,
            f"CVOPT must be best or near-best on OpenAQ {label}",
        )
        shape_check(
            results["CVOPT"][label] < results["Uniform"][label],
            f"CVOPT must beat Uniform on OpenAQ {label}",
        )


@pytest.mark.benchmark(group="table4")
def test_table4_bikes(benchmark, bikes):
    results = benchmark.pedantic(
        _run_dataset, args=(bikes, BIKES_COLUMNS, 0.05),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark, "Table 4 (Bikes, 5% sample): average error", results
    )
    for label in results["CVOPT"]:
        competitors = [
            results[m][label] for m in ("Uniform", "Sample+Seek", "CS", "RL")
        ]
        shape_check(
            results["CVOPT"][label] <= min(competitors) * 1.25,
            f"CVOPT must be best or near-best on Bikes {label}",
        )
