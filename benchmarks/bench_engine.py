"""Engine microbenchmarks: the substrate's own throughput.

Not a paper experiment — these keep the pure-python engine honest
(vectorized group-by and sampling are what make the repro runnable) and
guard against performance regressions.
"""

import time

import numpy as np
import pytest

from repro.aqp.session import AQPSession
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.groupby import compute_group_keys
from repro.engine.reservoir import stratified_sample_indices
from repro.engine.sql.executor import execute_sql, plan_query
from repro.engine.sql.parser import parse_query
from repro.engine.statistics import collect_strata_statistics


@pytest.mark.benchmark(group="engine")
def test_groupby_throughput(benchmark, openaq):
    def run():
        return execute_sql(
            "SELECT country, parameter, AVG(value) a, COUNT(*) c "
            "FROM OpenAQ GROUP BY country, parameter",
            {"OpenAQ": openaq},
        )

    result = benchmark(run)
    assert result.num_rows > 0
    benchmark.extra_info["rows"] = openaq.num_rows


@pytest.mark.benchmark(group="engine")
def test_cube_throughput(benchmark, openaq):
    def run():
        return execute_sql(
            "SELECT country, parameter, SUM(value) s FROM OpenAQ "
            "GROUP BY country, parameter WITH CUBE",
            {"OpenAQ": openaq},
        )

    result = benchmark(run)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_filter_join_cte_pipeline(benchmark, openaq):
    from repro.queries import get_query

    sql = get_query("AQ1").sql

    def run():
        return execute_sql(sql, {"OpenAQ": openaq})

    result = benchmark(run)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_statistics_pass(benchmark, openaq):
    def run():
        return collect_strata_statistics(
            openaq, ["country", "parameter"], ["value", "latitude"]
        )

    stats = benchmark(run)
    assert stats.num_strata > 0


@pytest.mark.benchmark(group="engine")
def test_stratified_draw(benchmark, openaq):
    keys = compute_group_keys(openaq, ["country", "parameter"])
    sizes = np.minimum(
        10, np.bincount(keys.gids, minlength=keys.num_groups)
    )
    rng = np.random.default_rng(0)

    def run():
        return stratified_sample_indices(keys.gids, sizes, rng)

    out = benchmark(run)
    assert len(out) > 0


@pytest.mark.benchmark(group="planner")
def test_planner_overhead(benchmark, openaq):
    """Parse + lower + rewrite + compile, without execution.

    extra_info records the share of one full execution the planning
    path costs — it should be a small fraction.
    """
    sql = (
        "SELECT country, parameter, AVG(value) a, COUNT(*) c "
        "FROM OpenAQ GROUP BY country, parameter"
    )

    def plan():
        return plan_query(parse_query(sql), weight_column="__weight__")

    compiled = benchmark(plan)
    start = time.perf_counter()
    result = compiled.run({"OpenAQ": openaq})
    execute_seconds = time.perf_counter() - start
    assert result.num_rows > 0
    benchmark.extra_info["execute_seconds"] = execute_seconds


@pytest.mark.benchmark(group="planner")
def test_plan_cache_hit_speedup(benchmark, openaq):
    """AQP session answering a repeated query shape from the plan cache.

    The benchmark times the cache-hit path; extra_info records cold
    (cache cleared each time: route + lower + rewrite + compile) vs
    cached timings and their ratio.
    """
    session = AQPSession({"OpenAQ": openaq})
    sampler = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country", "parameter"))
    )
    session.register_sample(
        "aq3", sampler.sample_rate(openaq, 0.01, seed=0), "OpenAQ"
    )
    sql = (
        "SELECT country, AVG(value) a FROM OpenAQ "
        "WHERE value > 10 GROUP BY country"
    )

    cold = []
    for _ in range(7):
        session.clear_plan_cache()
        start = time.perf_counter()
        result = session.query(sql)
        cold.append(time.perf_counter() - start)
        assert result.approximate
    cold_seconds = float(np.median(cold))

    session.query(sql)  # prime the cache

    def cached():
        return session.query(sql)

    result = benchmark(cached)
    assert result.plan_cached
    assert session.plan_cache_hits > 0

    warm = []
    for _ in range(7):
        start = time.perf_counter()
        session.query(sql)
        warm.append(time.perf_counter() - start)
    warm_seconds = float(np.median(warm))

    benchmark.extra_info["cold_plan_seconds"] = cold_seconds
    benchmark.extra_info["cached_plan_seconds"] = warm_seconds
    benchmark.extra_info["speedup"] = cold_seconds / max(warm_seconds, 1e-12)
    # Generous slack: both paths share the (dominant) execution cost,
    # so a scheduler blip must not fail the bench suite.
    assert warm_seconds <= cold_seconds * 1.5


@pytest.mark.benchmark(group="engine")
def test_cvopt_end_to_end_build(benchmark, openaq):
    sampler = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country", "parameter"))
    )

    def run():
        return sampler.sample_rate(openaq, 0.01, seed=0)

    sample = benchmark(run)
    assert sample.num_rows > 0
