"""Engine microbenchmarks: the substrate's own throughput.

Not a paper experiment — these keep the pure-python engine honest
(vectorized group-by and sampling are what make the repro runnable) and
guard against performance regressions.
"""

import numpy as np
import pytest

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.groupby import compute_group_keys
from repro.engine.reservoir import stratified_sample_indices
from repro.engine.sql.executor import execute_sql
from repro.engine.statistics import collect_strata_statistics


@pytest.mark.benchmark(group="engine")
def test_groupby_throughput(benchmark, openaq):
    def run():
        return execute_sql(
            "SELECT country, parameter, AVG(value) a, COUNT(*) c "
            "FROM OpenAQ GROUP BY country, parameter",
            {"OpenAQ": openaq},
        )

    result = benchmark(run)
    assert result.num_rows > 0
    benchmark.extra_info["rows"] = openaq.num_rows


@pytest.mark.benchmark(group="engine")
def test_cube_throughput(benchmark, openaq):
    def run():
        return execute_sql(
            "SELECT country, parameter, SUM(value) s FROM OpenAQ "
            "GROUP BY country, parameter WITH CUBE",
            {"OpenAQ": openaq},
        )

    result = benchmark(run)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_filter_join_cte_pipeline(benchmark, openaq):
    from repro.queries import get_query

    sql = get_query("AQ1").sql

    def run():
        return execute_sql(sql, {"OpenAQ": openaq})

    result = benchmark(run)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_statistics_pass(benchmark, openaq):
    def run():
        return collect_strata_statistics(
            openaq, ["country", "parameter"], ["value", "latitude"]
        )

    stats = benchmark(run)
    assert stats.num_strata > 0


@pytest.mark.benchmark(group="engine")
def test_stratified_draw(benchmark, openaq):
    keys = compute_group_keys(openaq, ["country", "parameter"])
    sizes = np.minimum(
        10, np.bincount(keys.gids, minlength=keys.num_groups)
    )
    rng = np.random.default_rng(0)

    def run():
        return stratified_sample_indices(keys.gids, sizes, rng)

    out = benchmark(run)
    assert len(out) > 0


@pytest.mark.benchmark(group="engine")
def test_cvopt_end_to_end_build(benchmark, openaq):
    sampler = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country", "parameter"))
    )

    def run():
        return sampler.sample_rate(openaq, 0.01, seed=0)

    sample = benchmark(run)
    assert sample.num_rows > 0
