"""Engine microbenchmarks: the substrate's own throughput.

Not a paper experiment — these keep the pure-python engine honest
(vectorized group-by and sampling are what make the repro runnable) and
guard against performance regressions.

Besides the pytest-benchmark suite, this file runs standalone for CI
(same shape as ``bench_warehouse.py``)::

    PYTHONPATH=src python benchmarks/bench_engine.py --smoke \
        --out bench_engine.json

The script mode times the factorize kernels (hash vs ``np.unique``) and
the group-code cache (cold factorize vs warm hit), and exits non-zero
when the warm cached path is less than 2x faster than cold factorize —
the regression gate for the caching layer.
"""

import argparse
import json
import statistics
import time

import numpy as np

import pytest

from repro.aqp.session import AQPSession
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.engine.groupby import (
    compute_group_keys,
    factorize_hash,
    factorize_sort,
)
from repro.engine.groupcache import default_group_code_cache
from repro.engine.reservoir import stratified_sample_indices
from repro.engine.sql.executor import execute_sql, plan_query
from repro.engine.sql.parser import parse_query
from repro.engine.statistics import collect_strata_statistics
from repro.engine.table import Table


@pytest.mark.benchmark(group="engine")
def test_groupby_throughput(benchmark, openaq):
    def run():
        return execute_sql(
            "SELECT country, parameter, AVG(value) a, COUNT(*) c "
            "FROM OpenAQ GROUP BY country, parameter",
            {"OpenAQ": openaq},
        )

    result = benchmark(run)
    assert result.num_rows > 0
    benchmark.extra_info["rows"] = openaq.num_rows


@pytest.mark.benchmark(group="engine")
def test_cube_throughput(benchmark, openaq):
    def run():
        return execute_sql(
            "SELECT country, parameter, SUM(value) s FROM OpenAQ "
            "GROUP BY country, parameter WITH CUBE",
            {"OpenAQ": openaq},
        )

    result = benchmark(run)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_filter_join_cte_pipeline(benchmark, openaq):
    from repro.queries import get_query

    sql = get_query("AQ1").sql

    def run():
        return execute_sql(sql, {"OpenAQ": openaq})

    result = benchmark(run)
    assert result.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_statistics_pass(benchmark, openaq):
    def run():
        return collect_strata_statistics(
            openaq, ["country", "parameter"], ["value", "latitude"]
        )

    stats = benchmark(run)
    assert stats.num_strata > 0


@pytest.mark.benchmark(group="engine")
def test_stratified_draw(benchmark, openaq):
    keys = compute_group_keys(openaq, ["country", "parameter"])
    sizes = np.minimum(
        10, np.bincount(keys.gids, minlength=keys.num_groups)
    )
    rng = np.random.default_rng(0)

    def run():
        return stratified_sample_indices(keys.gids, sizes, rng)

    out = benchmark(run)
    assert len(out) > 0


@pytest.mark.benchmark(group="planner")
def test_planner_overhead(benchmark, openaq):
    """Parse + lower + rewrite + compile, without execution.

    extra_info records the share of one full execution the planning
    path costs — it should be a small fraction.
    """
    sql = (
        "SELECT country, parameter, AVG(value) a, COUNT(*) c "
        "FROM OpenAQ GROUP BY country, parameter"
    )

    def plan():
        return plan_query(parse_query(sql), weight_column="__weight__")

    compiled = benchmark(plan)
    start = time.perf_counter()
    result = compiled.run({"OpenAQ": openaq})
    execute_seconds = time.perf_counter() - start
    assert result.num_rows > 0
    benchmark.extra_info["execute_seconds"] = execute_seconds


@pytest.mark.benchmark(group="planner")
def test_plan_cache_hit_speedup(benchmark, openaq):
    """AQP session answering a repeated query shape from the plan cache.

    The benchmark times the cache-hit path; extra_info records cold
    (cache cleared each time: route + lower + rewrite + compile) vs
    cached timings and their ratio.
    """
    session = AQPSession({"OpenAQ": openaq})
    sampler = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country", "parameter"))
    )
    session.register_sample(
        "aq3", sampler.sample_rate(openaq, 0.01, seed=0), "OpenAQ"
    )
    sql = (
        "SELECT country, AVG(value) a FROM OpenAQ "
        "WHERE value > 10 GROUP BY country"
    )

    cold = []
    for _ in range(7):
        session.clear_plan_cache()
        start = time.perf_counter()
        result = session.query(sql)
        cold.append(time.perf_counter() - start)
        assert result.approximate
    cold_seconds = float(np.median(cold))

    session.query(sql)  # prime the cache

    def cached():
        return session.query(sql)

    result = benchmark(cached)
    assert result.plan_cached
    assert session.plan_cache_hits > 0

    warm = []
    for _ in range(7):
        start = time.perf_counter()
        session.query(sql)
        warm.append(time.perf_counter() - start)
    warm_seconds = float(np.median(warm))

    benchmark.extra_info["cold_plan_seconds"] = cold_seconds
    benchmark.extra_info["cached_plan_seconds"] = warm_seconds
    benchmark.extra_info["speedup"] = cold_seconds / max(warm_seconds, 1e-12)
    # Generous slack: both paths share the (dominant) execution cost,
    # so a scheduler blip must not fail the bench suite.
    assert warm_seconds <= cold_seconds * 1.5


@pytest.mark.benchmark(group="engine")
def test_cvopt_end_to_end_build(benchmark, openaq):
    sampler = CVOptSampler(
        GroupByQuerySpec.single("value", by=("country", "parameter"))
    )

    def run():
        return sampler.sample_rate(openaq, 0.01, seed=0)

    sample = benchmark(run)
    assert sample.num_rows > 0


@pytest.mark.benchmark(group="engine")
def test_factorize_kernel_speedup(benchmark, openaq):
    """Hash (direct-addressing) kernel vs the np.unique sort path on a
    high-cardinality single integer key. extra_info records the sort
    timing and the speedup ratio."""
    rng = np.random.default_rng(0)
    n = openaq.num_rows
    arr = rng.integers(0, n // 2, n)

    codes, first = benchmark(lambda: factorize_hash(arr))
    hash_times, sort_times = [], []
    for _ in range(3):
        start = time.perf_counter()
        factorize_hash(arr)
        hash_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        sort_codes, sort_first = factorize_sort(arr)
        sort_times.append(time.perf_counter() - start)
    assert np.array_equal(codes, sort_codes)
    assert np.array_equal(first, sort_first)
    hash_seconds = float(np.median(hash_times))
    sort_seconds = float(np.median(sort_times))
    benchmark.extra_info["rows"] = n
    benchmark.extra_info["sort_seconds"] = sort_seconds
    benchmark.extra_info["speedup_vs_unique"] = sort_seconds / max(
        hash_seconds, 1e-12
    )


@pytest.mark.benchmark(group="engine")
def test_groupcode_cache_hit(benchmark, openaq):
    """Warm group-code cache hit vs a cold factorize of the same keys.

    The benchmark times the hit path (a dict lookup); extra_info
    records the cold timing and the speedup — the end-to-end win every
    repeated query shape gets on an immutable sample version.
    """
    cache = default_group_code_cache()
    openaq.cache_token = ("bench", "openaq", "v1")
    try:
        cold = []
        for _ in range(5):
            cache.invalidate()
            start = time.perf_counter()
            compute_group_keys(openaq, ["country", "parameter"])
            cold.append(time.perf_counter() - start)
        cold_seconds = float(np.median(cold))

        keys = benchmark(
            lambda: compute_group_keys(openaq, ["country", "parameter"])
        )
        assert keys.num_groups > 0
        counters = cache.counters()
        assert counters["hits"] > 0
        warm = []
        for _ in range(7):
            start = time.perf_counter()
            compute_group_keys(openaq, ["country", "parameter"])
            warm.append(time.perf_counter() - start)
        warm_seconds = float(np.median(warm))
        benchmark.extra_info["cold_seconds"] = cold_seconds
        benchmark.extra_info["warm_seconds"] = warm_seconds
        benchmark.extra_info["speedup"] = cold_seconds / max(
            warm_seconds, 1e-12
        )
        assert warm_seconds < cold_seconds
    finally:
        openaq.cache_token = None
        cache.invalidate()


# ----------------------------------------------------------------------
# script mode (CI smoke + artifact)
# ----------------------------------------------------------------------
def _timed(fn, repeats):
    """Median seconds over ``repeats`` calls (first result returned)."""
    result = fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return result, float(statistics.median(samples))


def run(rows: int, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    results = {"config": {"rows": rows, "repeats": repeats}}

    # Phase 1: factorize kernels on a high-cardinality single int key.
    arr = rng.integers(0, rows // 2, rows)
    (hash_out, hash_seconds) = _timed(lambda: factorize_hash(arr), repeats)
    (sort_out, sort_seconds) = _timed(lambda: factorize_sort(arr), repeats)
    assert np.array_equal(hash_out[0], sort_out[0])
    distinct = len(hash_out[1])
    results["factorize"] = {
        "rows": rows,
        "distinct": distinct,
        "hash_seconds": hash_seconds,
        "unique_seconds": sort_seconds,
        "speedup_vs_unique": sort_seconds / max(hash_seconds, 1e-12),
    }

    # Phase 2: group-code cache — cold factorize vs warm hit on an
    # immutable (tagged) table, the serving hot path.
    table = Table.from_pydict(
        {
            "g": rng.integers(0, 500, rows),
            "h": rng.integers(0, 40, rows),
        }
    )
    table.cache_token = ("bench", "sample", "v1")
    cache = default_group_code_cache()
    try:
        def cold():
            cache.invalidate()
            return compute_group_keys(table, ("g", "h"))

        _, cold_seconds = _timed(cold, repeats)
        compute_group_keys(table, ("g", "h"))  # prime
        _, warm_seconds = _timed(
            lambda: compute_group_keys(table, ("g", "h")), repeats
        )
        counters = cache.counters()
    finally:
        table.cache_token = None
        cache.invalidate()
    results["groupcode_cache"] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-12),
        "hits": counters["hits"],
        "misses": counters["misses"],
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI and enforce the 2x cached-path gate",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--min-cache-speedup", type=float, default=2.0,
        help="fail when warm cache hits are not at least this much "
        "faster than cold factorize (enforced with --smoke)",
    )
    parser.add_argument("--out", default="bench_engine.json")
    args = parser.parse_args(argv)

    rows = args.rows or (300_000 if args.smoke else 2_000_000)
    results = run(rows=rows, repeats=args.repeats)
    fz, gc = results["factorize"], results["groupcode_cache"]
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    print(f"factorize  {rows} rows, {fz['distinct']} distinct: "
          f"hash {fz['hash_seconds'] * 1e3:.1f}ms vs "
          f"np.unique {fz['unique_seconds'] * 1e3:.1f}ms "
          f"({fz['speedup_vs_unique']:.1f}x)")
    print(f"groupcache cold {gc['cold_seconds'] * 1e3:.2f}ms vs "
          f"warm hit {gc['warm_seconds'] * 1e6:.0f}us "
          f"({gc['speedup']:.0f}x, hits={gc['hits']})")
    print(f"wrote {args.out}")

    if args.smoke and gc["speedup"] < args.min_cache_speedup:
        print(f"FAIL: cached-path speedup {gc['speedup']:.2f}x below "
              f"the {args.min_cache_speedup:.1f}x gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
