"""Figure 6 — error percentiles of CVOPT (l2) vs CVOPT-INF (l-infinity)
for SASG queries AQ3 and B2.

Paper result: CVOPT-INF has the lower MAX error; CVOPT (l2) is better
at the 90th percentile and below. The shape to reproduce: INF <= l2 at
MAX, l2 <= INF somewhere at/below the median.
"""

import numpy as np
import pytest

from repro.aqp.errors import compare_results
from repro.aqp.runner import ground_truth
from repro.core.cvopt import CVOptSampler
from repro.core.cvopt_inf import CVOptInfSampler
from repro.queries import get_query, task_for

from conftest import record_table, shape_check

RANKS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
REPS = 5


def _percentiles(table, name, rate):
    query = get_query(name)
    truth = ground_truth(task_for(name), table)
    samplers = {
        f"{name}-CVOPT": CVOptSampler.from_sql(query.sql),
        f"{name}-INF": CVOptInfSampler.from_sql(query.sql),
    }
    results = {}
    for label, sampler in samplers.items():
        rng = np.random.default_rng(37)
        profiles = []
        for _ in range(REPS):
            sample = sampler.sample_rate(table, rate, seed=rng)
            errors = compare_results(
                truth, sample.answer(query.sql, query.table_name)
            )
            profile = {f"p{int(r*100)}": errors.percentile(r) for r in RANKS}
            profile["MAX"] = errors.max_error()
            profiles.append(profile)
        results[label] = {
            key: float(np.mean([p[key] for p in profiles]))
            for key in profiles[0]
        }
    return results


@pytest.mark.benchmark(group="fig6")
def test_fig6_aq3(benchmark, openaq):
    results = benchmark.pedantic(
        _percentiles, args=(openaq, "AQ3", 0.01), rounds=1, iterations=1
    )
    record_table(
        benchmark, "Figure 6 (AQ3): error percentiles, l2 vs l-inf", results
    )
    shape_check(
        results["AQ3-INF"]["MAX"] <= results["AQ3-CVOPT"]["MAX"] * 1.05,
        "CVOPT-INF must have the lower max error (AQ3)",
    )
    shape_check(
        any(
            results["AQ3-CVOPT"][f"p{int(r*100)}"]
            <= results["AQ3-INF"][f"p{int(r*100)}"] * 1.02
            for r in (0.1, 0.25, 0.5, 0.75, 0.9)
        ),
        "l2-CVOPT must win somewhere at/below the 90th percentile (AQ3)",
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_b2(benchmark, bikes):
    results = benchmark.pedantic(
        _percentiles, args=(bikes, "B2", 0.05), rounds=1, iterations=1
    )
    record_table(
        benchmark, "Figure 6 (B2): error percentiles, l2 vs l-inf", results
    )
    shape_check(
        results["B2-INF"]["MAX"] <= results["B2-CVOPT"]["MAX"] * 1.05,
        "CVOPT-INF must have the lower max error (B2)",
    )
