"""Figure 5 — maximum error of WITH CUBE queries: AQ7 (SAMG), B3 (SAMG),
AQ8 (MAMG), B4 (MAMG); Uniform / CS / RL / CVOPT.

Paper result: CVOPT performs significantly better than Uniform and RL
and is consistently better than CS (whose scaled-congress allocation is
the strongest heuristic here). The shape to reproduce: CVOPT best or
tied per query, Uniform worst or near-worst.
"""

import pytest

from repro.aqp.runner import run_experiment
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import REPETITIONS, record_table, shape_check

CUBE_QUERIES = (
    ("AQ7", "openaq", 0.01),
    ("B3", "bikes", 0.05),
    ("AQ8", "openaq", 0.01),
    ("B4", "bikes", 0.05),
)


def _run(openaq, bikes):
    tables = {"openaq": openaq, "bikes": bikes}
    results = {}
    for name, dataset, rate in CUBE_QUERIES:
        query = get_query(name)
        specs, derived = specs_from_sql(query.sql)
        samplers = make_samplers(specs, derived, include_sample_seek=False)
        outcome = run_experiment(
            tables[dataset],
            [task_for(name)],
            samplers,
            rate=rate,
            repetitions=REPETITIONS,
            seed=29,
        )
        label = f"{name} ({query.kind})"
        for method in samplers:
            results.setdefault(method, {})[label] = outcome.get(
                method, name
            ).max_error()
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5_cube(benchmark, openaq, bikes):
    results = benchmark.pedantic(
        _run, args=(openaq, bikes), rounds=1, iterations=1
    )
    record_table(
        benchmark, "Figure 5: max error of CUBE group-by queries", results
    )
    for label in results["CVOPT"]:
        shape_check(
            results["CVOPT"][label] <= results["Uniform"][label],
            f"CVOPT must beat Uniform on {label}",
        )
        shape_check(
            results["CVOPT"][label]
            <= min(results["CS"][label], results["RL"][label]) * 1.25,
            f"CVOPT best or near-best on {label}",
        )
