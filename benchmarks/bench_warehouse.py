"""Warehouse benchmark: build/persist/refresh/serve throughput.

Unlike the paper-figure benches (pytest-benchmark), this is a
standalone script so CI can run it in smoke mode and archive the JSON::

    PYTHONPATH=src python benchmarks/bench_warehouse.py --smoke \
        --out bench_warehouse.json

Measured phases:

* ``build``      — two-pass CVOPT build + first store.put
* ``reload``     — cold store.get (deserialization)
* ``refresh``    — one-pass incremental ingest per appended batch
* ``serve_cold`` — distinct query shapes through the service (routing,
                   planning, weighted execution)
* ``serve_hot``  — repeated queries (answer-cache hits)
* ``concurrent`` — reader threads hammering the service while a
                   refresh swaps versions underneath them
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time

import numpy as np

from repro.datasets import generate_openaq
from repro.warehouse import WarehouseService


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def run(rows: int, budget: int, batches: int, threads: int,
        hot_queries: int, root: str) -> dict:
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    n = table.num_rows
    base = table.take(np.arange(0, int(n * 0.6)))
    step = (n - base.num_rows) // batches
    batch_tables = [
        table.take(
            np.arange(
                base.num_rows + i * step,
                base.num_rows + (i + 1) * step if i < batches - 1 else n,
            )
        )
        for i in range(batches)
    ]

    results: dict = {
        "config": {
            "rows": rows,
            "budget": budget,
            "batches": batches,
            "threads": threads,
            "hot_queries": hot_queries,
        }
    }

    service = WarehouseService(root, {"OpenAQ": base})
    elapsed, report = timed(
        lambda: service.build(
            "bench", "OpenAQ", group_by=["country", "parameter"],
            value_columns=["value"], budget=budget,
        )
    )
    results["build"] = {
        "seconds": elapsed,
        "rows": report.rows,
        "strata": report.strata,
    }

    elapsed, stored = timed(lambda: service.store.get("bench"))
    results["reload"] = {
        "seconds": elapsed,
        "rows": stored.sample.num_rows,
    }

    # Hold the last batch back: the concurrency phase ingests it while
    # readers run, so no rows are ever folded in twice.
    refresh_times = []
    for i, batch in enumerate(batch_tables[:-1]):
        elapsed, report = timed(
            lambda b=batch, s=i: service.refresh("bench", b, seed=s)
        )
        refresh_times.append(elapsed)
    results["refresh"] = {
        "seconds_per_batch": refresh_times,
        "rows_per_second": (
            sum(b.num_rows for b in batch_tables[:-1]) / sum(refresh_times)
            if refresh_times
            else 0.0
        ),
    }
    if refresh_times:
        results["refresh"].update(
            final_action=report.action,
            staleness=report.staleness,
            drift=report.drift,
        )

    shapes = [
        "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country",
        "SELECT parameter, AVG(value) a FROM OpenAQ GROUP BY parameter",
        "SELECT country, parameter, SUM(value) s FROM OpenAQ "
        "GROUP BY country, parameter",
        "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country",
    ]
    elapsed, _ = timed(lambda: [service.query(s) for s in shapes])
    results["serve_cold"] = {
        "seconds": elapsed,
        "queries": len(shapes),
    }

    start = time.perf_counter()
    for i in range(hot_queries):
        service.query(shapes[i % len(shapes)])
    hot_elapsed = time.perf_counter() - start
    results["serve_hot"] = {
        "seconds": hot_elapsed,
        "queries": hot_queries,
        "qps": hot_queries / hot_elapsed if hot_elapsed else float("inf"),
    }

    counts = [0] * threads
    errors: list = []
    stop = threading.Event()

    def reader(idx: int) -> None:
        while not stop.is_set():
            try:
                service.query(shapes[counts[idx] % len(shapes)])
                counts[idx] += 1
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))
                return

    workers = [
        threading.Thread(target=reader, args=(i,)) for i in range(threads)
    ]
    start = time.perf_counter()
    for w in workers:
        w.start()
    service.refresh("bench", batch_tables[-1], seed=99)
    time.sleep(0.2)
    stop.set()
    for w in workers:
        w.join()
    concurrent_elapsed = time.perf_counter() - start
    results["concurrent"] = {
        "seconds": concurrent_elapsed,
        "reads": sum(counts),
        "qps": sum(counts) / concurrent_elapsed,
        "reader_errors": errors,
    }

    stats = service.stats()
    results["cache"] = stats["answer_cache"]
    results["store"] = {
        name: {"versions": s["versions"], "bytes": s["bytes"]}
        for name, s in stats["samples"].items()
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (seconds, not minutes)",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--hot-queries", type=int, default=None)
    parser.add_argument("--root", default=None, help="store directory")
    parser.add_argument("--out", default="bench_warehouse.json")
    args = parser.parse_args(argv)

    rows = args.rows or (8_000 if args.smoke else 120_000)
    budget = args.budget or (600 if args.smoke else 6_000)
    hot = args.hot_queries or (200 if args.smoke else 5_000)
    root = args.root or tempfile.mkdtemp(prefix="bench_warehouse_")

    results = run(
        rows=rows, budget=budget, batches=args.batches,
        threads=args.threads, hot_queries=hot, root=root,
    )
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    print(f"build     {results['build']['seconds']:.3f}s "
          f"({results['build']['rows']} rows, "
          f"{results['build']['strata']} strata)")
    print(f"reload    {results['reload']['seconds']:.3f}s")
    print(f"refresh   {results['refresh']['rows_per_second']:.0f} rows/s "
          f"over {len(results['refresh']['seconds_per_batch'])} batches")
    print(f"serve     cold {results['serve_cold']['seconds']:.3f}s, "
          f"hot {results['serve_hot']['qps']:.0f} qps")
    print(f"concurrent {results['concurrent']['qps']:.0f} qps "
          f"across readers during refresh "
          f"(errors: {len(results['concurrent']['reader_errors'])})")
    print(f"wrote {args.out}")
    return 1 if results["concurrent"]["reader_errors"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
