"""Serving benchmark: async/HTTP throughput + latency under load.

Standalone like ``bench_warehouse.py`` so CI can run it in smoke mode
and archive the JSON::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \
        --out bench_serve.json

Measured phases (all stdlib asyncio, no HTTP library):

* ``direct``     — concurrent queries through AsyncWarehouseService
                   (no network): pool + contract overhead
* ``http``       — keep-alive client connections hammering
                   ``POST /query`` over real sockets: end-to-end
                   request throughput and latency percentiles
* ``http_swap``  — the same load while a refresh hot-swaps the served
                   version mid-flight: errors must stay zero and both
                   versions must appear in contracts
* ``contract``   — constraint paths: exact-fallback and 412 rejection
                   round-trips

Each phase reports queries, wall seconds, qps, and latency p50/p95/p99
in milliseconds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import time

import numpy as np

from repro.datasets import generate_openaq
from repro.serve import (
    AsyncWarehouseService,
    HTTPConnection,
    WarehouseHTTPServer,
)
from repro.warehouse import WarehouseService

SHAPES = [
    "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country",
    "SELECT country, SUM(value) s FROM OpenAQ GROUP BY country",
    "SELECT country, COUNT(*) c FROM OpenAQ GROUP BY country",
    "SELECT COUNT(*) c FROM OpenAQ",
]

CONTRACT_KEYS = {
    "executed", "sample_name", "sample_version", "predicted_cv",
    "max_group_cv", "staleness", "fallback_exact", "satisfied",
}


def _percentiles(latencies: list) -> dict:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    array = np.asarray(latencies) * 1000.0
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p95_ms": float(np.percentile(array, 95)),
        "p99_ms": float(np.percentile(array, 99)),
    }


def _phase(latencies: list, elapsed: float, errors: int = 0) -> dict:
    out = {
        "queries": len(latencies),
        "seconds": elapsed,
        "qps": len(latencies) / elapsed if elapsed else float("inf"),
        "errors": errors,
        **_percentiles(latencies),
    }
    return out


async def _direct_phase(service, queries: int, clients: int) -> dict:
    latencies: list = []

    async def worker(count: int) -> None:
        for i in range(count):
            start = time.perf_counter()
            await service.query(SHAPES[i % len(SHAPES)])
            latencies.append(time.perf_counter() - start)

    start = time.perf_counter()
    share = max(1, queries // clients)
    await asyncio.gather(*(worker(share) for _ in range(clients)))
    return _phase(latencies, time.perf_counter() - start)


async def _http_phase(
    port: int, queries: int, clients: int
) -> dict:
    latencies: list = []
    errors = [0]

    async def worker(count: int) -> None:
        conn = await HTTPConnection.open("127.0.0.1", port)
        try:
            for i in range(count):
                start = time.perf_counter()
                status, payload = await conn.request(
                    "POST", "/query",
                    {"sql": SHAPES[i % len(SHAPES)], "limit": 5},
                )
                if status != 200 or not (
                    CONTRACT_KEYS <= set(payload.get("contract", {}))
                ):
                    errors[0] += 1
                    continue
                latencies.append(time.perf_counter() - start)
        finally:
            await conn.close()

    start = time.perf_counter()
    share = max(1, queries // clients)
    await asyncio.gather(*(worker(share) for _ in range(clients)))
    return _phase(latencies, time.perf_counter() - start, errors[0])


async def _swap_phase(
    service, port: int, batch, queries: int, clients: int
) -> dict:
    latencies: list = []
    errors = [0]
    versions: set = set()

    async def worker(count: int) -> None:
        conn = await HTTPConnection.open("127.0.0.1", port)
        try:
            for _ in range(count):
                start = time.perf_counter()
                status, payload = await conn.request(
                    "POST", "/query",
                    {"sql": SHAPES[0], "limit": 5},
                )
                if status != 200:
                    errors[0] += 1
                    continue
                versions.add(
                    payload["contract"].get("sample_version")
                )
                latencies.append(time.perf_counter() - start)
        finally:
            await conn.close()

    start = time.perf_counter()
    share = max(1, queries // clients)
    workers = [
        asyncio.ensure_future(worker(share)) for _ in range(clients)
    ]
    report = await service.refresh("bench", batch)
    await asyncio.gather(*workers)
    out = _phase(latencies, time.perf_counter() - start, errors[0])
    out["refresh_action"] = report.action
    out["versions_observed"] = sorted(
        v for v in versions if v is not None
    )
    return out


async def _contract_phase(port: int, repeats: int) -> dict:
    latencies: list = []
    fallbacks = rejections = errors = 0
    conn = await HTTPConnection.open("127.0.0.1", port)
    start = time.perf_counter()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            status, payload = await conn.request(
                "POST", "/query",
                {"sql": SHAPES[0], "max_cv": 1e-12},
            )
            latencies.append(time.perf_counter() - t0)
            if (
                status == 200
                and payload["contract"]["fallback_exact"]
            ):
                fallbacks += 1
            else:
                errors += 1
            t0 = time.perf_counter()
            status, payload = await conn.request(
                "POST", "/query",
                {"sql": SHAPES[0], "max_cv": 1e-12,
                 "on_violation": "reject"},
            )
            latencies.append(time.perf_counter() - t0)
            if status == 412 and payload.get("violations"):
                rejections += 1
            else:
                errors += 1
    finally:
        await conn.close()
    out = _phase(latencies, time.perf_counter() - start, errors)
    out["exact_fallbacks"] = fallbacks
    out["rejections_412"] = rejections
    return out


async def run(
    rows: int, budget: int, queries: int, clients: int, root: str
) -> dict:
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    n = table.num_rows
    base = table.take(np.arange(0, int(n * 0.8)))
    batch = table.take(np.arange(int(n * 0.8), n))

    sync_service = WarehouseService(root, {"OpenAQ": base})
    sync_service.build(
        "bench", "OpenAQ", group_by=["country", "parameter"],
        value_columns=["value"], budget=budget,
    )
    service = AsyncWarehouseService(
        sync_service, max_concurrency=max(4, clients)
    )
    server = await WarehouseHTTPServer(service, port=0).start()

    results = {
        "config": {
            "rows": rows,
            "budget": budget,
            "queries": queries,
            "clients": clients,
        }
    }
    try:
        results["direct"] = await _direct_phase(
            service, queries, clients
        )
        results["http"] = await _http_phase(
            server.port, queries, clients
        )
        results["http_swap"] = await _swap_phase(
            service, server.port, batch, queries, clients
        )
        results["contract"] = await _contract_phase(
            server.port, max(5, queries // (8 * clients))
        )
        results["pool"] = service.pool_stats()
    finally:
        await server.stop()
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (seconds, not minutes)",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None,
                        help="requests per phase")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent connections")
    parser.add_argument("--root", default=None, help="store directory")
    parser.add_argument("--out", default="bench_serve.json")
    args = parser.parse_args(argv)

    rows = args.rows or (8_000 if args.smoke else 120_000)
    budget = args.budget or (600 if args.smoke else 6_000)
    queries = args.queries or (200 if args.smoke else 4_000)
    clients = args.clients or (4 if args.smoke else 16)
    root = args.root or tempfile.mkdtemp(prefix="bench_serve_")

    results = asyncio.run(
        run(
            rows=rows, budget=budget, queries=queries,
            clients=clients, root=root,
        )
    )
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    for phase in ("direct", "http", "http_swap", "contract"):
        r = results[phase]
        print(
            f"{phase:10s} {r['qps']:8.0f} qps  "
            f"p50 {r['p50_ms']:6.2f}ms  p95 {r['p95_ms']:6.2f}ms  "
            f"p99 {r['p99_ms']:6.2f}ms  errors {r['errors']}"
        )
    print(
        f"swap observed versions: "
        f"{results['http_swap']['versions_observed']} "
        f"({results['http_swap']['refresh_action']})"
    )
    print(f"wrote {args.out}")
    failed = any(
        results[p]["errors"] for p in ("direct", "http", "http_swap")
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
