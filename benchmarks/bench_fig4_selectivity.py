"""Figure 4 — one materialized sample answers queries with predicates of
selectivity 25/50/75/100% (AQ3.a-c + AQ3 on OpenAQ; B2.a-c + B2 on
Bikes), Uniform / CS / RL / CVOPT.

Paper result: the greater the selectivity, the lower the error; CVOPT
has a lower error than CS and RL at every selectivity. The shape to
reproduce: per-method error at 100% <= error at 25% (monotone trend),
CVOPT best at each point.
"""

import pytest

from repro.aqp.runner import run_experiment
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import REPETITIONS, record_table, shape_check

OPENAQ_LADDER = ("AQ3.a", "AQ3.b", "AQ3.c", "AQ3")
BIKES_LADDER = ("B2.a", "B2.b", "B2.c", "B2")
LABELS = ("25%", "50%", "75%", "100%")


def _ladder(table, base_query, ladder, rate):
    """One sample (optimized for the base query) answers the ladder."""
    specs, derived = specs_from_sql(get_query(base_query).sql)
    samplers = make_samplers(specs, derived, include_sample_seek=False)
    tasks = [task_for(name) for name in ladder]
    outcome = run_experiment(
        table, tasks, samplers, rate=rate,
        repetitions=REPETITIONS, seed=31,
    )
    results = {}
    for method in samplers:
        results[method] = {
            label: outcome.get(method, name).max_error()
            for label, name in zip(LABELS, ladder)
        }
    return results


@pytest.mark.benchmark(group="fig4")
def test_fig4_selectivity_openaq(benchmark, openaq):
    results = benchmark.pedantic(
        _ladder, args=(openaq, "AQ3", OPENAQ_LADDER, 0.01),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark,
        "Figure 4a: max error vs predicate selectivity (AQ3.*)",
        results,
    )
    # Monotonicity holds for the stratified methods; Uniform's max error
    # is dominated by missing groups and too noisy at laptop scale.
    for method in ("CS", "RL", "CVOPT"):
        shape_check(
            results[method]["100%"] <= results[method]["25%"] * 1.1,
            f"{method}: higher selectivity must not raise error (OpenAQ)",
        )
    for label in LABELS:
        shape_check(
            results["CVOPT"][label]
            <= min(results["CS"][label], results["RL"][label]) * 1.5,
            f"CVOPT near-best at selectivity {label} (OpenAQ)",
        )


@pytest.mark.benchmark(group="fig4")
def test_fig4_selectivity_bikes(benchmark, bikes):
    results = benchmark.pedantic(
        _ladder, args=(bikes, "B2", BIKES_LADDER, 0.05),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark,
        "Figure 4b: max error vs predicate selectivity (B2.*)",
        results,
    )
    for label in LABELS:
        shape_check(
            results["CVOPT"][label]
            <= min(results["CS"][label], results["RL"][label]) * 1.2,
            f"CVOPT best or near-best at selectivity {label} (Bikes)",
        )
