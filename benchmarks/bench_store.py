"""Storage-backend benchmark: put/get throughput per backend.

Standalone script (like bench_warehouse / bench_serve) so CI can run it
in smoke mode and archive the JSON::

    PYTHONPATH=src python benchmarks/bench_store.py --smoke \
        --out bench_store.json

For every backend (npz, parquet, memory) it measures, against one
freshly built CVOPT sample:

* ``put``         — versions/second written (staging + rename + fsync'd
                    manifest commit + CURRENT swap)
* ``get_cold``    — loads/second through a *new* store instance
                    (manifest replay + meta decode + blob decode)
* ``get_hot``     — loads/second through the same instance (manifest
                    already tailed)
* ``versions``    — manifest-view listings/second
* ``bytes``       — on-disk footprint of one version

The parquet row reports whether pyarrow was actually available or the
backend ran in its npz-fallback mode.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets import generate_openaq
from repro.warehouse.backends import BACKENDS, ParquetArrowBackend
from repro.warehouse.store import SampleStore


def _throughput(fn, repetitions: int) -> dict:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "repetitions": repetitions,
        "per_second": repetitions / elapsed if elapsed else float("inf"),
    }


def bench_backend(
    backend_name: str, sample, root: str, puts: int, gets: int
) -> dict:
    shutil.rmtree(root, ignore_errors=True)
    store = SampleStore(root, backend=backend_name)
    out: dict = {"backend": backend_name}
    if backend_name == "parquet":
        out["pyarrow"] = ParquetArrowBackend().available

    out["put"] = _throughput(
        lambda: store.put("bench", sample, table_name="OpenAQ"), puts
    )
    out["get_hot"] = _throughput(lambda: store.get("bench"), gets)
    out["get_cold"] = _throughput(
        lambda: SampleStore(root, backend=backend_name).get("bench"), gets
    )
    out["versions"] = _throughput(
        lambda: store.versions("bench"), gets * 10
    )

    current = store.current_version("bench")
    version_dir = store.root / "bench" / current
    out["bytes"] = sum(
        f.stat().st_size for f in version_dir.rglob("*") if f.is_file()
    )
    out["manifest"] = store.manifest_position()
    return out


def run(rows: int, budget: int, puts: int, gets: int, root: str) -> dict:
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    sample = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country", "parameter"))]
    ).sample(table, budget, seed=0)
    results = {
        "config": {
            "rows": rows,
            "budget": budget,
            "puts": puts,
            "gets": gets,
            "sample_rows": sample.num_rows,
            "strata": sample.allocation.num_strata,
        },
        "backends": [],
    }
    for backend_name in BACKENDS:
        results["backends"].append(
            bench_backend(
                backend_name, sample, f"{root}/{backend_name}", puts, gets
            )
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--budget", type=int, default=10_000)
    parser.add_argument("--puts", type=int, default=20)
    parser.add_argument("--gets", type=int, default=50)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI (overrides --rows/--budget/...)",
    )
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args()
    if args.smoke:
        args.rows, args.budget = 20_000, 1_500
        args.puts, args.gets = 5, 10

    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        results = run(args.rows, args.budget, args.puts, args.gets, root)

    for entry in results["backends"]:
        note = ""
        if entry["backend"] == "parquet":
            note = " (pyarrow)" if entry["pyarrow"] else " (npz fallback)"
        print(
            f"{entry['backend']:>8}{note}: "
            f"put {entry['put']['per_second']:8.1f}/s  "
            f"get cold {entry['get_cold']['per_second']:8.1f}/s  "
            f"hot {entry['get_hot']['per_second']:8.1f}/s  "
            f"{entry['bytes'] / 1024:8.1f} KiB/version"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
