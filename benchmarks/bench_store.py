"""Storage-backend benchmark: put/get throughput per backend.

Standalone script (like bench_warehouse / bench_serve) so CI can run it
in smoke mode and archive the JSON::

    PYTHONPATH=src python benchmarks/bench_store.py --smoke \
        --out bench_store.json

For every backend (npz, parquet, memory) it measures, against one
freshly built CVOPT sample:

* ``put``         — versions/second written (staging + rename + fsync'd
                    manifest commit + CURRENT swap)
* ``get_cold``    — loads/second through a *new* store instance
                    (manifest replay + meta decode + blob decode)
* ``get_hot``     — loads/second through the same instance (manifest
                    already tailed)
* ``versions``    — manifest-view listings/second
* ``bytes``       — on-disk footprint of one version

The parquet row reports whether pyarrow was actually available or the
backend ran in its npz-fallback mode.

A second section exercises the zero-copy mmap backend against eager
npz on a wide (10-column) fixture and *gates* the run:

* ``cold+query``  — cold ``store.get`` plus the first projected query
                    must be ≥ 2x faster on mmap than on eager npz
* ``projected``   — reading 3 of the 10 columns via ``columns=`` must
                    be ≥ 2x faster than a full eager npz load
* ``differential``— the same queries on npz- and mmap-backed
                    warehouses (plain and 2-shard) must return
                    byte-identical answers

A failed gate exits non-zero so CI catches regressions.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

import numpy as np

from repro.aqp.session import AQPSession
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets import generate_openaq
from repro.warehouse.backends import BACKENDS, ParquetArrowBackend
from repro.warehouse.store import SampleStore


def _throughput(fn, repetitions: int) -> dict:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "repetitions": repetitions,
        "per_second": repetitions / elapsed if elapsed else float("inf"),
    }


def bench_backend(
    backend_name: str, sample, root: str, puts: int, gets: int
) -> dict:
    shutil.rmtree(root, ignore_errors=True)
    store = SampleStore(root, backend=backend_name)
    out: dict = {"backend": backend_name}
    if backend_name == "parquet":
        out["pyarrow"] = ParquetArrowBackend().available

    out["put"] = _throughput(
        lambda: store.put("bench", sample, table_name="OpenAQ"), puts
    )
    out["get_hot"] = _throughput(lambda: store.get("bench"), gets)
    out["get_cold"] = _throughput(
        lambda: SampleStore(root, backend=backend_name).get("bench"), gets
    )
    out["versions"] = _throughput(
        lambda: store.versions("bench"), gets * 10
    )

    current = store.current_version("bench")
    version_dir = store.root / "bench" / current
    out["bytes"] = sum(
        f.stat().st_size for f in version_dir.rglob("*") if f.is_file()
    )
    out["manifest"] = store.manifest_position()
    return out


def run(rows: int, budget: int, puts: int, gets: int, root: str) -> dict:
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    sample = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country", "parameter"))]
    ).sample(table, budget, seed=0)
    results = {
        "config": {
            "rows": rows,
            "budget": budget,
            "puts": puts,
            "gets": gets,
            "sample_rows": sample.num_rows,
            "strata": sample.allocation.num_strata,
        },
        "backends": [],
    }
    for backend_name in BACKENDS:
        results["backends"].append(
            bench_backend(
                backend_name, sample, f"{root}/{backend_name}", puts, gets
            )
        )
    return results


# ----------------------------------------------------------------------
# mmap cold-start / projection phases (gated)
# ----------------------------------------------------------------------
PROJECTION_QUERY = "SELECT country, AVG(value) a FROM Wide GROUP BY country"
PROJECTED_COLUMNS = ["country", "value", "__weight__"]

DIFFERENTIAL_QUERIES = [
    PROJECTION_QUERY,
    "SELECT country, SUM(value) s, COUNT(*) c FROM Wide "
    "GROUP BY country ORDER BY s DESC LIMIT 5",
    "SELECT parameter, MIN(value) lo, MAX(value) hi FROM Wide "
    "WHERE country = 'C00' GROUP BY parameter",
]


def _wide_table(rows: int):
    """The 10-column fixture: OpenAQ's 7 columns + 3 synthetic floats
    that no benchmark query ever touches (the projection's dead
    weight)."""
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    from repro.engine.table import Column, Table

    rng = np.random.default_rng(13)
    cols = {n: table.column(n) for n in table.column_names}
    for extra in ("m1", "m2", "m3"):
        cols[extra] = Column.from_values(rng.normal(size=rows))
    return Table(cols, name="Wide")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _touch_all(table) -> None:
    for cname in table.column_names:
        table.column(cname).data


def _cold_get_plus_query(root: str, backend: str, base_table):
    """Fresh store → get → register → one routed query: the serving
    cold-start path a restarted worker pays per sample."""

    def go():
        stored = SampleStore(root, backend=backend).get("bench")
        session = AQPSession(tables={"Wide": base_table})
        session.register_sample("bench", stored.sample, "Wide")
        result = session.query(PROJECTION_QUERY)
        assert result.route.approximate

    return go


def _answers_identical(a, b) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for cname in a.column_names:
        ca, cb = a.column(cname), b.column(cname)
        if ca.dtype is not cb.dtype or ca.categories != cb.categories:
            return False
        da, db = np.asarray(ca.data), np.asarray(cb.data)
        if da.dtype != db.dtype or not np.array_equal(da, db):
            return False
    return True


def _differential_check(root: str, table, budget: int) -> dict:
    """Byte-identical answers, npz vs mmap, plain and 2-shard."""
    from repro.warehouse import ShardedWarehouseService, WarehouseService

    def build_plain(backend):
        svc = WarehouseService(
            f"{root}/diff-plain-{backend}", {"Wide": table}, backend=backend
        )
        svc.build(
            "s", "Wide", group_by=["country", "parameter"],
            value_columns=["value"], budget=budget, seed=5,
        )
        return svc

    def build_sharded(backend):
        svc = ShardedWarehouseService(
            f"{root}/diff-shard-{backend}", {"Wide": table}, shards=2,
            backend=backend, workers="inprocess",
        )
        svc.build(
            "s", "Wide", group_by=["country", "parameter"],
            value_columns=["value"], budget=budget, seed=5,
        )
        return svc

    out = {}
    for topology, factory in (
        ("plain", build_plain),
        ("2-shard", build_sharded),
    ):
        eager = factory("npz")
        lazy = factory("mmap")
        try:
            out[topology] = all(
                _answers_identical(
                    eager.query(sql).table, lazy.query(sql).table
                )
                for sql in DIFFERENTIAL_QUERIES
            )
        finally:
            for svc in (eager, lazy):
                close = getattr(svc, "close", None)
                if close:
                    close()
    return out


def run_projection(rows: int, budget: int, root: str) -> dict:
    """Cold-start + projected-read phases on the 10-column fixture."""
    table = _wide_table(rows)
    sample = CVOptSampler(
        [GroupByQuerySpec.single("value", by=("country", "parameter"))]
    ).sample(table, budget, seed=0)

    roots = {}
    for backend in ("npz", "mmap"):
        roots[backend] = f"{root}/proj-{backend}"
        SampleStore(roots[backend], backend=backend).put(
            "bench", sample, table_name="Wide"
        )

    eager_full = _best_of(
        lambda: _touch_all(
            SampleStore(roots["npz"], backend="npz")
            .get("bench").sample.table
        )
    )
    mmap_cold_get = _best_of(
        lambda: SampleStore(roots["mmap"], backend="mmap").get("bench")
    )
    mmap_projected = _best_of(
        lambda: _touch_all(
            SampleStore(roots["mmap"], backend="mmap")
            .get("bench", columns=PROJECTED_COLUMNS).sample.table
        )
    )
    npz_projected = _best_of(
        lambda: _touch_all(
            SampleStore(roots["npz"], backend="npz")
            .get("bench", columns=PROJECTED_COLUMNS).sample.table
        )
    )
    npz_cold_query = _best_of(_cold_get_plus_query(roots["npz"], "npz", table))
    mmap_cold_query = _best_of(
        _cold_get_plus_query(roots["mmap"], "mmap", table)
    )

    differential = _differential_check(
        root, table, min(budget, 5_000)
    )

    phases = {
        "fixture": {
            "rows": rows,
            "budget": budget,
            "base_columns": len(table.column_names),
            "sample_rows": sample.num_rows,
            "projected_columns": PROJECTED_COLUMNS,
        },
        "npz_eager_full_seconds": eager_full,
        "npz_projected_seconds": npz_projected,
        "npz_cold_get_plus_query_seconds": npz_cold_query,
        "mmap_cold_get_seconds": mmap_cold_get,
        "mmap_projected_seconds": mmap_projected,
        "mmap_cold_get_plus_query_seconds": mmap_cold_query,
        "differential": differential,
    }
    phases["gates"] = {
        "cold_query_speedup": npz_cold_query / mmap_cold_query,
        "projected_speedup": eager_full / mmap_projected,
        "cold_query_pass": npz_cold_query / mmap_cold_query >= 2.0,
        "projected_pass": eager_full / mmap_projected >= 2.0,
        "differential_pass": all(differential.values()),
    }
    return phases


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--budget", type=int, default=10_000)
    parser.add_argument("--puts", type=int, default=20)
    parser.add_argument("--gets", type=int, default=50)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI (overrides --rows/--budget/...)",
    )
    parser.add_argument(
        "--projection-rows", type=int, default=300_000,
        help="rows of the 10-column projection fixture (fixed even in "
        "smoke: the gates are calibrated against it)",
    )
    parser.add_argument(
        "--projection-budget", type=int, default=20_000,
    )
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args()
    if args.smoke:
        args.rows, args.budget = 20_000, 1_500
        args.puts, args.gets = 5, 10

    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        results = run(args.rows, args.budget, args.puts, args.gets, root)
        results["projection"] = run_projection(
            args.projection_rows, args.projection_budget, root
        )

    for entry in results["backends"]:
        note = ""
        if entry["backend"] == "parquet":
            note = " (pyarrow)" if entry["pyarrow"] else " (npz fallback)"
        print(
            f"{entry['backend']:>8}{note}: "
            f"put {entry['put']['per_second']:8.1f}/s  "
            f"get cold {entry['get_cold']['per_second']:8.1f}/s  "
            f"hot {entry['get_hot']['per_second']:8.1f}/s  "
            f"{entry['bytes'] / 1024:8.1f} KiB/version"
        )

    proj = results["projection"]
    gates = proj["gates"]
    print(
        f"projection fixture: {proj['fixture']['rows']} rows x "
        f"{proj['fixture']['base_columns']} cols, "
        f"sample {proj['fixture']['sample_rows']} rows"
    )
    print(
        f"  cold get+query: npz {proj['npz_cold_get_plus_query_seconds']*1e3:8.2f} ms  "
        f"mmap {proj['mmap_cold_get_plus_query_seconds']*1e3:8.2f} ms  "
        f"speedup {gates['cold_query_speedup']:6.1f}x "
        f"({'PASS' if gates['cold_query_pass'] else 'FAIL'} >= 2x)"
    )
    print(
        f"  projected read (3/{proj['fixture']['base_columns']} cols): "
        f"eager npz {proj['npz_eager_full_seconds']*1e3:8.2f} ms  "
        f"mmap {proj['mmap_projected_seconds']*1e3:8.2f} ms  "
        f"speedup {gates['projected_speedup']:6.1f}x "
        f"({'PASS' if gates['projected_pass'] else 'FAIL'} >= 2x)"
    )
    print(
        "  differential (byte-identical npz vs mmap): "
        + ", ".join(
            f"{topo} {'OK' if ok else 'MISMATCH'}"
            for topo, ok in proj["differential"].items()
        )
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.out}")
    failed = [
        gate
        for gate in ("cold_query_pass", "projected_pass", "differential_pass")
        if not gates[gate]
    ]
    if failed:
        print(f"GATE FAILURE: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
