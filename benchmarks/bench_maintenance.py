"""Maintenance benchmark: refresh throughput and drift-check latency
as the number of tracked value columns grows.

Standalone script (like bench_store / bench_warehouse) so CI can run it
in smoke mode and archive the JSON::

    PYTHONPATH=src python benchmarks/bench_maintenance.py --smoke \
        --out bench_maintenance.json

For each tracked-column count k (1, 2, 4, ... up to ``--max-columns``)
it builds one sample over a synthetic table with k numeric columns and
measures:

* ``build_seconds``      — the two-pass multi-column build
* ``refresh``            — streamed batch ingest through
                           ``SampleMaintainer.refresh`` (store
                           round-trip included), reported as batches/s
                           and rows/s
* ``drift_check``        — ``allocation_drift_by_column`` over all k
                           columns, checks/second
* ``meta_bytes``         — size of the persisted ``meta.json`` (the
                           per-column moment blocks grow with k)

The interesting curve is how refresh rows/s decays with k: the
streaming pass keeps one Welford state per (stratum, column), so the
per-row cost is O(k) on top of the reservoir work.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

import numpy as np

from repro.engine.table import Table
from repro.warehouse.maintenance import (
    SampleMaintainer,
    allocation_drift_by_column,
)
from repro.warehouse.store import SampleStore


def make_table(rows: int, num_columns: int, num_groups: int, seed: int) -> Table:
    """Synthetic grouped table with ``num_columns`` numeric columns of
    varying dispersion (so the drift math has real work to do)."""
    rng = np.random.default_rng(seed)
    data = {
        "g": [f"g{int(i)}" for i in rng.integers(0, num_groups, rows)]
    }
    for c in range(num_columns):
        mean = 10.0 * (c + 1)
        std = 1.0 + 3.0 * c
        data[f"v{c}"] = np.abs(rng.normal(mean, std, rows)) + 0.1
    return Table.from_pydict(data, name="Bench")


def _throughput(fn, repetitions: int) -> dict:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "repetitions": repetitions,
        "per_second": repetitions / elapsed if elapsed else float("inf"),
    }


def bench_columns(
    num_columns: int,
    rows: int,
    batch_rows: int,
    budget: int,
    refreshes: int,
    drift_checks: int,
    root: str,
) -> dict:
    shutil.rmtree(root, ignore_errors=True)
    table = make_table(rows + batch_rows * refreshes, num_columns, 24, seed=7)
    base = table.take(np.arange(rows))
    columns = [f"v{c}" for c in range(num_columns)]
    maintainer = SampleMaintainer(SampleStore(root))

    start = time.perf_counter()
    maintainer.build(
        "bench", base, group_by=["g"], value_columns=columns,
        budget=budget, seed=0,
    )
    build_seconds = time.perf_counter() - start

    offsets = iter(range(rows, rows + batch_rows * refreshes, batch_rows))

    def one_refresh():
        lo = next(offsets)
        batch = table.take(np.arange(lo, lo + batch_rows))
        maintainer.refresh("bench", batch, seed=lo)

    refresh = _throughput(one_refresh, refreshes)
    refresh["rows_per_second"] = refresh["per_second"] * batch_rows

    sample = maintainer.store.get("bench").sample
    drift = _throughput(
        lambda: allocation_drift_by_column(sample, columns), drift_checks
    )

    stored = maintainer.store.get("bench")
    meta_bytes = (stored.path / "meta.json").stat().st_size
    return {
        "columns": num_columns,
        "strata": sample.allocation.num_strata,
        "build_seconds": build_seconds,
        "refresh": refresh,
        "drift_check": drift,
        "meta_bytes": meta_bytes,
    }


def run(
    rows: int,
    batch_rows: int,
    budget: int,
    refreshes: int,
    drift_checks: int,
    max_columns: int,
    root: str,
) -> dict:
    counts = []
    k = 1
    while k <= max_columns:
        counts.append(k)
        k *= 2
    results = {
        "config": {
            "rows": rows,
            "batch_rows": batch_rows,
            "budget": budget,
            "refreshes": refreshes,
            "drift_checks": drift_checks,
            "column_counts": counts,
        },
        "runs": [],
    }
    for num_columns in counts:
        results["runs"].append(
            bench_columns(
                num_columns, rows, batch_rows, budget, refreshes,
                drift_checks, f"{root}/k{num_columns}",
            )
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--batch-rows", type=int, default=10_000)
    parser.add_argument("--budget", type=int, default=5_000)
    parser.add_argument("--refreshes", type=int, default=4)
    parser.add_argument("--drift-checks", type=int, default=50)
    parser.add_argument("--max-columns", type=int, default=8)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI (overrides --rows/--budget/...)",
    )
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args()
    if args.smoke:
        args.rows, args.batch_rows, args.budget = 8_000, 1_000, 600
        args.refreshes, args.drift_checks = 2, 10
        args.max_columns = 4

    with tempfile.TemporaryDirectory(prefix="bench-maintenance-") as root:
        results = run(
            args.rows, args.batch_rows, args.budget, args.refreshes,
            args.drift_checks, args.max_columns, root,
        )

    for entry in results["runs"]:
        print(
            f"columns {entry['columns']:>3}: "
            f"build {entry['build_seconds']:6.2f}s  "
            f"refresh {entry['refresh']['rows_per_second']:9.0f} rows/s  "
            f"drift {entry['drift_check']['per_second']:8.1f}/s  "
            f"meta {entry['meta_bytes'] / 1024:7.1f} KiB"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
