"""Figure 2 — weighted aggregates: as the weight profile (w1, w2) moves
from favoring agg2 to favoring agg1, the error of agg1 falls and agg2's
rises (queries AQ2 on OpenAQ at 1%, B1 on Bikes at 5%).

Paper result: monotone trade-off across profiles 0.1/0.9 .. 0.9/0.1.
The shape to reproduce: err(agg1) at w1=0.9 is lower than at w1=0.1,
and err(agg2) moves the opposite way.

A faithful-reproduction caveat for AQ2: its agg2 is ``COUNT(*)``, which
this implementation answers *exactly* on the optimization grouping
(per-stratum populations are stored with the sample), so agg2's error
is identically 0 and — because COUNT contributes zero variance to the
optimization — scaling (w1, w2) cannot move the allocation at all
(Lemma 1 is scale-invariant). The paper's own Figure 2a shows agg2
errors of only 0.05-0.15% (their right-hand axis), i.e. the same
near-degeneracy. We therefore also run an AQ2' variant with two
informative aggregates (SUM(value), SUM(latitude)) to demonstrate the
mechanism on OpenAQ.
"""

import numpy as np
import pytest

from repro.aqp.errors import compare_results
from repro.aqp.runner import ground_truth
from repro.core.cvopt import CVOptSampler
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import record_table, shape_check

PROFILES = [(0.1, 0.9), (0.25, 0.75), (0.5, 0.5), (0.75, 0.25), (0.9, 0.1)]
REPS = 5


def _per_aggregate_errors(table, name, rate):
    query = get_query(name)
    truth = ground_truth(task_for(name), table)
    specs, derived = specs_from_sql(query.sql)
    spec = specs[0]
    results = {}
    for w1, w2 in PROFILES:
        sampler = CVOptSampler(spec.reweighted([w1, w2]), derived=derived)
        rng = np.random.default_rng(17)
        agg_errors = {1: [], 2: []}
        for _ in range(REPS):
            sample = sampler.sample_rate(table, rate, seed=rng)
            errors = compare_results(
                truth, sample.answer(query.sql, query.table_name)
            )
            for index in (1, 2):
                cells = [
                    e
                    for (key, col), e in errors.errors.items()
                    if col == f"agg{index}"
                ]
                agg_errors[index].append(np.mean(cells))
        results[f"w1={w1:.2f}"] = {
            "agg1": float(np.mean(agg_errors[1])),
            "agg2": float(np.mean(agg_errors[2])),
        }
    return results


@pytest.mark.benchmark(group="fig2")
def test_fig2_weighted_aq2(benchmark, openaq):
    results = benchmark.pedantic(
        _per_aggregate_errors, args=(openaq, "AQ2", 0.01),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark, "Figure 2a: AQ2 per-aggregate error vs weights", results
    )
    shape_check(
        results["w1=0.90"]["agg1"] <= results["w1=0.10"]["agg1"],
        "upweighting agg1 must lower agg1's error (AQ2)",
    )
    shape_check(
        results["w1=0.10"]["agg2"] <= results["w1=0.90"]["agg2"],
        "upweighting agg2 must lower agg2's error (AQ2)",
    )


AQ2_PRIME = """
SELECT country, parameter, unit,
       SUM(value) agg1, SUM(latitude) agg2
FROM OpenAQ
GROUP BY country, parameter, unit
"""


def _per_aggregate_errors_sql(table, sql, table_name, rate):
    from repro.aqp.runner import QueryTask

    task = QueryTask(name="q", sql=sql, table_name=table_name)
    truth = ground_truth(task, table)
    specs, derived = specs_from_sql(sql)
    spec = specs[0]
    results = {}
    for w1, w2 in PROFILES:
        sampler = CVOptSampler(spec.reweighted([w1, w2]), derived=derived)
        rng = np.random.default_rng(17)
        agg_errors = {1: [], 2: []}
        for _ in range(REPS):
            sample = sampler.sample_rate(table, rate, seed=rng)
            errors = compare_results(truth, sample.answer(sql, table_name))
            for index in (1, 2):
                cells = [
                    e
                    for (key, col), e in errors.errors.items()
                    if col == f"agg{index}"
                ]
                agg_errors[index].append(np.mean(cells))
        results[f"w1={w1:.2f}"] = {
            "agg1": float(np.mean(agg_errors[1])),
            "agg2": float(np.mean(agg_errors[2])),
        }
    return results


@pytest.mark.benchmark(group="fig2")
def test_fig2_weighted_aq2_prime(benchmark, openaq):
    results = benchmark.pedantic(
        _per_aggregate_errors_sql,
        args=(openaq, AQ2_PRIME, "OpenAQ", 0.01),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark,
        "Figure 2a': AQ2' (two informative aggregates) error vs weights",
        results,
    )
    shape_check(
        results["w1=0.90"]["agg1"] <= results["w1=0.10"]["agg1"],
        "upweighting agg1 must lower agg1's error (AQ2')",
    )
    shape_check(
        results["w1=0.10"]["agg2"] <= results["w1=0.90"]["agg2"],
        "upweighting agg2 must lower agg2's error (AQ2')",
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_weighted_b1(benchmark, bikes):
    results = benchmark.pedantic(
        _per_aggregate_errors, args=(bikes, "B1", 0.05),
        rounds=1, iterations=1,
    )
    record_table(
        benchmark, "Figure 2b: B1 per-aggregate error vs weights", results
    )
    shape_check(
        results["w1=0.90"]["agg1"] <= results["w1=0.10"]["agg1"] * 1.05,
        "upweighting agg1 must not raise agg1's error (B1)",
    )
    shape_check(
        results["w1=0.10"]["agg2"] <= results["w1=0.90"]["agg2"] * 1.05,
        "upweighting agg2 must not raise agg2's error (B1)",
    )
