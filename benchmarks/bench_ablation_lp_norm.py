"""Ablation — the l-p norm family (paper Section 8, future work):
how the error *distribution* across groups shifts as p moves from 2
(the paper's CVOPT) through intermediate norms to infinity (CVOPT-INF).

Expectation (generalizing Figure 6): the max error falls monotonically
with p while the median rises — the norm picks a point on that
trade-off curve.
"""

import numpy as np
import pytest

from repro.aqp.errors import compare_results
from repro.aqp.runner import QueryTask, ground_truth
from repro.core.cvopt import CVOptSampler
from repro.core.cvopt_inf import CVOptInfSampler
from repro.core.lp_norm import CVOptLpSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import make_grouped_table

from conftest import record_table, shape_check

SQL = "SELECT g, AVG(v) a FROM T GROUP BY g"
TASK = QueryTask(name="avg", sql=SQL, table_name="T")
SPEC = GroupByQuerySpec.single("v", by=("g",))
REPS = 8


def _run():
    rng = np.random.default_rng(6)
    sizes = np.maximum((60_000 * np.arange(1, 15) ** -1.2).astype(int), 60)
    means = rng.uniform(50, 500, 14)
    stds = means * rng.uniform(0.05, 1.5, 14)
    table = make_grouped_table(
        sizes=sizes, means=means, stds=stds, exact_moments=True
    )
    truth = ground_truth(TASK, table)

    samplers = {
        "p=2 (CVOPT)": CVOptSampler(SPEC),
        "p=4": CVOptLpSampler(SPEC, p=4),
        "p=8": CVOptLpSampler(SPEC, p=8),
        "p=inf (INF)": CVOptInfSampler(SPEC),
    }
    results = {}
    for label, sampler in samplers.items():
        rng2 = np.random.default_rng(77)
        maxes, medians = [], []
        for _ in range(REPS):
            sample = sampler.sample_rate(table, 0.01, seed=rng2)
            errors = compare_results(truth, sample.answer(SQL, "T"))
            maxes.append(errors.max_error())
            medians.append(errors.median_error())
        results[label] = {
            "median": float(np.mean(medians)),
            "max": float(np.mean(maxes)),
        }
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_lp_norm_family(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table(
        benchmark,
        "Ablation: l-p norm family, median vs max error (1% sample)",
        results,
    )
    labels = list(results)
    shape_check(
        results[labels[-1]]["max"] <= results[labels[0]]["max"] * 1.05,
        "the l-inf end must have max error <= the l2 end",
    )
    shape_check(
        results[labels[0]]["median"] <= results[labels[-1]]["median"] * 1.05,
        "the l2 end must have median error <= the l-inf end",
    )
