"""Sharded scatter-gather benchmark: throughput and latency vs shards.

Standalone like ``bench_serve.py`` so CI can run it in smoke mode and
archive the JSON::

    PYTHONPATH=src python benchmarks/bench_shard.py --smoke \
        --out bench_shard.json

For each topology (default 1, 2, 4 shards) the same sample is built
from the same seed and the same query mix is replayed:

* ``shards=1``  — the plain ``WarehouseService`` (the baseline path
                  ``--shards 1`` deployments use)
* ``shards=N``  — ``ShardedWarehouseService`` fanning every query out
                  to N shard workers and merging per-group moments

Every query carries a distinct WHERE literal so the per-epoch answer
cache never hits — each request pays the full scatter-gather path.
Reported per topology: qps, latency p50/p95/p99, refresh seconds for
one batch fold (parallel per-shard maintenance), and the answer of a
fixed probe query (must agree across topologies to rel 1e-9 — the
merge is exact, so a speedup that changes answers is a bug, not a
win).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time

import numpy as np

from repro.datasets import generate_openaq
from repro.warehouse import ShardedWarehouseService, WarehouseService

PROBE = "SELECT country, AVG(value) a FROM OpenAQ GROUP BY country"

SHAPES = [
    "SELECT country, AVG(value) a FROM OpenAQ WHERE value > {lit:.4f} "
    "GROUP BY country",
    "SELECT country, SUM(value) s, COUNT(*) c FROM OpenAQ "
    "WHERE value > {lit:.4f} GROUP BY country",
    "SELECT parameter, MIN(value) lo, MAX(value) hi FROM OpenAQ "
    "WHERE value > {lit:.4f} GROUP BY parameter",
    "SELECT country, STD(value) sd FROM OpenAQ "
    "WHERE value > {lit:.4f} GROUP BY country",
]


def _percentiles(latencies: list) -> dict:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    array = np.asarray(latencies) * 1000.0
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p95_ms": float(np.percentile(array, 95)),
        "p99_ms": float(np.percentile(array, 99)),
    }


def _probe_answer(service) -> dict:
    table = service.query(PROBE).table
    return dict(
        zip(
            table.column("country").decode(),
            (float(x) for x in table.column("a").data),
        )
    )


def _drive(service, queries: int, clients: int) -> tuple:
    """Replay the query mix from ``clients`` concurrent threads.

    Every request carries a unique literal (no cache hits), and the
    whole mix is pre-generated so the threads measure the service, not
    the generator. Concurrent clients are the realistic serving load —
    and the shape under which shard workers on separate cores can
    overlap work across in-flight queries.
    """
    rng = np.random.default_rng(123)
    mix = [
        SHAPES[i % len(SHAPES)].format(
            lit=float(rng.uniform(0.0, 5.0))
        )
        for i in range(queries)
    ]
    latencies: list = []
    errors = [0]
    lock = threading.Lock()

    def worker(chunk) -> None:
        local = []
        bad = 0
        for sql in chunk:
            t0 = time.perf_counter()
            try:
                result = service.query(sql)
                if not result.route.approximate:
                    bad += 1
            except Exception:
                bad += 1
                continue
            local.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(local)
            errors[0] += bad

    threads = [
        threading.Thread(target=worker, args=(mix[i::clients],))
        for i in range(clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, time.perf_counter() - start, errors[0]


def _bench_topology(
    shards: int, base, batch, budget: int, queries: int,
    clients: int, root: str, workers: str,
) -> dict:
    if shards == 1:
        service = WarehouseService(root, {"OpenAQ": base})
        closer = lambda: None  # noqa: E731
    else:
        service = ShardedWarehouseService(
            root, {"OpenAQ": base}, shards=shards, workers=workers
        )
        closer = service.close
    try:
        t0 = time.perf_counter()
        service.build(
            "bench", "OpenAQ", group_by=["country", "parameter"],
            value_columns=["value"], budget=budget, seed=7,
        )
        build_seconds = time.perf_counter() - t0
        # Probe BEFORE any refresh: at build time the shard slices are
        # an exact partition of the identical seed-7 sample, so every
        # topology must produce the same numbers. (After a refresh the
        # per-shard reservoirs draw different random rows — still
        # correct, but no longer bit-comparable.)
        probe = _probe_answer(service)
        latencies, elapsed, errors = _drive(service, queries, clients)
        t0 = time.perf_counter()
        report = service.refresh("bench", batch, seed=1)
        refresh_seconds = time.perf_counter() - t0
        return {
            "shards": shards,
            "queries": len(latencies),
            "seconds": elapsed,
            "qps": len(latencies) / elapsed if elapsed else 0.0,
            "errors": errors,
            **_percentiles(latencies),
            "build_seconds": build_seconds,
            "refresh_seconds": refresh_seconds,
            "refresh_action": report.action,
            "probe": probe,
        }
    finally:
        closer()


def run(
    rows: int, budget: int, queries: int, clients: int,
    topologies, workers: str,
) -> dict:
    table = generate_openaq(num_rows=rows, num_countries=20, seed=7)
    n = table.num_rows
    base = table.take(np.arange(0, int(n * 0.9)))
    batch = table.take(np.arange(int(n * 0.9), n))

    results = {
        "config": {
            "rows": rows,
            "budget": budget,
            "queries": queries,
            "clients": clients,
            "topologies": list(topologies),
            "workers": workers,
        },
        "topologies": {},
    }
    for shards in topologies:
        root = tempfile.mkdtemp(prefix=f"bench_shard_{shards}_")
        results["topologies"][str(shards)] = _bench_topology(
            shards, base, batch, budget, queries, clients, root,
            workers,
        )

    # Cross-topology checks: exact merge means identical probe answers.
    probes = {
        shards: entry.pop("probe")
        for shards, entry in results["topologies"].items()
    }
    reference = probes[str(topologies[0])]
    mismatches = 0
    for probe in probes.values():
        if set(probe) != set(reference):
            mismatches += 1
            continue
        for key, value in reference.items():
            if abs(probe[key] - value) > 1e-9 * max(
                abs(value), 1e-12
            ):
                mismatches += 1
                break
    results["probe_mismatches"] = mismatches

    baseline = results["topologies"].get("1")
    if baseline:
        results["speedup_vs_1"] = {
            shards: entry["qps"] / baseline["qps"]
            for shards, entry in results["topologies"].items()
            if baseline["qps"]
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (seconds, not minutes)",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None,
                        help="requests per topology")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent client threads")
    parser.add_argument(
        "--shards", default=None,
        help="comma-separated topologies (default 1,2,4)",
    )
    parser.add_argument(
        "--workers", choices=["process", "inprocess"],
        default="process",
        help="shard worker mode for the sharded topologies",
    )
    parser.add_argument("--out", default="bench_shard.json")
    args = parser.parse_args(argv)

    rows = args.rows or (10_000 if args.smoke else 150_000)
    budget = args.budget or (2_000 if args.smoke else 30_000)
    queries = args.queries or (40 if args.smoke else 400)
    clients = args.clients or (4 if args.smoke else 8)
    topologies = [
        int(s) for s in (args.shards or "1,2,4").split(",") if s
    ]

    results = run(
        rows, budget, queries, clients, topologies, args.workers
    )
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    for shards, entry in results["topologies"].items():
        line = (
            f"shards={shards:>2s} {entry['qps']:8.1f} qps  "
            f"p50 {entry['p50_ms']:7.2f}ms  "
            f"p95 {entry['p95_ms']:7.2f}ms  "
            f"refresh {entry['refresh_seconds']:6.2f}s  "
            f"errors {entry['errors']}"
        )
        speedup = results.get("speedup_vs_1", {}).get(shards)
        if speedup is not None and shards != "1":
            line += f"  ({speedup:.2f}x vs 1)"
        print(line)
    print(f"probe mismatches: {results['probe_mismatches']}")
    print(f"wrote {args.out}")
    failed = results["probe_mismatches"] or any(
        entry["errors"] for entry in results["topologies"].values()
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
