"""Table 5 — reusability: six queries (AQ3, AQ3.a-c, AQ5, AQ6) answered
by the single materialized sample optimized for AQ3. AQ5/AQ6 bring new
predicates; AQ6 also groups by a subset of AQ3's attributes.

Paper result (average error %): CVOPT 1.5 / 4.4 / 2.4 / 1.9 / 2.3 / 0.8
beats CS and RL on every query, with Uniform far behind (98-100% on the
full-selectivity queries due to missing groups). Shape: CVOPT best or
near-best on every reused query.
"""

import pytest

from repro.aqp.runner import run_experiment
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import REPETITIONS, record_table, shape_check

QUERIES = ("AQ3", "AQ3.a", "AQ3.b", "AQ3.c", "AQ5", "AQ6")
RATE = 0.01


def _run(openaq):
    specs, derived = specs_from_sql(get_query("AQ3").sql)
    samplers = make_samplers(specs, derived, include_sample_seek=False)
    tasks = [task_for(name) for name in QUERIES]
    outcome = run_experiment(
        openaq, tasks, samplers, rate=RATE,
        repetitions=REPETITIONS, seed=13,
    )
    return {
        method: {
            name: outcome.get(method, name).mean_error()
            for name in QUERIES
        }
        for method in samplers
    }


@pytest.mark.benchmark(group="table5")
def test_table5_reuse(benchmark, openaq):
    results = benchmark.pedantic(_run, args=(openaq,), rounds=1, iterations=1)
    record_table(
        benchmark,
        "Table 5: average error of six queries from the AQ3 sample",
        results,
    )
    for name in QUERIES:
        shape_check(
            results["CVOPT"][name]
            <= min(results["CS"][name], results["RL"][name]) * 1.25,
            f"CVOPT best or near-best on reused query {name}",
        )
        shape_check(
            results["CVOPT"][name] < results["Uniform"][name],
            f"CVOPT must beat Uniform on reused query {name}",
        )
