"""Ablations (beyond the paper's figures) on the allocation design
choices DESIGN.md calls out:

1. Allocation rule across heterogeneity regimes — CVOPT (l2) vs Senate
   vs Neyman vs proportional (house): which statistic matters when only
   sizes / only variances / only means / everything varies.
2. RL's missing cap-redistribution — how much budget the paper's
   critique actually costs on data with small, high-CV groups.
3. The representation floor (min_per_stratum) — coverage vs allocation
   freedom.
"""

import numpy as np
import pytest

from repro.aqp.errors import compare_results
from repro.aqp.runner import QueryTask, ground_truth
from repro.baselines import (
    CongressSampler,
    NeymanSampler,
    RLSampler,
    SenateSampler,
)
from repro.core.cvopt import CVOptSampler
from repro.core.spec import GroupByQuerySpec
from repro.datasets.synthetic import heterogeneity_scenario, make_grouped_table

from conftest import record_table, shape_check

SQL = "SELECT g, AVG(v) a FROM T GROUP BY g"
TASK = QueryTask(name="avg", sql=SQL, table_name="T")
SPEC = GroupByQuerySpec.single("v", by=("g",))


def _mean_error(sampler, table, truth, rate, reps=5, seed=0):
    rng = np.random.default_rng(seed)
    errors = []
    for _ in range(reps):
        sample = sampler.sample_rate(table, rate, seed=rng)
        errors.append(
            compare_results(truth, sample.answer(SQL, "T")).mean_error()
        )
    return float(np.mean(errors))


def _run_scenarios():
    samplers = {
        "Senate": SenateSampler(SPEC),
        "CS": CongressSampler(SPEC),
        "Neyman": NeymanSampler(SPEC),
        "CVOPT": CVOptSampler(SPEC),
    }
    results = {}
    for kind in ("sizes", "variances", "means", "mixed"):
        table = heterogeneity_scenario(kind, num_groups=20, seed=3)
        truth = ground_truth(TASK, table)
        for method, sampler in samplers.items():
            results.setdefault(method, {})[kind] = _mean_error(
                sampler, table, truth, rate=0.01, seed=11
            )
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_heterogeneity_regimes(benchmark):
    results = benchmark.pedantic(_run_scenarios, rounds=1, iterations=1)
    record_table(
        benchmark,
        "Ablation: mean error by heterogeneity regime (1% sample)",
        results,
    )
    for kind in ("variances", "means", "mixed"):
        competitors = [results[m][kind] for m in ("Senate", "CS", "Neyman")]
        shape_check(
            results["CVOPT"][kind] <= min(competitors) * 1.2,
            f"CVOPT best or near-best under '{kind}' heterogeneity",
        )
    # When only means differ (equal CVs), Neyman misallocates massively.
    shape_check(
        results["CVOPT"]["means"] <= results["Neyman"]["means"],
        "CV-based allocation must beat Neyman when means differ",
    )


def _run_rl_cap():
    table = make_grouped_table(
        sizes=[30, 50, 20_000, 20_000, 20_000],
        means=[10.0, 10.0, 10.0, 10.0, 10.0],
        stds=[9.0, 8.0, 3.0, 3.0, 3.0],
        seed=5,
        exact_moments=True,
    )
    truth = ground_truth(TASK, table)
    rl = RLSampler(SPEC)
    cvopt = CVOptSampler(SPEC)
    budget = 600
    rl_alloc = rl.allocation(table, budget)
    cvopt_alloc = cvopt.allocation(table, budget)
    return {
        "RL": {
            "budget_used": rl_alloc.total / budget,
            "mean_error": _mean_error(rl, table, truth, 0.01, seed=19),
        },
        "CVOPT": {
            "budget_used": cvopt_alloc.total / budget,
            "mean_error": _mean_error(cvopt, table, truth, 0.01, seed=19),
        },
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_rl_cap_without_redistribution(benchmark):
    results = benchmark.pedantic(_run_rl_cap, rounds=1, iterations=1)
    record_table(
        benchmark,
        "Ablation: RL's lost budget on small high-CV groups",
        results,
    )
    shape_check(
        results["RL"]["budget_used"] < 1.0 - 1e-9,
        "RL must waste budget when CV shares exceed small groups",
    )
    shape_check(
        results["CVOPT"]["budget_used"] >= 0.999,
        "CVOPT must spend the whole budget",
    )


def _run_floor():
    rng = np.random.default_rng(2)
    sizes = np.maximum((40_000 * np.arange(1, 25) ** -1.4).astype(int), 12)
    means = rng.uniform(20, 200, 24)
    stds = means * rng.uniform(0.1, 1.0, 24)
    table = make_grouped_table(
        sizes=sizes, means=means, stds=stds, exact_moments=True
    )
    truth = ground_truth(TASK, table)
    results = {}
    for floor in (0, 1, 3):
        sampler = CVOptSampler(SPEC, min_per_stratum=floor)
        rng2 = np.random.default_rng(41)
        missing, mean_err = [], []
        for _ in range(5):
            sample = sampler.sample_rate(table, 0.005, seed=rng2)
            errors = compare_results(truth, sample.answer(SQL, "T"))
            missing.append(errors.missing_groups)
            mean_err.append(errors.mean_error())
        results[f"floor={floor}"] = {
            "mean_error": float(np.mean(mean_err)),
            "missing_groups": float(np.mean(missing)) / 24,
        }
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_min_per_stratum(benchmark):
    results = benchmark.pedantic(_run_floor, rounds=1, iterations=1)
    record_table(
        benchmark,
        "Ablation: representation floor (0.5% sample, 24 groups)",
        results,
    )
    shape_check(
        results["floor=1"]["missing_groups"]
        <= results["floor=0"]["missing_groups"],
        "a floor of 1 must not increase missing groups",
    )
