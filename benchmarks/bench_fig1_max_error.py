"""Figure 1 — maximum error of MASG query AQ1 and SASG query AQ3 with a
1% sample, for Uniform / CS / RL / CVOPT.

Paper result (200M-row OpenAQ): AQ1 max errors about 135% / 51% / 51% /
9%; AQ3 about 100% / 53% / 56% / 11%. The shape to reproduce: Uniform is
worst by a wide margin (missing groups), CS and RL land in between, and
CVOPT is best.
"""

import pytest

from repro.aqp.runner import run_experiment
from repro.baselines import make_samplers
from repro.core.spec import specs_from_sql
from repro.queries import get_query, task_for

from conftest import REPETITIONS, record_table, shape_check

#: AQ3 runs at the paper's 1%. AQ1 aggregates a rare parameter sliced
#: further by year; at laptop scale (60k rows vs the paper's 200M) a 1%
#: sample holds almost no relevant rows for ANY method, so the AQ1 rate
#: is scaled to 5% to keep the comparison meaningful (see DESIGN.md).
RATES = {"AQ1": 0.05, "AQ3": 0.01}


def _run(openaq):
    results = {}
    for name in ("AQ1", "AQ3"):
        query = get_query(name)
        specs, derived = specs_from_sql(query.sql)
        samplers = make_samplers(specs, derived, include_sample_seek=False)
        outcome = run_experiment(
            openaq,
            [task_for(name)],
            samplers,
            rate=RATES[name],
            repetitions=REPETITIONS,
            seed=42,
        )
        for method in samplers:
            record = outcome.get(method, name)
            results.setdefault(method, {})[name] = {
                "max": record.max_error(),
                "mean": record.mean_error(),
            }
    return results


@pytest.mark.benchmark(group="fig1")
def test_fig1_max_error(benchmark, openaq):
    results = benchmark.pedantic(
        _run, args=(openaq,), rounds=1, iterations=1
    )
    record_table(
        benchmark,
        "Figure 1: max error (AQ1 MASG at 5%, AQ3 SASG at 1%)",
        {m: {q: r["max"] for q, r in per_q.items()} for m, per_q in results.items()},
    )
    record_table(
        benchmark,
        "Figure 1 (companion): mean error",
        {m: {q: r["mean"] for q, r in per_q.items()} for m, per_q in results.items()},
    )
    shape_check(
        results["CVOPT"]["AQ3"]["max"] <= results["Uniform"]["AQ3"]["max"],
        "CVOPT must beat Uniform on AQ3 max error",
    )
    shape_check(
        results["CVOPT"]["AQ3"]["max"]
        <= min(results["CS"]["AQ3"]["max"], results["RL"]["AQ3"]["max"]) * 1.1,
        "CVOPT must be best (or tied) on AQ3 max error",
    )
    # AQ1's outputs are differences of estimates; with near-zero true
    # changes the max relative error is an unstable order statistic at
    # laptop scale, so AQ1's ordering is checked on the mean.
    shape_check(
        results["CVOPT"]["AQ1"]["mean"]
        <= min(results[m]["AQ1"]["mean"] for m in ("Uniform", "CS", "RL")),
        "CVOPT must have the lowest AQ1 mean error",
    )
