"""The paper's evaluation queries (AQ1-AQ8, B1-B4) in the engine dialect.

Differences from the paper's Hive text, all documented:

* AQ6 is written with ``SUM(IF(value > 0.5, 1, 0))``. The paper prints
  ``COUNT(IF(value > 0.5, 1, 0))``, which in Hive counts *all* rows
  (the IF never yields NULL); the query's stated intent — "count the
  number of times the measurement ... is higher than 0.5" — is the SUM
  form.
* ``{input_table}`` in AQ6 is the OpenAQ table.
* The AQ3.a-c / B2.a-c selectivity variants (Section 6.3) restrict the
  hour-of-day window to 25/50/75% of the day; hours are uniform in the
  synthetic data so selectivity tracks the window width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .aqp.runner import QueryTask

__all__ = [
    "PaperQuery",
    "PAPER_QUERIES",
    "get_query",
    "task_for",
    "queries_for_dataset",
]


@dataclass(frozen=True)
class PaperQuery:
    """One evaluation query with its classification."""

    name: str
    sql: str
    table_name: str  # which dataset table it runs against
    kind: str  # SASG / MASG / SAMG / MAMG
    dataset: str  # "openaq" or "bikes"
    note: str = ""


AQ1 = PaperQuery(
    name="AQ1",
    kind="MASG",
    dataset="openaq",
    table_name="OpenAQ",
    note="join of two grouped CTEs; change of bc level per country",
    sql="""
WITH bc18 AS (
    SELECT country, AVG(value) AS avg_value,
           COUNT_IF(value > 0.04) AS high_cnt
    FROM OpenAQ
    WHERE parameter = 'bc' AND YEAR(local_time) = 2018
    GROUP BY country
),
bc17 AS (
    SELECT country, AVG(value) AS avg_value,
           COUNT_IF(value > 0.04) AS high_cnt
    FROM OpenAQ
    WHERE parameter = 'bc' AND YEAR(local_time) = 2017
    GROUP BY country
)
SELECT country,
       bc18.avg_value - bc17.avg_value AS avg_incre,
       bc18.high_cnt - bc17.high_cnt AS cnt_incre
FROM bc18 JOIN bc17 ON bc18.country = bc17.country
""",
)

AQ2 = PaperQuery(
    name="AQ2",
    kind="MASG",
    dataset="openaq",
    table_name="OpenAQ",
    sql="""
SELECT country, parameter, unit,
       SUM(value) agg1, COUNT(*) agg2
FROM OpenAQ
GROUP BY country, parameter, unit
""",
)

B1 = PaperQuery(
    name="B1",
    kind="MASG",
    dataset="bikes",
    table_name="Bikes",
    sql="""
SELECT from_station_id,
       AVG(age) agg1, AVG(trip_duration) agg2
FROM Bikes WHERE age > 0
GROUP BY from_station_id
""",
)

AQ3 = PaperQuery(
    name="AQ3",
    kind="SASG",
    dataset="openaq",
    table_name="OpenAQ",
    note="the BETWEEN 0 AND 24 window selects 100% of rows",
    sql="""
SELECT country, parameter, unit, AVG(value) average
FROM OpenAQ
WHERE HOUR(local_time) BETWEEN 0 AND 24
GROUP BY country, parameter, unit
""",
)


def _aq3_variant(name: str, high_hour: int, note: str) -> PaperQuery:
    return PaperQuery(
        name=name,
        kind="SASG",
        dataset="openaq",
        table_name="OpenAQ",
        note=note,
        sql=f"""
SELECT country, parameter, unit, AVG(value) average
FROM OpenAQ
WHERE HOUR(local_time) BETWEEN 0 AND {high_hour}
GROUP BY country, parameter, unit
""",
    )


AQ3A = _aq3_variant("AQ3.a", 5, "~25% selectivity")
AQ3B = _aq3_variant("AQ3.b", 11, "~50% selectivity")
AQ3C = _aq3_variant("AQ3.c", 17, "~75% selectivity")

B2 = PaperQuery(
    name="B2",
    kind="SASG",
    dataset="bikes",
    table_name="Bikes",
    sql="""
SELECT from_station_id, AVG(trip_duration) average
FROM Bikes WHERE trip_duration > 0
GROUP BY from_station_id
""",
)


def _b2_variant(name: str, high_hour: int, note: str) -> PaperQuery:
    return PaperQuery(
        name=name,
        kind="SASG",
        dataset="bikes",
        table_name="Bikes",
        note=note,
        sql=f"""
SELECT from_station_id, AVG(trip_duration) average
FROM Bikes
WHERE trip_duration > 0 AND HOUR(start_time) BETWEEN 0 AND {high_hour}
GROUP BY from_station_id
""",
    )


B2A = _b2_variant("B2.a", 5, "~25% selectivity")
B2B = _b2_variant("B2.b", 11, "~50% selectivity")
B2C = _b2_variant("B2.c", 17, "~75% selectivity")

AQ4 = PaperQuery(
    name="AQ4",
    kind="SASG",
    dataset="openaq",
    table_name="OpenAQ",
    note="group keys from a derived subquery; CONCAT month_year output",
    sql="""
SELECT AVG(value) average,
       country,
       CONCAT(month, '_', year) period
FROM (SELECT value,
             MONTH(local_time) AS month,
             YEAR(local_time) AS year,
             country
      FROM OpenAQ WHERE parameter = 'co')
GROUP BY country, month, year
""",
)

AQ5 = PaperQuery(
    name="AQ5",
    kind="SASG",
    dataset="openaq",
    table_name="OpenAQ",
    sql="""
SELECT country, parameter, unit, AVG(value) average
FROM OpenAQ WHERE latitude > 0
GROUP BY country, parameter, unit
""",
)

AQ6 = PaperQuery(
    name="AQ6",
    kind="SASG",
    dataset="openaq",
    table_name="OpenAQ",
    note="COUNT(IF(...)) in the paper; SUM(IF(...)) is the stated intent",
    sql="""
SELECT parameter, unit,
       SUM(IF(value > 0.5, 1, 0)) count_high
FROM OpenAQ WHERE country = 'VN'
GROUP BY parameter, unit
""",
)

AQ7 = PaperQuery(
    name="AQ7",
    kind="SAMG",
    dataset="openaq",
    table_name="OpenAQ",
    sql="""
SELECT country, parameter, SUM(value) total
FROM OpenAQ
GROUP BY country, parameter WITH CUBE
""",
)

B3 = PaperQuery(
    name="B3",
    kind="SAMG",
    dataset="bikes",
    table_name="Bikes",
    sql="""
SELECT from_station_id, year, SUM(trip_duration) total
FROM Bikes WHERE age > 0
GROUP BY from_station_id, year WITH CUBE
""",
)

AQ8 = PaperQuery(
    name="AQ8",
    kind="MAMG",
    dataset="openaq",
    table_name="OpenAQ",
    sql="""
SELECT country, parameter, SUM(value) total_value, SUM(latitude) total_lat
FROM OpenAQ
GROUP BY country, parameter WITH CUBE
""",
)

B4 = PaperQuery(
    name="B4",
    kind="MAMG",
    dataset="bikes",
    table_name="Bikes",
    sql="""
SELECT from_station_id, year,
       SUM(trip_duration) total_duration, SUM(age) total_age
FROM Bikes
GROUP BY from_station_id, year WITH CUBE
""",
)

PAPER_QUERIES: Dict[str, PaperQuery] = {
    q.name: q
    for q in (
        AQ1, AQ2, AQ3, AQ3A, AQ3B, AQ3C, AQ4, AQ5, AQ6, AQ7, AQ8,
        B1, B2, B2A, B2B, B2C, B3, B4,
    )
}


def get_query(name: str) -> PaperQuery:
    if name not in PAPER_QUERIES:
        raise KeyError(
            f"unknown query {name!r}; known: {', '.join(PAPER_QUERIES)}"
        )
    return PAPER_QUERIES[name]


def task_for(name: str) -> QueryTask:
    """The runner task of one paper query."""
    q = get_query(name)
    return QueryTask(name=q.name, sql=q.sql, table_name=q.table_name)


def queries_for_dataset(dataset: str) -> Tuple[PaperQuery, ...]:
    return tuple(
        q for q in PAPER_QUERIES.values() if q.dataset == dataset
    )
