"""Hash join (inner equi-join) between two tables.

Join keys are compared on decoded values so that dictionary-encoded
string columns from different tables (different category lists) match
correctly. Output columns are prefixed-disambiguated the way the SQL
layer expects: columns unique to one side keep their name; a name
appearing on both sides yields ``<left_alias>.<name>`` and
``<right_alias>.<name>``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .table import Table

__all__ = ["hash_join"]


def hash_join(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    left_alias: str = "left",
    right_alias: str = "right",
) -> Table:
    """Inner equi-join; returns matched rows from both sides."""
    if len(left_keys) != len(right_keys):
        raise ValueError("left and right key lists must have equal length")
    if not left_keys:
        raise ValueError("join requires at least one key")

    left_tuples = _key_tuples(left, left_keys)
    right_tuples = _key_tuples(right, right_keys)

    build = {}
    for idx, key in enumerate(right_tuples):
        build.setdefault(key, []).append(idx)

    left_idx = []
    right_idx = []
    for idx, key in enumerate(left_tuples):
        matches = build.get(key)
        if matches:
            left_idx.extend([idx] * len(matches))
            right_idx.extend(matches)

    left_take = np.asarray(left_idx, dtype=np.int64)
    right_take = np.asarray(right_idx, dtype=np.int64)

    shared = set(left.column_names) & set(right.column_names)
    out = {}
    for name in left.column_names:
        out_name = f"{left_alias}.{name}" if name in shared else name
        out[out_name] = left.column(name).take(left_take)
    for name in right.column_names:
        out_name = f"{right_alias}.{name}" if name in shared else name
        out[out_name] = right.column(name).take(right_take)
    return Table(out)


def _key_tuples(table: Table, keys: Sequence[str]) -> list:
    decoded = [table.column(k).decode() for k in keys]
    return list(zip(*decoded))
