"""Columnar in-memory table.

A :class:`Table` is a named, schema'd set of equal-length numpy columns.
String columns are dictionary-encoded: the physical array holds int32
codes and the :class:`Column` carries the category list. This keeps
group-by keys, filters, and joins fully vectorized.

Tables are immutable by convention: every operation returns a new Table
that shares (never copies) the untouched column buffers.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .schema import ColumnSpec, DType, Schema, infer_dtype

__all__ = ["Column", "Table"]


class Column:
    """One column: a physical numpy array plus logical-type metadata.

    A column can be *lazy*: constructed via :meth:`lazy` with a loader
    callable and a known length instead of a materialized array. The
    loader runs once, on first access to :attr:`data`, and its result is
    cached; until then the column answers ``len()`` and schema questions
    without any IO. The mmap storage backend uses this so ``store.get``
    is O(metadata) and untouched columns never open their files.
    """

    __slots__ = ("dtype", "categories", "_data", "_loader", "_length", "_code_index")

    def __init__(self, dtype: DType, data: np.ndarray, categories=None) -> None:
        self.dtype = dtype
        self._data = data
        self._loader = None
        self._length = None
        self._code_index = None
        if dtype is DType.STRING:
            if categories is None:
                raise ValueError("STRING column requires categories")
            self.categories = tuple(categories)
        else:
            if categories is not None:
                raise ValueError("only STRING columns carry categories")
            self.categories = None

    @property
    def data(self) -> np.ndarray:
        """Physical array; materializes a lazy column on first access."""
        if self._data is None:
            value = self._loader()
            # Keep ndarray subclasses (np.memmap stays a mapped view);
            # only coerce genuinely non-array loader results.
            self._data = (
                value if isinstance(value, np.ndarray) else np.asarray(value)
            )
            self._loader = None
        return self._data

    @property
    def materialized(self) -> bool:
        """Whether the physical array has been loaded into the process."""
        return self._data is not None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values, dtype: DType | None = None) -> "Column":
        """Build a column from a python sequence or numpy array."""
        if dtype is None:
            dtype = infer_dtype(values)
        if dtype is DType.STRING:
            return cls.from_strings(values)
        arr = np.asarray(values)
        if dtype is DType.TIMESTAMP and arr.dtype.kind == "M":
            arr = arr.astype("datetime64[s]").astype(np.int64)
        return cls(dtype, np.ascontiguousarray(arr, dtype=dtype.storage_dtype))

    @classmethod
    def from_strings(cls, values) -> "Column":
        values = np.asarray(values, dtype=object)
        categories, codes = np.unique(values.astype(str), return_inverse=True)
        return cls(
            DType.STRING,
            codes.astype(np.int32),
            categories=[str(c) for c in categories],
        )

    @classmethod
    def from_codes(cls, codes: np.ndarray, categories) -> "Column":
        return cls(DType.STRING, np.asarray(codes, dtype=np.int32), categories)

    @classmethod
    def lazy(cls, dtype: DType, loader, length: int, categories=None) -> "Column":
        """Build a column whose array is produced by ``loader()`` on
        first :attr:`data` access. ``length`` must match what the loader
        will return — it is what ``len()`` reports before
        materialization, and what :class:`Table` validates against."""
        col = cls.__new__(cls)
        col.dtype = dtype
        col._data = None
        col._loader = loader
        col._length = int(length)
        col._code_index = None
        if dtype is DType.STRING:
            if categories is None:
                raise ValueError("STRING column requires categories")
            col.categories = tuple(categories)
        else:
            if categories is not None:
                raise ValueError("only STRING columns carry categories")
            col.categories = None
        return col

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._data is None:
            return self._length
        return len(self._data)

    def decode(self) -> np.ndarray:
        """Materialize logical values (strings decoded, timestamps as ints)."""
        if self.dtype is DType.STRING:
            cats = np.asarray(self.categories, dtype=object)
            if len(self.data) == 0:
                return np.empty(0, dtype=object)
            return cats[self.data]
        return self.data

    def values_numeric(self) -> np.ndarray:
        """Numeric view for aggregation; raises for strings."""
        if self.dtype is DType.STRING:
            raise TypeError("cannot aggregate a STRING column numerically")
        if self.dtype is DType.BOOL:
            return self.data.astype(np.float64)
        return self.data

    def code_for(self, value: str) -> int:
        """Dictionary code of ``value``, or -1 if absent from the column.

        Sits on the equality-predicate fast path, so the category→code
        map is built once per column and memoized instead of scanning
        ``categories`` linearly on every call.
        """
        if self._code_index is None:
            self._code_index = {c: i for i, c in enumerate(self.categories)}
        return self._code_index.get(str(value), -1)

    def take(self, indices: np.ndarray) -> "Column":
        return Column(self.dtype, self.data[indices], self.categories)

    def filter(self, mask: np.ndarray) -> "Column":
        return Column(self.dtype, self.data[mask], self.categories)

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of the same logical type."""
        if self.dtype is not other.dtype:
            raise TypeError(f"cannot concat {self.dtype} with {other.dtype}")
        if self.dtype is DType.STRING:
            if self.categories == other.categories:
                return Column(
                    self.dtype,
                    np.concatenate([self.data, other.data]),
                    self.categories,
                )
            merged = list(self.categories)
            index = {c: i for i, c in enumerate(merged)}
            remap = np.empty(len(other.categories), dtype=np.int32)
            for i, cat in enumerate(other.categories):
                if cat not in index:
                    index[cat] = len(merged)
                    merged.append(cat)
                remap[i] = index[cat]
            other_codes = remap[other.data] if len(other.data) else other.data
            return Column(
                self.dtype,
                np.concatenate([self.data, other_codes]),
                merged,
            )
        return Column(self.dtype, np.concatenate([self.data, other.data]))

    # ------------------------------------------------------------------
    # pickling (lazy loaders are closures over file handles/paths and do
    # not pickle; a column crossing a process boundary materializes)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.dtype, np.asarray(self.data), self.categories)

    def __setstate__(self, state):
        dtype, data, categories = state
        self.dtype = dtype
        self._data = data
        self._loader = None
        self._length = None
        self._code_index = None
        self.categories = categories

    def __repr__(self) -> str:
        lazy = "" if self.materialized else ", lazy"
        return f"Column({self.dtype.value}, n={len(self)}{lazy})"


class Table:
    """Immutable columnar table.

    ``cache_token`` marks a table as one immutable published incarnation
    (the warehouse stamps sample tables with
    ``(scope, sample_name, version)``), which lets the group-code cache
    in :mod:`repro.engine.groupcache` reuse factorizations across
    queries. Every derived table (filter/take/select/...) is a new
    object whose token defaults to ``None``, so derived row sets can
    never alias a cached entry.
    """

    def __init__(self, columns: Mapping[str, Column], name: str = "") -> None:
        self._columns = dict(columns)
        self.name = name
        self.cache_token = None
        lengths = {len(c) for c in self._columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self._nrows = lengths.pop() if lengths else 0
        self._schema = Schema(
            ColumnSpec(name, col.dtype) for name, col in self._columns.items()
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pydict(cls, data: Mapping[str, Sequence], name: str = "") -> "Table":
        """Build a table from ``{column_name: values}``; types inferred."""
        return cls(
            {col: Column.from_values(vals) for col, vals in data.items()},
            name=name,
        )

    @classmethod
    def empty_like(cls, other: "Table") -> "Table":
        cols = {}
        for cname in other.column_names:
            col = other.column(cname)
            # storage_dtype avoids touching col.data (lazy columns stay lazy)
            cols[cname] = Column(
                col.dtype,
                np.empty(0, dtype=col.dtype.storage_dtype),
                col.categories,
            )
        return cls(cols, name=other.name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> tuple:
        return tuple(self._columns.keys())

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self.column_names)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        """Decoded values of one column (convenience for tests/examples)."""
        return self.column(name).decode()

    # ------------------------------------------------------------------
    # relational operations (all return new tables)
    # ------------------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        names = list(names)
        return Table({n: self.column(n) for n in names}, name=self.name)

    def with_column(self, name: str, column: Column) -> "Table":
        if len(column) != self._nrows:
            raise ValueError(
                f"column {name!r} has {len(column)} rows, table has {self._nrows}"
            )
        cols = dict(self._columns)
        cols[name] = column
        return Table(cols, name=self.name)

    def without_columns(self, names: Iterable[str]) -> "Table":
        drop = set(names)
        return Table(
            {n: c for n, c in self._columns.items() if n not in drop},
            name=self.name,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        cols = {}
        for n, c in self._columns.items():
            cols[mapping.get(n, n)] = c
        return Table(cols, name=self.name)

    def filter(self, mask: np.ndarray) -> "Table":
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TypeError("filter mask must be boolean")
        if len(mask) != self._nrows:
            raise ValueError("mask length does not match table")
        return Table(
            {n: c.filter(mask) for n, c in self._columns.items()}, name=self.name
        )

    def take(self, indices: np.ndarray) -> "Table":
        indices = np.asarray(indices)
        return Table(
            {n: c.take(indices) for n, c in self._columns.items()}, name=self.name
        )

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self._nrows)))

    def concat(self, other: "Table") -> "Table":
        """Vertically stack two tables with identical column names."""
        if set(self.column_names) != set(other.column_names):
            raise ValueError("concat requires identical column sets")
        return Table(
            {n: self.column(n).concat(other.column(n)) for n in self.column_names},
            name=self.name,
        )

    def duplicate(self, times: int) -> "Table":
        """Stack the table onto itself ``times`` times (paper's OpenAQ-25x)."""
        if times < 1:
            raise ValueError("times must be >= 1")
        cols = {}
        for n in self.column_names:
            col = self.column(n)
            cols[n] = Column(
                col.dtype, np.tile(col.data, times), col.categories
            )
        return Table(cols, name=self.name)

    # ------------------------------------------------------------------
    # interchange
    # ------------------------------------------------------------------
    def to_pydict(self) -> dict:
        return {n: list(self.column(n).decode()) for n in self.column_names}

    def row(self, i: int) -> dict:
        return {n: self.column(n).decode()[i] for n in self.column_names}

    def iter_rows(self):
        decoded = {n: self.column(n).decode() for n in self.column_names}
        for i in range(self._nrows):
            yield {n: decoded[n][i] for n in self.column_names}

    # ------------------------------------------------------------------
    # persistence (npz, columnar)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        payload = {"__name__": np.asarray([self.name])}
        for n in self.column_names:
            col = self.column(n)
            payload[f"data::{n}"] = col.data
            payload[f"type::{n}"] = np.asarray([col.dtype.value])
            if col.categories is not None:
                payload[f"cats::{n}"] = np.asarray(col.categories, dtype=object)
        np.savez_compressed(path, **payload, allow_pickle=True)

    @classmethod
    def load(cls, path, columns=None) -> "Table":
        """Load an npz table. ``columns`` restricts which members are
        decompressed (npz decodes per member on access, so skipped
        columns cost nothing); ``None`` loads everything."""
        wanted = None if columns is None else set(columns)
        with np.load(path, allow_pickle=True) as npz:
            name = str(npz["__name__"][0]) if "__name__" in npz else ""
            cols = {}
            for key in npz.files:
                if not key.startswith("data::"):
                    continue
                cname = key[len("data::"):]
                if wanted is not None and cname not in wanted:
                    continue
                dtype = DType(str(npz[f"type::{cname}"][0]))
                cats = None
                if f"cats::{cname}" in npz.files:
                    cats = [str(c) for c in npz[f"cats::{cname}"]]
                cols[cname] = Column(dtype, npz[key], cats)
        return cls(cols, name=name)

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self._nrows}, "
            f"columns=[{', '.join(self.column_names)}])"
        )
