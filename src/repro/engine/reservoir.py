"""Reservoir sampling (Vitter's Algorithm R) and stratified draws.

The paper's offline phase draws, within each stratum, ``s_c`` rows
uniformly without replacement using reservoir sampling (citing Vitter
[25]). We provide:

* :class:`Reservoir` — the classic streaming algorithm, one item at a
  time, exactly Algorithm R.
* :class:`StratifiedReservoir` — a dictionary of reservoirs keyed by
  stratum, fed by a single pass over (stratum, row) pairs.
* :func:`stratified_sample_indices` — a vectorized equivalent used on
  in-memory tables (identical distribution: each stratum's subset is a
  uniform ``s_c``-subset), plus weighted sampling without replacement
  (Efraimidis-Spirakis) for the measure-biased Sample+Seek baseline.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

import numpy as np

__all__ = [
    "Reservoir",
    "StratifiedReservoir",
    "stratified_sample_indices",
    "weighted_sample_without_replacement",
]


class Reservoir:
    """Uniform fixed-size sample of a stream (Algorithm R)."""

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._rng = rng
        self._items: list = []
        self._seen = 0

    @property
    def seen(self) -> int:
        return self._seen

    def offer(self, item) -> None:
        """Present one stream item to the reservoir."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        if self.capacity == 0:
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._items[j] = item

    def sample(self) -> list:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class StratifiedReservoir:
    """One reservoir per stratum, fed in a single streaming pass."""

    def __init__(
        self,
        capacities: Dict[Hashable, int],
        rng: np.random.Generator,
    ) -> None:
        self._reservoirs = {
            key: Reservoir(cap, rng) for key, cap in capacities.items()
        }

    def offer(self, stratum: Hashable, item) -> None:
        reservoir = self._reservoirs.get(stratum)
        if reservoir is not None:
            reservoir.offer(item)

    def samples(self) -> Dict[Hashable, list]:
        return {key: r.sample() for key, r in self._reservoirs.items()}

    def __getitem__(self, stratum: Hashable) -> Reservoir:
        return self._reservoirs[stratum]


def stratified_sample_indices(
    gids: np.ndarray,
    sizes_per_stratum: Sequence[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Row indices of a stratified SRS without replacement.

    ``gids`` are dense stratum ids per row; ``sizes_per_stratum[g]`` is
    the number of rows to draw from stratum ``g`` (clamped at the
    stratum's population). Returns sorted row indices.
    """
    gids = np.asarray(gids, dtype=np.int64)
    sizes = np.asarray(sizes_per_stratum, dtype=np.int64)
    n_strata = len(sizes)
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    starts = np.searchsorted(sorted_gids, np.arange(n_strata), side="left")
    ends = np.searchsorted(sorted_gids, np.arange(n_strata), side="right")
    chosen = []
    for g in range(n_strata):
        lo, hi = int(starts[g]), int(ends[g])
        population = hi - lo
        want = int(min(sizes[g], population))
        if want <= 0:
            continue
        if want == population:
            picked = order[lo:hi]
        else:
            offsets = rng.choice(population, size=want, replace=False)
            picked = order[lo + offsets]
        chosen.append(picked)
    if not chosen:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(chosen))


def weighted_sample_without_replacement(
    weights: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Efraimidis-Spirakis: draw ``size`` indices w/o replacement,
    inclusion biased towards large ``weights``.

    Rows with non-positive weight are never selected. Used by the
    measure-biased Sample+Seek baseline.
    """
    weights = np.asarray(weights, dtype=np.float64)
    eligible = np.flatnonzero(weights > 0)
    size = int(min(size, len(eligible)))
    if size == 0:
        return np.empty(0, dtype=np.int64)
    u = rng.random(len(eligible))
    # keys = u^(1/w); take the largest. Use log for numerical stability.
    with np.errstate(divide="ignore"):
        keys = np.log(u) / weights[eligible]
    top = np.argpartition(keys, -size)[-size:]
    return np.sort(eligible[top])
