"""One-pass per-stratum statistics.

The offline phase of every stratified sampler needs, for each stratum
``c`` and each aggregation column ``l``: the size ``n_c``, mean
``mu_{c,l}`` and population standard deviation ``sigma_{c,l}``. This
module computes them in a single vectorized pass (bincount moments), and
provides the streaming Welford accumulator the paper's single-pass
formulation implies, plus the *roll-up* used by multiple group-bys: the
statistics of a coarser group ``a`` are merged from the finest strata
``c in C(a)`` without touching the data again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from .groupby import GroupKeys, compute_group_keys
from .table import Table

__all__ = [
    "ColumnStats",
    "StrataStatistics",
    "WelfordAccumulator",
    "collect_strata_statistics",
    "rollup",
    "summarize_column_stats",
]


@dataclass
class ColumnStats:
    """Moments of one column within each stratum (arrays over strata)."""

    count: np.ndarray  # n_c
    total: np.ndarray  # sum of values
    total_sq: np.ndarray  # sum of squared values

    @property
    def mean(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.count > 0, self.total / self.count, np.nan)

    @property
    def variance(self) -> np.ndarray:
        """Population variance (ddof=0), clamped at zero."""
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = np.where(self.count > 0, self.total / self.count, np.nan)
            ex2 = np.where(self.count > 0, self.total_sq / self.count, np.nan)
        var = ex2 - mean**2
        return np.where(var < 0, 0.0, var)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def cv(self, mean_floor: float = 0.0) -> np.ndarray:
        """Coefficient of variation sigma/|mu| per stratum.

        ``mean_floor`` guards strata whose mean is (near) zero, where the
        CV is undefined (the paper assumes non-zero means): |mu| is
        floored at ``mean_floor * max|mu|``.
        """
        mean = np.abs(self.mean)
        if mean_floor > 0:
            finite = mean[np.isfinite(mean)]
            scale = float(finite.max()) if len(finite) else 0.0
            mean = np.maximum(mean, mean_floor * scale)
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.std / mean


@dataclass
class StrataStatistics:
    """Per-stratum statistics for a fixed stratification.

    ``keys`` holds the decoded key tuple of each stratum, aligned with
    every array. ``columns`` maps aggregation-column name to its
    :class:`ColumnStats`.
    """

    by: Tuple[str, ...]
    keys: list
    sizes: np.ndarray  # n_c, int64
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def num_strata(self) -> int:
        return len(self.keys)

    @property
    def total_rows(self) -> int:
        return int(self.sizes.sum())

    def key_index(self) -> dict:
        return {key: i for i, key in enumerate(self.keys)}

    def stats_for(self, column: str) -> ColumnStats:
        if column not in self.columns:
            raise KeyError(
                f"no statistics for column {column!r}; "
                f"collected: {', '.join(self.columns)}"
            )
        return self.columns[column]

    def column_summaries(self, mean_floor: float = 1e-9) -> Dict[str, Dict]:
        """JSON-ready per-column summary (``/stats``, CLI accounting)."""
        return {
            name: summarize_column_stats(cs, mean_floor=mean_floor)
            for name, cs in self.columns.items()
        }


def collect_strata_statistics(
    table: Table,
    by: Sequence[str],
    agg_columns: Sequence[str],
    keys: GroupKeys | None = None,
) -> StrataStatistics:
    """Single-pass statistics for stratification ``by``.

    ``keys`` may carry a pre-computed factorization (the samplers reuse
    one factorization for statistics and the sample draw).
    """
    if keys is None:
        keys = compute_group_keys(table, by)
    n_groups = keys.num_groups
    sizes = np.bincount(keys.gids, minlength=n_groups).astype(np.int64)
    stats = StrataStatistics(
        by=tuple(by),
        keys=keys.key_tuples(table),
        sizes=sizes,
    )
    for col_name in dict.fromkeys(agg_columns):  # dedupe, keep order
        values = table.column(col_name).values_numeric().astype(np.float64)
        total = np.bincount(keys.gids, weights=values, minlength=n_groups)
        total_sq = np.bincount(
            keys.gids, weights=values**2, minlength=n_groups
        )
        stats.columns[col_name] = ColumnStats(
            count=sizes.astype(np.float64), total=total, total_sq=total_sq
        )
    return stats


def rollup(
    fine: StrataStatistics, parent_gids: np.ndarray, num_parents: int
) -> StrataStatistics:
    """Merge finest-strata statistics into coarser groups.

    ``parent_gids[c]`` is the coarse-group id of fine stratum ``c``.
    Moments are additive, so no data pass is needed — this is exactly the
    property the paper relies on for multiple group-bys ("compute the CV
    of a stratum using statistics stored for strata in finer
    stratification").
    """
    parent_gids = np.asarray(parent_gids, dtype=np.int64)
    if len(parent_gids) != fine.num_strata:
        raise ValueError("parent_gids must have one entry per fine stratum")
    sizes = np.bincount(
        parent_gids, weights=fine.sizes.astype(np.float64), minlength=num_parents
    ).astype(np.int64)
    merged = StrataStatistics(
        by=(), keys=[None] * num_parents, sizes=sizes
    )
    for name, cs in fine.columns.items():
        merged.columns[name] = ColumnStats(
            count=np.bincount(
                parent_gids, weights=cs.count, minlength=num_parents
            ),
            total=np.bincount(
                parent_gids, weights=cs.total, minlength=num_parents
            ),
            total_sq=np.bincount(
                parent_gids, weights=cs.total_sq, minlength=num_parents
            ),
        )
    return merged


def summarize_column_stats(
    cs: ColumnStats, mean_floor: float = 1e-9
) -> Dict:
    """Scalar summary of one column's per-stratum moments.

    Collapses the stratum arrays into the figures monitoring cares
    about — how many strata carry data and how dispersed the column is
    (mean/max per-stratum data CV). Never raises on empty or
    degenerate strata; CVs that stay undefined are reported as None.
    """
    populated = int(np.count_nonzero(np.asarray(cs.count) > 0))
    cvs = cs.cv(mean_floor=mean_floor)
    finite = cvs[np.isfinite(cvs)]
    return {
        "strata": int(len(cs.count)),
        "populated_strata": populated,
        "mean_data_cv": float(finite.mean()) if len(finite) else None,
        "max_data_cv": float(finite.max()) if len(finite) else None,
    }


class WelfordAccumulator:
    """Streaming mean/variance (Welford), with parallel merge.

    Matches the one-pass statistics collection of the paper's offline
    phase; ``merge`` implements Chan et al.'s parallel update so shards
    of a distributed scan combine exactly.
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def add_many(self, values) -> None:
        for v in np.asarray(values, dtype=np.float64):
            self.add(float(v))

    def scale(self, factor: float) -> None:
        """Uniformly down-weight the accumulated mass.

        Scaling ``count`` and ``m2`` by the same factor leaves the mean
        and (population) variance unchanged — only the state's weight
        relative to later observations shrinks. This is the exponential
        -decay primitive: applied once per window boundary, older data
        contributes ``factor**age`` of its original mass to every
        subsequent re-balance decision. ``count`` becomes fractional;
        all downstream moment math is float already.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        self.count *= factor
        self.m2 *= factor

    def merge(self, other: "WelfordAccumulator") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta**2 * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Population variance (ddof=0)."""
        if self.count == 0:
            return float("nan")
        return max(self.m2 / self.count, 0.0)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def cv(self) -> float:
        if self.count == 0 or self.mean == 0:
            return float("nan")
        return self.std / abs(self.mean)
