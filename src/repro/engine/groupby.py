"""Vectorized group-by: factorization kernels, grouping sets, and CUBE.

The central object is :class:`GroupKeys` — dense group ids per row plus
one representative row index per group, from which key values for any
grouped column can be recovered without re-hashing.

Factorization runs through one of two kernels behind a cost rule (the
same shape as the planner's hash-vs-sort group-by rule):

* :func:`factorize_hash` — O(n) direct addressing over the integer key
  domain. Dictionary-encoded strings, int64/timestamp columns, bools,
  and the combined multi-key codes are all integers with a bounded
  value range, which covers every group-by key the engine produces.
* :func:`factorize_sort` — the ``np.unique`` sort path, O(n log n),
  kept as the fallback for floats, objects, and integer domains too
  wide to direct-address.

Both kernels emit *identical* output — dense int64 codes in ascending
value order with first-occurrence representatives — so routing is a pure
performance decision (proven by ``tests/properties/test_groupby_kernels.py``).

On top of the kernels, :func:`compute_group_keys` consults the
per-version group-code cache (:mod:`repro.engine.groupcache`) when the
table carries a ``cache_token``: sample versions are immutable, so a
repeated query shape skips factorization entirely.

``GROUP BY a, b WITH CUBE`` executes one grouping per subset of
``{a, b}`` (Hive semantics) and stacks the results; non-grouped key
columns take the marker value :data:`ALL_MARKER`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import default_tracer
from .aggregates import compute_aggregate
from .groupcache import default_group_code_cache
from .schema import DType
from .table import Column, Table

__all__ = [
    "ALL_MARKER",
    "GroupKeys",
    "factorize",
    "factorize_hash",
    "factorize_sort",
    "compute_group_keys",
    "compute_group_keys_sorted",
    "group_by_aggregate",
    "cube_grouping_sets",
]

#: Placeholder for "all values" in CUBE output rows (Hive prints NULL).
ALL_MARKER = "<ALL>"

#: Largest combined-code space the hash path can represent. Beyond this
#: the per-column code multiply would wrap int64 and alias distinct
#: keys, so grouping routes to the sort path instead.
_MAX_COMBINED_KEYSPACE = np.iinfo(np.int64).max

#: Cost rule for the direct-addressing kernel: hash when the integer
#: value range spans at most ``max(_HASH_DOMAIN_MIN, factor * n)``
#: slots. Dictionary codes and combined group codes are dense, so they
#: always qualify; sparse raw-integer keys (ids, epochs) qualify while
#: the LUT stays cache-friendly relative to the row count.
_HASH_DOMAIN_FACTOR = 4
_HASH_DOMAIN_MIN = 1 << 16

#: Absolute LUT ceiling for a *direct* ``factorize_hash`` call (~1 GiB
#: of int64 slots). The router's relative rule is stricter; this guards
#: explicit calls against pathological sparse domains.
_HASH_DOMAIN_LIMIT = 1 << 27


def factorize(arr: np.ndarray):
    """Dense codes + first-occurrence row index for each distinct value.

    Returns ``(codes, first_index)`` where ``codes`` is int64 in
    ``[0, k)`` and ``first_index[j]`` is a row whose value has code ``j``.
    Codes are assigned in ascending value order, identically by both
    kernels; this router picks the hash kernel when the cost rule
    allows and the sort kernel otherwise.
    """
    arr = np.asarray(arr)
    plan = _hash_plan(arr)
    if plan is not None:
        return _factorize_direct(*plan)
    return factorize_sort(arr)


def factorize_sort(arr: np.ndarray):
    """Sort-based kernel: ``np.unique`` (O(n log n)).

    Handles every dtype (floats with NaN, objects); the fallback when
    :func:`_hash_plan` declines.
    """
    uniques, first_index, codes = np.unique(
        arr, return_index=True, return_inverse=True
    )
    return codes.astype(np.int64), first_index.astype(np.int64, copy=False)


def factorize_hash(arr: np.ndarray):
    """Hash kernel: O(n) direct addressing over the integer key domain.

    Only defined for integer-kind arrays (bool/int/uint — which includes
    dictionary string codes and combined group codes); raises
    ``TypeError`` otherwise, and ``ValueError`` when the value range is
    too sparse to direct-address (> :data:`_HASH_DOMAIN_LIMIT` slots).
    Use :func:`factorize` unless a test needs to force this kernel.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind not in "biu":
        raise TypeError(
            f"factorize_hash needs an integer-kind array, got {arr.dtype}"
        )
    if len(arr) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    if arr.dtype.kind == "b":
        arr = arr.view(np.int8)
    lo = int(arr.min())
    domain = int(arr.max()) - lo + 1
    if domain > _HASH_DOMAIN_LIMIT:
        raise ValueError(
            f"value range {domain} too sparse to direct-address "
            f"(limit {_HASH_DOMAIN_LIMIT}); use factorize_sort"
        )
    return _factorize_direct(arr, lo, domain)


def _hash_plan(arr: np.ndarray):
    """``(arr, lo, domain)`` when the cost rule picks the hash kernel,
    else ``None``. Computes min/max once so the kernel does not rescan."""
    if arr.dtype.kind not in "biu" or len(arr) == 0:
        return None
    if arr.dtype.kind == "b":
        arr = arr.view(np.int8)
    lo = int(arr.min())
    domain = int(arr.max()) - lo + 1
    budget = max(_HASH_DOMAIN_MIN, _HASH_DOMAIN_FACTOR * len(arr))
    if domain > min(budget, _HASH_DOMAIN_LIMIT):
        return None
    return arr, lo, domain


def _factorize_direct(arr: np.ndarray, lo: int, domain: int):
    """Direct-addressing factorize: one presence LUT over ``[lo, hi]``.

    ``np.flatnonzero(present)`` yields the distinct offsets in ascending
    order, so codes come out in the same order ``np.unique`` would
    assign them. First occurrences are recovered with one reversed fancy
    assignment: writing row indices back-to-front leaves the *smallest*
    row index in each slot (duplicate-index assignment keeps the last
    write).
    """
    n = len(arr)
    # Subtraction cannot wrap: every offset is < domain, which the
    # caller has bounded well inside int64.
    offsets = (arr - lo).astype(np.int64, copy=False)
    present = np.zeros(domain, dtype=np.bool_)
    present[offsets] = True
    hits = np.flatnonzero(present)
    lut = np.empty(domain, dtype=np.int64)
    lut[hits] = np.arange(len(hits), dtype=np.int64)
    codes = lut[offsets]
    first_index = np.empty(len(hits), dtype=np.int64)
    first_index[codes[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
    return codes, first_index


@dataclass
class GroupKeys:
    """Result of factorizing one or more key columns jointly."""

    by: tuple
    gids: np.ndarray  # int64 per row, dense 0..num_groups-1
    num_groups: int
    representative: np.ndarray  # one source-row index per group

    def key_column(self, table: Table, name: str) -> Column:
        """Key values per group (length ``num_groups``) for one by-column."""
        src = table.column(name)
        return src.take(self.representative)

    def key_tuples(self, table: Table) -> list:
        """Decoded ``(v1, v2, ...)`` per group, aligned with group ids."""
        decoded = [
            self.key_column(table, name).decode() for name in self.by
        ]
        return list(zip(*decoded)) if decoded else [()] * self.num_groups


def compute_group_keys(table: Table, by: Sequence[str]) -> GroupKeys:
    """Jointly factorize ``by`` columns into dense group ids.

    Wide or high-cardinality keys whose combined code space does not fit
    in int64 are routed to :func:`compute_group_keys_sorted` (identical
    output), so the combined-code multiply can never wrap and alias
    distinct keys.

    Tables stamped with a ``cache_token`` (immutable published sample
    versions — see :mod:`repro.engine.groupcache`) are served from the
    per-version group-code cache: a warm hit returns the stored
    :class:`GroupKeys` without opening an ``engine.factorize`` span,
    annotating the enclosing span with ``factorize.cached`` instead.
    """
    by = tuple(by)
    n = table.num_rows
    if not by:
        return GroupKeys(
            by=(),
            gids=np.zeros(n, dtype=np.int64),
            num_groups=1 if n > 0 else 0,
            representative=np.zeros(min(n, 1), dtype=np.int64),
        )
    token = getattr(table, "cache_token", None)
    cache = default_group_code_cache() if token is not None else None
    if cache is not None:
        cached = cache.get(token, by)
        if cached is not None:
            default_tracer().annotate(**{"factorize.cached": True})
            return cached
    with default_tracer().span("engine.factorize", rows=n, keys=len(by)):
        all_codes = []
        cardinalities = []
        keyspace = 1  # python int: exact, no wraparound while checking
        for name in by:
            codes, first_index = factorize(table.column(name).data)
            all_codes.append(codes)
            # Codes are dense, so the unique count IS the cardinality —
            # computed once here, reused for the combine below.
            card = len(first_index) if len(codes) else 1
            cardinalities.append(card)
            keyspace *= card
        if keyspace > _MAX_COMBINED_KEYSPACE:
            result = _group_keys_from_codes(by, all_codes, n)
        else:
            combined = all_codes[0]
            for codes, card in zip(all_codes[1:], cardinalities[1:]):
                combined = combined * card + codes
            gids, first_index = factorize(combined)
            result = GroupKeys(
                by=by,
                gids=gids,
                num_groups=len(first_index),
                representative=first_index,
            )
    if cache is not None:
        cache.put(token, by, result)
    return result


def compute_group_keys_sorted(table: Table, by: Sequence[str]) -> GroupKeys:
    """Sort-based alternative to :func:`compute_group_keys`.

    Instead of combining per-column codes into one hashable key (which
    multiplies cardinalities and can overflow int64 for wide keys), rows
    are lexsorted by their per-column codes and group boundaries read
    off the sorted order. Produces *identical* output to the hash path:
    the same dense group ids in ascending lexicographic key order and
    the same first-occurrence representatives (lexsort is stable).
    """
    by = tuple(by)
    n = table.num_rows
    if not by or n == 0:
        return compute_group_keys(table, by)
    codes = [factorize(table.column(name).data)[0] for name in by]
    return _group_keys_from_codes(by, codes, n)


def _group_keys_from_codes(by: tuple, codes: list, n: int) -> GroupKeys:
    """Sort-based grouping over pre-factorized per-column codes."""
    if n == 0:
        return GroupKeys(
            by=by,
            gids=np.zeros(0, dtype=np.int64),
            num_groups=0,
            representative=np.zeros(0, dtype=np.int64),
        )
    # lexsort: last key is primary, so reverse to make by[0] primary.
    order = np.lexsort(tuple(reversed(codes)))
    stacked = np.stack([c[order] for c in codes], axis=0)
    change = np.empty(n, dtype=np.bool_)
    change[0] = True
    if n > 1:
        change[1:] = np.any(stacked[:, 1:] != stacked[:, :-1], axis=0)
    segment = np.cumsum(change) - 1
    gids = np.empty(n, dtype=np.int64)
    gids[order] = segment
    starts = np.flatnonzero(change)
    return GroupKeys(
        by=by,
        gids=gids,
        num_groups=len(starts),
        representative=order[starts],
    )


def group_by_aggregate(
    table: Table,
    by: Sequence[str],
    aggregates: Sequence[tuple],
    weights: np.ndarray | None = None,
) -> Table:
    """Grouped aggregation.

    ``aggregates`` is a sequence of ``(output_name, func, values)`` where
    ``values`` is a numpy array aligned with the table rows (or ``None``
    for ``COUNT(*)``). Returns a table with the key columns followed by
    one float64 column per aggregate.
    """
    keys = compute_group_keys(table, by)
    out = {}
    for name in keys.by:
        out[name] = keys.key_column(table, name)
    for out_name, func, values in aggregates:
        result = compute_aggregate(
            func, values, keys.gids, keys.num_groups, weights
        )
        out[out_name] = Column(DType.FLOAT64, result)
    return Table(out, name=table.name)


def cube_grouping_sets(attributes: Sequence[str]) -> list:
    """All subsets of ``attributes`` in Hive's WITH CUBE order.

    The full set comes first, then subsets by decreasing size, then the
    empty grouping (grand total).
    """
    attrs = tuple(attributes)
    n = len(attrs)
    sets = []
    for size in range(n, -1, -1):
        sets.extend(
            tuple(a for j, a in enumerate(attrs) if mask >> j & 1)
            for mask in _masks_of_size(n, size)
        )
    return sets


def _masks_of_size(n: int, size: int):
    return sorted(m for m in range(1 << n) if bin(m).count("1") == size)
