"""Vectorized group-by: factorization, grouping sets, and CUBE.

The central object is :class:`GroupKeys` — dense group ids per row plus
one representative row index per group, from which key values for any
grouped column can be recovered without re-hashing.

``GROUP BY a, b WITH CUBE`` executes one grouping per subset of
``{a, b}`` (Hive semantics) and stacks the results; non-grouped key
columns take the marker value :data:`ALL_MARKER`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import default_tracer
from .aggregates import compute_aggregate
from .schema import DType
from .table import Column, Table

__all__ = [
    "ALL_MARKER",
    "GroupKeys",
    "factorize",
    "compute_group_keys",
    "compute_group_keys_sorted",
    "group_by_aggregate",
    "cube_grouping_sets",
]

#: Placeholder for "all values" in CUBE output rows (Hive prints NULL).
ALL_MARKER = "<ALL>"

#: Largest combined-code space the hash path can represent. Beyond this
#: the per-column code multiply would wrap int64 and alias distinct
#: keys, so grouping routes to the sort path instead.
_MAX_COMBINED_KEYSPACE = np.iinfo(np.int64).max


def factorize(arr: np.ndarray):
    """Dense codes + first-occurrence row index for each distinct value.

    Returns ``(codes, first_index)`` where ``codes`` is int64 in
    ``[0, k)`` and ``first_index[j]`` is a row whose value has code ``j``.
    """
    uniques, first_index, codes = np.unique(
        arr, return_index=True, return_inverse=True
    )
    return codes.astype(np.int64), first_index


@dataclass
class GroupKeys:
    """Result of factorizing one or more key columns jointly."""

    by: tuple
    gids: np.ndarray  # int64 per row, dense 0..num_groups-1
    num_groups: int
    representative: np.ndarray  # one source-row index per group

    def key_column(self, table: Table, name: str) -> Column:
        """Key values per group (length ``num_groups``) for one by-column."""
        src = table.column(name)
        return src.take(self.representative)

    def key_tuples(self, table: Table) -> list:
        """Decoded ``(v1, v2, ...)`` per group, aligned with group ids."""
        decoded = [
            self.key_column(table, name).decode() for name in self.by
        ]
        return list(zip(*decoded)) if decoded else [()] * self.num_groups


def compute_group_keys(table: Table, by: Sequence[str]) -> GroupKeys:
    """Jointly factorize ``by`` columns into dense group ids.

    Wide or high-cardinality keys whose combined code space does not fit
    in int64 are routed to :func:`compute_group_keys_sorted` (identical
    output), so the combined-code multiply can never wrap and alias
    distinct keys.
    """
    by = tuple(by)
    n = table.num_rows
    if not by:
        return GroupKeys(
            by=(),
            gids=np.zeros(n, dtype=np.int64),
            num_groups=1 if n > 0 else 0,
            representative=np.zeros(min(n, 1), dtype=np.int64),
        )
    with default_tracer().span("engine.factorize", rows=n, keys=len(by)):
        all_codes = []
        keyspace = 1  # python int: exact, no wraparound while checking
        for name in by:
            codes, _ = factorize(table.column(name).data)
            all_codes.append(codes)
            keyspace *= int(codes.max()) + 1 if len(codes) else 1
        if keyspace > _MAX_COMBINED_KEYSPACE:
            return _group_keys_from_codes(by, all_codes, n)
        combined = all_codes[0]
        for codes in all_codes[1:]:
            k = int(codes.max()) + 1 if len(codes) else 1
            combined = combined * k + codes
        gids, first_index = factorize(combined)
        num_groups = len(first_index)
    return GroupKeys(
        by=by, gids=gids, num_groups=num_groups, representative=first_index
    )


def compute_group_keys_sorted(table: Table, by: Sequence[str]) -> GroupKeys:
    """Sort-based alternative to :func:`compute_group_keys`.

    Instead of combining per-column codes into one hashable key (which
    multiplies cardinalities and can overflow int64 for wide keys), rows
    are lexsorted by their per-column codes and group boundaries read
    off the sorted order. Produces *identical* output to the hash path:
    the same dense group ids in ascending lexicographic key order and
    the same first-occurrence representatives (lexsort is stable).
    """
    by = tuple(by)
    n = table.num_rows
    if not by or n == 0:
        return compute_group_keys(table, by)
    codes = [factorize(table.column(name).data)[0] for name in by]
    return _group_keys_from_codes(by, codes, n)


def _group_keys_from_codes(by: tuple, codes: list, n: int) -> GroupKeys:
    """Sort-based grouping over pre-factorized per-column codes."""
    if n == 0:
        return GroupKeys(
            by=by,
            gids=np.zeros(0, dtype=np.int64),
            num_groups=0,
            representative=np.zeros(0, dtype=np.int64),
        )
    # lexsort: last key is primary, so reverse to make by[0] primary.
    order = np.lexsort(tuple(reversed(codes)))
    stacked = np.stack([c[order] for c in codes], axis=0)
    change = np.empty(n, dtype=np.bool_)
    change[0] = True
    if n > 1:
        change[1:] = np.any(stacked[:, 1:] != stacked[:, :-1], axis=0)
    segment = np.cumsum(change) - 1
    gids = np.empty(n, dtype=np.int64)
    gids[order] = segment
    starts = np.flatnonzero(change)
    return GroupKeys(
        by=by,
        gids=gids,
        num_groups=len(starts),
        representative=order[starts],
    )


def group_by_aggregate(
    table: Table,
    by: Sequence[str],
    aggregates: Sequence[tuple],
    weights: np.ndarray | None = None,
) -> Table:
    """Grouped aggregation.

    ``aggregates`` is a sequence of ``(output_name, func, values)`` where
    ``values`` is a numpy array aligned with the table rows (or ``None``
    for ``COUNT(*)``). Returns a table with the key columns followed by
    one float64 column per aggregate.
    """
    keys = compute_group_keys(table, by)
    out = {}
    for name in keys.by:
        out[name] = keys.key_column(table, name)
    for out_name, func, values in aggregates:
        result = compute_aggregate(
            func, values, keys.gids, keys.num_groups, weights
        )
        out[out_name] = Column(DType.FLOAT64, result)
    return Table(out, name=table.name)


def cube_grouping_sets(attributes: Sequence[str]) -> list:
    """All subsets of ``attributes`` in Hive's WITH CUBE order.

    The full set comes first, then subsets by decreasing size, then the
    empty grouping (grand total).
    """
    attrs = tuple(attributes)
    n = len(attrs)
    sets = []
    for size in range(n, -1, -1):
        sets.extend(
            tuple(a for j, a in enumerate(attrs) if mask >> j & 1)
            for mask in _masks_of_size(n, size)
        )
    return sets


def _masks_of_size(n: int, size: int):
    return sorted(m for m in range(1 << n) if bin(m).count("1") == size)
