"""Vectorized group-by: factorization, grouping sets, and CUBE.

The central object is :class:`GroupKeys` — dense group ids per row plus
one representative row index per group, from which key values for any
grouped column can be recovered without re-hashing.

``GROUP BY a, b WITH CUBE`` executes one grouping per subset of
``{a, b}`` (Hive semantics) and stacks the results; non-grouped key
columns take the marker value :data:`ALL_MARKER`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .aggregates import compute_aggregate
from .schema import DType
from .table import Column, Table

__all__ = [
    "ALL_MARKER",
    "GroupKeys",
    "factorize",
    "compute_group_keys",
    "group_by_aggregate",
    "cube_grouping_sets",
]

#: Placeholder for "all values" in CUBE output rows (Hive prints NULL).
ALL_MARKER = "<ALL>"


def factorize(arr: np.ndarray):
    """Dense codes + first-occurrence row index for each distinct value.

    Returns ``(codes, first_index)`` where ``codes`` is int64 in
    ``[0, k)`` and ``first_index[j]`` is a row whose value has code ``j``.
    """
    uniques, first_index, codes = np.unique(
        arr, return_index=True, return_inverse=True
    )
    return codes.astype(np.int64), first_index


@dataclass
class GroupKeys:
    """Result of factorizing one or more key columns jointly."""

    by: tuple
    gids: np.ndarray  # int64 per row, dense 0..num_groups-1
    num_groups: int
    representative: np.ndarray  # one source-row index per group

    def key_column(self, table: Table, name: str) -> Column:
        """Key values per group (length ``num_groups``) for one by-column."""
        src = table.column(name)
        return src.take(self.representative)

    def key_tuples(self, table: Table) -> list:
        """Decoded ``(v1, v2, ...)`` per group, aligned with group ids."""
        decoded = [
            self.key_column(table, name).decode() for name in self.by
        ]
        return list(zip(*decoded)) if decoded else [()] * self.num_groups


def compute_group_keys(table: Table, by: Sequence[str]) -> GroupKeys:
    """Jointly factorize ``by`` columns into dense group ids."""
    by = tuple(by)
    n = table.num_rows
    if not by:
        return GroupKeys(
            by=(),
            gids=np.zeros(n, dtype=np.int64),
            num_groups=1 if n > 0 else 0,
            representative=np.zeros(min(n, 1), dtype=np.int64),
        )
    combined = None
    for name in by:
        codes, _ = factorize(table.column(name).data)
        if combined is None:
            combined = codes
        else:
            k = int(codes.max()) + 1 if len(codes) else 1
            combined = combined * k + codes
    gids, first_index = factorize(combined)
    num_groups = len(first_index)
    return GroupKeys(
        by=by, gids=gids, num_groups=num_groups, representative=first_index
    )


def group_by_aggregate(
    table: Table,
    by: Sequence[str],
    aggregates: Sequence[tuple],
    weights: np.ndarray | None = None,
) -> Table:
    """Grouped aggregation.

    ``aggregates`` is a sequence of ``(output_name, func, values)`` where
    ``values`` is a numpy array aligned with the table rows (or ``None``
    for ``COUNT(*)``). Returns a table with the key columns followed by
    one float64 column per aggregate.
    """
    keys = compute_group_keys(table, by)
    out = {}
    for name in keys.by:
        out[name] = keys.key_column(table, name)
    for out_name, func, values in aggregates:
        result = compute_aggregate(
            func, values, keys.gids, keys.num_groups, weights
        )
        out[out_name] = Column(DType.FLOAT64, result)
    return Table(out, name=table.name)


def cube_grouping_sets(attributes: Sequence[str]) -> list:
    """All subsets of ``attributes`` in Hive's WITH CUBE order.

    The full set comes first, then subsets by decreasing size, then the
    empty grouping (grand total).
    """
    attrs = tuple(attributes)
    n = len(attrs)
    sets = []
    for size in range(n, -1, -1):
        sets.extend(
            tuple(a for j, a in enumerate(attrs) if mask >> j & 1)
            for mask in _masks_of_size(n, size)
        )
    return sets


def _masks_of_size(n: int, size: int):
    return sorted(m for m in range(1 << n) if bin(m).count("1") == size)
