"""Per-version group-code cache.

Sample versions are immutable: once a :class:`~repro.engine.table.Table`
is published under ``(sample_name, version)``, its rows never change, so
the :class:`~repro.engine.groupby.GroupKeys` computed for any group-by
column tuple can be reused verbatim by every later query of the same
shape — the same idiom as the shape-keyed plan cache in
``aqp/session.py``, one layer down.

The cache is process-wide and keyed by a *cache token*
``(scope, sample_name, version)`` plus the group-by column tuple. The
scope disambiguates services that share one process but serve different
row sets under the same sample name and version — in-process shard
workers each see only their shard's slice, so each worker's
:class:`~repro.warehouse.service.WarehouseService` stamps tables with
its own scope (``shard-NN``). Tables without a token (base tables,
filtered or otherwise derived tables) bypass the cache entirely:
derived tables are new objects whose token defaults to ``None``, which
makes staleness impossible by construction.

Invalidation is belt and braces: the version inside the token already
isolates hot-swapped samples (a new version is a new key; old entries
age out of the LRU bound), and ``AQPSession.clear_plan_cache()`` —
called on every table/sample registration — additionally clears the
whole cache.

Lookups and stores are counted in
``repro_groupcode_cache_total{result=hit|miss|evict}``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..obs import default_registry

__all__ = ["GroupCodeCache", "default_group_code_cache"]

_CACHE_COUNTER = default_registry().counter(
    "repro_groupcode_cache_total",
    "Group-code cache lookups and evictions by result",
    ["result"],
)


class GroupCodeCache:
    """Bounded, thread-safe LRU of ``GroupKeys`` per immutable version.

    Keys are ``(token, by)`` where ``token`` identifies one immutable
    table incarnation and ``by`` is the group-by column tuple. Values
    are shared, never copied — ``GroupKeys`` consumers treat the arrays
    as read-only (the engine never mutates gids/representatives).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, token: Tuple, by: Tuple[str, ...]):
        key = (token, tuple(by))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                _CACHE_COUNTER.inc(result="miss")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            _CACHE_COUNTER.inc(result="hit")
            return entry

    def put(self, token: Tuple, by: Tuple[str, ...], keys) -> None:
        key = (token, tuple(by))
        with self._lock:
            self._entries[key] = keys
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                _CACHE_COUNTER.inc(result="evict")

    def invalidate(self, sample_name: Optional[str] = None) -> None:
        """Drop entries for one sample name (any scope/version), or all."""
        with self._lock:
            if sample_name is None:
                self._entries.clear()
                return
            stale = [
                key
                for key in self._entries
                if len(key[0]) >= 2 and key[0][1] == sample_name
            ]
            for key in stale:
                del self._entries[key]

    def counters(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT = GroupCodeCache()


def default_group_code_cache() -> GroupCodeCache:
    """The process-wide cache consulted by ``compute_group_keys``."""
    return _DEFAULT
