"""Columnar query-engine substrate.

The paper runs its experiments on Hive; this package provides the same
logical capabilities — scans, filters, vectorized group-by with CUBE,
hash joins, CTEs, and a SQL dialect covering all twelve evaluation
queries — over numpy-backed in-memory tables, plus the sampling-specific
machinery (one-pass stratum statistics, reservoir sampling).
"""

from .schema import ColumnSpec, DType, Schema
from .table import Column, Table
from .expr import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
    evaluate,
    evaluate_predicate,
)
from .groupby import (
    ALL_MARKER,
    GroupKeys,
    compute_group_keys,
    cube_grouping_sets,
    factorize,
    factorize_hash,
    factorize_sort,
    group_by_aggregate,
)
from .groupcache import GroupCodeCache, default_group_code_cache
from .join import hash_join
from .statistics import (
    ColumnStats,
    StrataStatistics,
    WelfordAccumulator,
    collect_strata_statistics,
    rollup,
)
from .reservoir import (
    Reservoir,
    StratifiedReservoir,
    stratified_sample_indices,
    weighted_sample_without_replacement,
)
from .sql import execute_query, execute_sql, parse_query

__all__ = [
    "DType",
    "Schema",
    "ColumnSpec",
    "Column",
    "Table",
    "Expr",
    "Literal",
    "ColumnRef",
    "Star",
    "BinOp",
    "UnaryOp",
    "FuncCall",
    "Between",
    "InList",
    "AggCall",
    "evaluate",
    "evaluate_predicate",
    "ALL_MARKER",
    "GroupKeys",
    "compute_group_keys",
    "factorize",
    "factorize_hash",
    "factorize_sort",
    "GroupCodeCache",
    "default_group_code_cache",
    "group_by_aggregate",
    "cube_grouping_sets",
    "hash_join",
    "ColumnStats",
    "StrataStatistics",
    "WelfordAccumulator",
    "collect_strata_statistics",
    "rollup",
    "Reservoir",
    "StratifiedReservoir",
    "stratified_sample_indices",
    "weighted_sample_without_replacement",
    "parse_query",
    "execute_query",
    "execute_sql",
]
