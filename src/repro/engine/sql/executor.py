"""Executor for the SQL subset.

Runs a parsed :class:`SelectQuery` against a catalog of named tables and
returns a result :class:`~repro.engine.table.Table`.

Weighted (approximate) execution: pass ``weight_column`` naming a
numeric column carrying per-row Horvitz-Thompson weights (``n_c / s_c``
for stratum ``c``). Aggregates then estimate full-data answers:
``SUM -> sum(w * x)``, ``COUNT -> sum(w)``, ``AVG`` their ratio. The
weight column is carried through filters, projections and subqueries, and
consumed at the first aggregation. This is how a CVOPT sample answers any
query from the dialect — including ones with predicates and groupings the
sample was not optimized for.
"""

from __future__ import annotations

import numpy as np

from ..expr import (
    AggCall,
    BinOp,
    ColumnRef,
    Expr,
    Star,
    collect_agg_calls,
    collect_column_refs,
    evaluate,
    evaluate_predicate,
    expr_to_sql,
    rewrite,
)
from ..groupby import (
    ALL_MARKER,
    compute_group_keys,
    cube_grouping_sets,
)
from ..aggregates import compute_aggregate
from ..join import hash_join
from ..schema import DType
from ..table import Column, Table
from .ast import (
    JoinClause,
    NamedTable,
    SelectQuery,
    SubqueryTable,
    TableRef,
)
from .parser import parse_query

__all__ = ["execute_sql", "execute_query", "QueryExecutionError"]


class QueryExecutionError(RuntimeError):
    """Raised when a query cannot be executed against the given tables."""


def execute_sql(
    sql: str, tables: dict, weight_column: str | None = None
) -> Table:
    """Parse and execute ``sql`` against ``tables`` (name -> Table)."""
    return execute_query(parse_query(sql), tables, weight_column)


def execute_query(
    query: SelectQuery, tables: dict, weight_column: str | None = None
) -> Table:
    catalog = dict(tables)
    for name, cte in query.ctes:
        catalog[name] = execute_query(cte, catalog, weight_column)

    working, bindings = _resolve_from(query.from_clause, catalog, weight_column)

    if query.where is not None:
        predicate = _resolve_expr(query.where, working, bindings)
        working = working.filter(evaluate_predicate(predicate, working))

    if query.is_aggregate:
        result = _execute_aggregate(query, working, bindings, weight_column)
    else:
        result = _execute_projection(query, working, bindings, weight_column)

    if query.order_by:
        result = _apply_order_by(result, query.order_by)
    if query.limit is not None:
        result = result.head(query.limit)
    return result


# ----------------------------------------------------------------------
# FROM resolution
# ----------------------------------------------------------------------
_DUAL = Table({"__dual__": Column(DType.INT64, np.zeros(1, dtype=np.int64))})


def _resolve_from(
    ref: TableRef | None, catalog: dict, weight_column: str | None
):
    if ref is None:
        return _DUAL, []
    if isinstance(ref, NamedTable):
        if ref.name not in catalog:
            raise QueryExecutionError(
                f"unknown table {ref.name!r}; "
                f"known: {', '.join(sorted(catalog))}"
            )
        return catalog[ref.name], [ref.binding]
    if isinstance(ref, SubqueryTable):
        table = execute_query(ref.query, catalog, weight_column)
        return table, [ref.binding]
    if isinstance(ref, JoinClause):
        return _execute_join(ref, catalog, weight_column)
    raise QueryExecutionError(f"unsupported FROM clause {type(ref).__name__}")


def _execute_join(ref: JoinClause, catalog: dict, weight_column: str | None):
    left, left_bindings = _resolve_from(ref.left, catalog, weight_column)
    right, right_bindings = _resolve_from(ref.right, catalog, weight_column)

    if (
        weight_column
        and weight_column in left
        and weight_column in right
    ):
        raise QueryExecutionError(
            "cannot join two weighted samples: sampling for joins is "
            "future work in the paper (Section 8)"
        )

    equalities, residual = _split_join_condition(ref.condition)
    left_keys, right_keys = [], []
    for lhs, rhs in equalities:
        placed = _place_equality(
            lhs, rhs, left, left_bindings, right, right_bindings
        )
        if placed is None:
            residual.append(BinOp("=", lhs, rhs))
        else:
            left_keys.append(placed[0])
            right_keys.append(placed[1])
    if not left_keys:
        raise QueryExecutionError(
            "JOIN ... ON requires at least one cross-side equality"
        )

    left_alias = left_bindings[0] if len(left_bindings) == 1 else "left"
    right_alias = right_bindings[0] if len(right_bindings) == 1 else "right"
    joined = hash_join(
        left, right, left_keys, right_keys,
        left_alias=left_alias, right_alias=right_alias,
    )
    bindings = left_bindings + right_bindings
    for condition in residual:
        predicate = _resolve_expr(condition, joined, bindings)
        joined = joined.filter(evaluate_predicate(predicate, joined))
    return joined, bindings


def _split_join_condition(condition: Expr):
    """Flatten an AND-tree into (equality pairs, residual predicates)."""
    equalities, residual = [], []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, BinOp) and node.op == "AND":
            stack.append(node.left)
            stack.append(node.right)
        elif (
            isinstance(node, BinOp)
            and node.op == "="
            and isinstance(node.left, ColumnRef)
            and isinstance(node.right, ColumnRef)
        ):
            equalities.append((node.left, node.right))
        else:
            residual.append(node)
    return equalities, residual


def _place_equality(lhs, rhs, left, left_bindings, right, right_bindings):
    """Assign an equality's two refs to the join sides, or None."""
    lhs_left = _try_resolve_name(lhs.name, left, left_bindings)
    lhs_right = _try_resolve_name(lhs.name, right, right_bindings)
    rhs_left = _try_resolve_name(rhs.name, left, left_bindings)
    rhs_right = _try_resolve_name(rhs.name, right, right_bindings)
    if lhs_left and rhs_right:
        return lhs_left, rhs_right
    if rhs_left and lhs_right:
        return rhs_left, lhs_right
    return None


# ----------------------------------------------------------------------
# column-reference resolution
# ----------------------------------------------------------------------
def _try_resolve_name(name: str, table: Table, bindings) -> str | None:
    if name in table:
        return name
    if "." in name:
        prefix, rest = name.split(".", 1)
        if prefix in bindings and rest in table:
            return rest
    qualified = [c for c in table.column_names if c.endswith("." + name)]
    if qualified:
        return qualified[0]  # leftmost source wins (documented dialect rule)
    return None


def _resolve_name(name: str, table: Table, bindings) -> str:
    resolved = _try_resolve_name(name, table, bindings)
    if resolved is None:
        raise QueryExecutionError(
            f"cannot resolve column {name!r}; "
            f"available: {', '.join(table.column_names)}"
        )
    return resolved


def _resolve_expr(expr: Expr, table: Table, bindings) -> Expr:
    mapping = {}
    for ref in collect_column_refs(expr):
        if ref in mapping:
            continue
        mapping[ref] = ColumnRef(_resolve_name(ref.name, table, bindings))
    return rewrite(expr, mapping)


# ----------------------------------------------------------------------
# projection (no aggregation)
# ----------------------------------------------------------------------
def _execute_projection(
    query: SelectQuery, working: Table, bindings, weight_column
) -> Table:
    out = {}
    for i, item in enumerate(query.items):
        expr = _resolve_expr(item.expr, working, bindings)
        name = item.alias or _output_name(item.expr, i)
        if isinstance(expr, ColumnRef):
            out[name] = working.column(expr.name)
        else:
            out[name] = _column_from_array(evaluate(expr, working))
    if (
        weight_column
        and weight_column in working
        and weight_column not in out
    ):
        out[weight_column] = working.column(weight_column)
    return Table(out)


def _output_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    return expr_to_sql(expr)


def _column_from_array(arr: np.ndarray) -> Column:
    arr = np.asarray(arr)
    if arr.dtype.kind in ("O", "U", "S"):
        return Column.from_strings(arr)
    if arr.dtype.kind == "b":
        return Column(DType.BOOL, arr)
    if arr.dtype.kind in ("i", "u"):
        return Column(DType.INT64, arr.astype(np.int64))
    return Column(DType.FLOAT64, arr.astype(np.float64))


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _execute_aggregate(
    query: SelectQuery, working: Table, bindings, weight_column
) -> Table:
    alias_map = {
        item.alias: item.expr for item in query.items if item.alias
    }

    # Group keys: plain refs use the table column; computed keys become
    # derived columns.
    key_names = []
    key_exprs = {}  # resolved group expr -> working column name
    derived = 0
    for expr in query.group_by:
        if isinstance(expr, ColumnRef) and expr.name in alias_map:
            expr = alias_map[expr.name]
        resolved = _resolve_expr(expr, working, bindings)
        if isinstance(resolved, ColumnRef):
            key_names.append(resolved.name)
            key_exprs[resolved] = resolved.name
        else:
            name = f"__key_{derived}"
            derived += 1
            working = working.with_column(
                name, _column_from_array(evaluate(resolved, working))
            )
            key_names.append(name)
            key_exprs[resolved] = name

    weights = None
    if weight_column and weight_column in working:
        weights = working.column(weight_column).values_numeric()

    # Collect every aggregate call in SELECT + HAVING, deduplicated.
    agg_calls = []
    for item in query.items:
        agg_calls.extend(collect_agg_calls(item.expr))
    if query.having is not None:
        agg_calls.extend(collect_agg_calls(query.having))
    agg_calls = list(dict.fromkeys(agg_calls))

    agg_inputs = []
    for call in agg_calls:
        if isinstance(call.arg, Star) or call.arg is None:
            agg_inputs.append((call.func, None))
        else:
            arg = _resolve_expr(call.arg, working, bindings)
            values = evaluate(arg, working)
            if values.dtype.kind in ("O", "U", "S"):
                raise QueryExecutionError(
                    f"cannot aggregate string expression {expr_to_sql(call.arg)}"
                )
            agg_inputs.append((call.func, values))

    placeholders = {
        call: ColumnRef(f"__agg_{i}") for i, call in enumerate(agg_calls)
    }

    if query.with_cube:
        return _execute_cube(
            query, working, bindings, key_names, key_exprs,
            agg_calls, agg_inputs, placeholders, weights, alias_map,
        )

    keys = compute_group_keys(working, key_names)
    num_groups = keys.num_groups
    if not key_names and num_groups == 0:
        # SQL semantics: a full-table aggregate over zero rows still
        # returns one row (COUNT = 0, SUM = 0, AVG = NULL/NaN).
        num_groups = 1
    if key_names:
        gtable = Table(
            {name: keys.key_column(working, name) for name in key_names}
        )
    else:
        gtable = _empty_context(num_groups)
    extra = {}
    for i, (func, values) in enumerate(agg_inputs):
        extra[f"__agg_{i}"] = compute_aggregate(
            func, values, keys.gids, num_groups, weights
        )
    return _assemble_group_output(
        query, gtable, extra, key_exprs, placeholders, bindings
    )


def _assemble_group_output(
    query, gtable, extra, key_exprs, placeholders, bindings
) -> Table:
    if query.having is not None:
        having = _resolve_group_expr(
            rewrite(query.having, placeholders), gtable, key_exprs, bindings
        )
        mask = evaluate_predicate(having, gtable, extra)
        gtable = gtable.filter(mask)
        extra = {k: v[mask] for k, v in extra.items()}

    out = {}
    for i, item in enumerate(query.items):
        expr = _resolve_group_expr(
            rewrite(item.expr, placeholders), gtable, key_exprs, bindings
        )
        name = item.alias or _output_name(item.expr, i)
        if isinstance(expr, ColumnRef) and expr.name in gtable:
            out[name] = gtable.column(expr.name)
        else:
            out[name] = _column_from_array(evaluate(expr, gtable, extra))
    return Table(out)


def _resolve_group_expr(expr, gtable, key_exprs, bindings) -> Expr:
    """Resolve an expression in group context.

    Aggregate calls were already replaced by ``__agg_i`` placeholder
    refs. A subtree equal to a GROUP BY expression maps to its key
    column; any other plain column reference must be a key column
    (standard SQL rule).
    """
    if expr in key_exprs:
        return ColumnRef(key_exprs[expr])
    if isinstance(expr, ColumnRef):
        if expr.name.startswith("__agg_"):
            return expr
        resolved = _try_resolve_name(expr.name, gtable, bindings)
        if resolved is None:
            raise QueryExecutionError(
                f"column {expr.name!r} must appear in GROUP BY or inside "
                "an aggregate"
            )
        return ColumnRef(resolved)
    mapping = {}
    for child_key, column in key_exprs.items():
        mapping[child_key] = ColumnRef(column)
    partially = rewrite(expr, mapping)
    # Resolve any remaining refs against the group table.
    refs = {}
    for ref in collect_column_refs(partially):
        if ref.name in gtable or ref.name.startswith("__agg_"):
            continue
        resolved = _try_resolve_name(ref.name, gtable, bindings)
        if resolved is None:
            raise QueryExecutionError(
                f"column {ref.name!r} must appear in GROUP BY or inside "
                "an aggregate"
            )
        refs[ref] = ColumnRef(resolved)
    return rewrite(partially, refs)


def _execute_cube(
    query, working, bindings, key_names, key_exprs,
    agg_calls, agg_inputs, placeholders, weights, alias_map,
) -> Table:
    """GROUP BY ... WITH CUBE: one grouping per subset, stacked.

    Key columns are stringified so that :data:`ALL_MARKER` can stand in
    for "all values" on the non-grouped attributes (Hive prints NULL).
    """
    pieces = []
    for subset in cube_grouping_sets(key_names):
        keys = compute_group_keys(working, list(subset))
        extra = {}
        for i, (func, values) in enumerate(agg_inputs):
            extra[f"__agg_{i}"] = compute_aggregate(
                func, values, keys.gids, keys.num_groups, weights
            )
        out = {}
        for i, item in enumerate(query.items):
            expr = item.expr
            if isinstance(expr, ColumnRef) and expr.name in alias_map:
                expr = alias_map[expr.name]
            resolved = _resolve_expr(expr, working, bindings) if not isinstance(
                expr, AggCall
            ) else expr
            name = item.alias or _output_name(item.expr, i)
            if isinstance(resolved, AggCall) or collect_agg_calls(expr):
                rewritten = rewrite(
                    expr if isinstance(expr, AggCall) else resolved,
                    placeholders,
                )
                out[name] = _column_from_array(
                    evaluate(rewritten, _empty_context(keys.num_groups), extra)
                )
            elif isinstance(resolved, ColumnRef) and resolved.name in key_names:
                if resolved.name in subset:
                    values = keys.key_column(working, resolved.name).decode()
                    out[name] = Column.from_strings(
                        np.asarray([str(v) for v in values], dtype=object)
                    )
                else:
                    out[name] = Column.from_strings(
                        np.asarray([ALL_MARKER] * keys.num_groups, dtype=object)
                    )
            else:
                raise QueryExecutionError(
                    "WITH CUBE SELECT items must be grouped columns or "
                    f"aggregates, got {expr_to_sql(item.expr)}"
                )
        pieces.append(Table(out))
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.concat(piece)
    return result


def _empty_context(n: int) -> Table:
    return Table({"__rows__": Column(DType.INT64, np.zeros(n, dtype=np.int64))})


def _apply_order_by(result: Table, order_by) -> Table:
    sort_keys = []
    for item in order_by:
        expr = _resolve_expr(item.expr, result, [])
        values = evaluate(expr, result)
        if values.dtype.kind in ("O", "U", "S"):
            values = np.asarray([str(v) for v in values])
        sort_keys.append((values, item.ascending))
    # numpy lexsort: last key is primary.
    arrays = []
    for values, ascending in reversed(sort_keys):
        if not ascending:
            if values.dtype.kind in ("U", "S"):
                # Invert string order via negative rank.
                _, inverse = np.unique(values, return_inverse=True)
                arrays.append(-inverse)
            else:
                arrays.append(-values)
        else:
            arrays.append(values)
    order = np.lexsort(arrays)
    return result.take(order)
