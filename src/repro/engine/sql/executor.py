"""Public execution facade for the SQL subset.

``execute_sql``/``execute_query`` are thin wrappers over the three-layer
pipeline: the logical planner (:mod:`repro.engine.sql.planner`) lowers a
parsed :class:`SelectQuery` into a plan tree, an optional rewrite pass
turns exact aggregates into weighted Horvitz-Thompson estimators, and
the physical layer (:mod:`repro.engine.sql.operators`) compiles the plan
into composable operators over :class:`~repro.engine.table.Table`.

Weighted (approximate) execution: pass ``weight_column`` naming a
numeric column carrying per-row Horvitz-Thompson weights (``n_c / s_c``
for stratum ``c``). Aggregates then estimate full-data answers:
``SUM -> sum(w * x)``, ``COUNT -> sum(w)``, ``AVG`` their ratio. The
weight column is carried through filters, projections and subqueries, and
consumed at the first aggregation. This is how a CVOPT sample answers any
query from the dialect — including ones with predicates and groupings the
sample was not optimized for.
"""

from __future__ import annotations

from ..table import Table
from .ast import SelectQuery
from .errors import QueryExecutionError
from .operators import compile_plan
from .parser import parse_query
from .planner import apply_weighting, lower_query

__all__ = [
    "execute_sql",
    "execute_query",
    "plan_query",
    "QueryExecutionError",
]


def plan_query(
    query: SelectQuery,
    weight_column: str | None = None,
    group_strategy: str | None = None,
):
    """Lower, rewrite, and compile ``query`` into a runnable plan."""
    plan = lower_query(query)
    if weight_column:
        plan = apply_weighting(plan, weight_column)
    return compile_plan(plan, group_strategy)


def execute_sql(
    sql: str, tables: dict, weight_column: str | None = None
) -> Table:
    """Parse and execute ``sql`` against ``tables`` (name -> Table)."""
    return execute_query(parse_query(sql), tables, weight_column)


def execute_query(
    query: SelectQuery, tables: dict, weight_column: str | None = None
) -> Table:
    return plan_query(query, weight_column).run(tables)
