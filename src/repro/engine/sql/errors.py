"""Shared SQL-execution error type.

Lives in its own module so the planner, the physical operators, and the
public executor facade can all raise it without import cycles.
"""

__all__ = ["QueryExecutionError"]


class QueryExecutionError(RuntimeError):
    """Raised when a query cannot be executed against the given tables."""
