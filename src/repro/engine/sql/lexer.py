"""Tokenizer for the SQL subset.

Produces a flat token list consumed by the recursive-descent parser.
Identifiers may be dotted (``bc18.avg_value``) — qualification is
resolved later, during execution. String literals accept single or
double quotes (Hive-style: the paper's AQ6 writes ``country = "VN"``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "SqlSyntaxError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "WITH", "CUBE", "AS",
    "AND", "OR", "NOT", "BETWEEN", "IN", "JOIN", "INNER", "ON",
    "HAVING", "ORDER", "LIMIT", "ASC", "DESC", "TRUE", "FALSE",
    "DISTINCT",
}

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    "*": "STAR",
    "+": "PLUS",
    "-": "MINUS",
    "/": "SLASH",
    "%": "PERCENT",
}


class SqlSyntaxError(ValueError):
    """Raised for malformed SQL text."""


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IDENT, NUMBER, STRING, operator kinds, EOF
    value: object
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list:
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):  # line comment
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch in ("'", '"'):
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if ch.isalpha() or ch == "_":
            word, j = _read_identifier(text, i)
            upper = word.upper()
            if upper in KEYWORDS and "." not in word:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        if text.startswith("<>", i) or text.startswith("!=", i):
            tokens.append(Token("NEQ", "<>", i))
            i += 2
            continue
        if text.startswith("<=", i):
            tokens.append(Token("LTE", "<=", i))
            i += 2
            continue
        if text.startswith(">=", i):
            tokens.append(Token("GTE", ">=", i))
            i += 2
            continue
        if ch == "<":
            tokens.append(Token("LT", "<", i))
            i += 1
            continue
        if ch == ">":
            tokens.append(Token("GT", ">", i))
            i += 1
            continue
        if ch == "=":
            tokens.append(Token("EQ", "=", i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", None, n))
    return tokens


def _read_string(text: str, start: int):
    quote = text[start]
    i = start + 1
    parts = []
    while i < len(text):
        ch = text[i]
        if ch == quote:
            if i + 1 < len(text) and text[i + 1] == quote:  # escaped quote
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError(f"unterminated string literal starting at {start}")


def _read_number(text: str, start: int):
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    raw = text[start:i]
    if seen_dot or seen_exp:
        return float(raw), i
    return int(raw), i


def _read_identifier(text: str, start: int):
    i = start
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] in "_."):
        # A trailing dot is not part of the identifier.
        if text[i] == "." and (i + 1 >= n or not (text[i + 1].isalnum() or text[i + 1] == "_")):
            break
        i += 1
    return text[start:i], i
