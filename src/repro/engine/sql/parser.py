"""Recursive-descent parser for the SQL subset.

Grammar (roughly):

    query       := [WITH cte ("," cte)*] select
    cte         := IDENT AS "(" select ")"
    select      := SELECT item ("," item)* [FROM from_ref]
                   [WHERE expr] [GROUP BY expr ("," expr)* [WITH CUBE]]
                   [HAVING expr] [ORDER BY order ("," order)*] [LIMIT n]
    from_ref    := primary (JOIN primary ON expr)*
    primary     := IDENT [AS? IDENT] | "(" select ")" [AS? IDENT]
    expr        := or_expr (precedence: OR < AND < NOT < cmp < add < mul < unary)

Aggregate calls are recognized by function name (COUNT/SUM/AVG/...);
everything else becomes a scalar :class:`FuncCall`.
"""

from __future__ import annotations

from ..aggregates import AGGREGATE_FUNCTIONS
from ..expr import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from .ast import (
    JoinClause,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectQuery,
    SubqueryTable,
    TableRef,
)
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse_query", "parse_expression", "SqlSyntaxError"]

_AGG_NAMES = set(AGGREGATE_FUNCTIONS)


def parse_query(sql: str) -> SelectQuery:
    """Parse one SELECT statement (optionally prefixed with WITH)."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect("EOF")
    return query


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar/boolean expression (used by tests)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect("EOF")
    return expr


class _Parser:
    def __init__(self, tokens: list) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def check_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in words

    def accept_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if token.kind != "KEYWORD" or token.value != word:
            raise SqlSyntaxError(
                f"expected {word} but found {token.value!r} at {token.position}"
            )
        return self.advance()

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise SqlSyntaxError(
                f"expected {kind} but found {token.kind}({token.value!r}) "
                f"at {token.position}"
            )
        return self.advance()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_query(self) -> SelectQuery:
        ctes = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect("IDENT").value
                self.expect_keyword("AS")
                self.expect("LPAREN")
                subquery = self.parse_query()
                self.expect("RPAREN")
                ctes.append((name, subquery))
                if not self._accept("COMMA"):
                    break
        select = self.parse_select()
        if ctes:
            select = SelectQuery(
                items=select.items,
                from_clause=select.from_clause,
                where=select.where,
                group_by=select.group_by,
                with_cube=select.with_cube,
                having=select.having,
                order_by=select.order_by,
                limit=select.limit,
                ctes=tuple(ctes),
            )
        return select

    def _accept(self, kind: str) -> bool:
        if self.peek().kind == kind:
            self.advance()
            return True
        return False

    def parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        self.accept_keyword("DISTINCT")  # tolerated, engine output is grouped
        items = [self.parse_select_item()]
        while self._accept("COMMA"):
            items.append(self.parse_select_item())

        from_clause = None
        if self.accept_keyword("FROM"):
            from_clause = self.parse_from()

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()

        group_by: list = []
        with_cube = False
        if self.check_keyword("GROUP"):
            self.expect_keyword("GROUP")
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self._accept("COMMA"):
                group_by.append(self.parse_expr())
            if self.accept_keyword("WITH"):
                self.expect_keyword("CUBE")
                with_cube = True

        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()

        order_by: list = []
        if self.check_keyword("ORDER"):
            self.expect_keyword("ORDER")
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self._accept("COMMA"):
                order_by.append(self.parse_order_item())

        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.expect("NUMBER")
            if not isinstance(token.value, int):
                raise SqlSyntaxError("LIMIT requires an integer")
            limit = token.value

        return SelectQuery(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=tuple(group_by),
            with_cube=with_cube,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect("IDENT").value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def parse_from(self) -> TableRef:
        left = self.parse_table_primary()
        while True:
            if self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
            elif not self.accept_keyword("JOIN"):
                break
            right = self.parse_table_primary()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            left = JoinClause(left=left, right=right, condition=condition)
        return left

    def parse_table_primary(self) -> TableRef:
        if self._accept("LPAREN"):
            subquery = self.parse_query()
            self.expect("RPAREN")
            alias = self._parse_optional_alias()
            return SubqueryTable(query=subquery, alias=alias)
        name = self.expect("IDENT").value
        alias = self._parse_optional_alias()
        return NamedTable(name=name, alias=alias)

    def _parse_optional_alias(self):
        if self.accept_keyword("AS"):
            return self.expect("IDENT").value
        if self.peek().kind == "IDENT":
            return self.advance().value
        return None

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = BinOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = BinOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        comparison_ops = {
            "EQ": "=", "NEQ": "<>", "LT": "<", "LTE": "<=",
            "GT": ">", "GTE": ">=",
        }
        if token.kind in comparison_ops:
            self.advance()
            right = self.parse_additive()
            return BinOp(comparison_ops[token.kind], left, right)
        if self.check_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(left, low, high)
        if self.check_keyword("NOT"):
            # NOT IN / NOT BETWEEN
            saved = self._pos
            self.advance()
            if self.check_keyword("IN"):
                self.advance()
                return UnaryOp("NOT", self._parse_in_list(left))
            if self.check_keyword("BETWEEN"):
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("AND")
                high = self.parse_additive()
                return UnaryOp("NOT", Between(left, low, high))
            self._pos = saved
        if self.check_keyword("IN"):
            self.advance()
            return self._parse_in_list(left)
        return left

    def _parse_in_list(self, subject: Expr) -> Expr:
        self.expect("LPAREN")
        options = [self.parse_primary_literal()]
        while self._accept("COMMA"):
            options.append(self.parse_primary_literal())
        self.expect("RPAREN")
        return InList(subject, tuple(options))

    def parse_primary_literal(self) -> Literal:
        token = self.peek()
        if token.kind in ("NUMBER", "STRING"):
            self.advance()
            return Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.value == "TRUE")
        if token.kind == "MINUS":
            self.advance()
            number = self.expect("NUMBER")
            return Literal(-number.value)
        raise SqlSyntaxError(
            f"IN list expects literals, found {token.value!r} at {token.position}"
        )

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "PLUS":
                self.advance()
                left = BinOp("+", left, self.parse_multiplicative())
            elif token.kind == "MINUS":
                self.advance()
                left = BinOp("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "STAR":
                self.advance()
                left = BinOp("*", left, self.parse_unary())
            elif token.kind == "SLASH":
                self.advance()
                left = BinOp("/", left, self.parse_unary())
            elif token.kind == "PERCENT":
                self.advance()
                left = BinOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "MINUS":
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if token.kind == "PLUS":
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "NUMBER" or token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.value == "TRUE")
        if token.kind == "LPAREN":
            self.advance()
            expr = self.parse_expr()
            self.expect("RPAREN")
            return expr
        if token.kind == "IDENT":
            self.advance()
            if self.peek().kind == "LPAREN":
                return self._parse_call(token.value)
            return ColumnRef(token.value)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def _parse_call(self, name: str) -> Expr:
        upper = name.upper()
        self.expect("LPAREN")
        if upper in _AGG_NAMES:
            return self._parse_agg_call(upper)
        args = []
        if self.peek().kind != "RPAREN":
            args.append(self.parse_expr())
            while self._accept("COMMA"):
                args.append(self.parse_expr())
        self.expect("RPAREN")
        return FuncCall(upper, tuple(args))

    def _parse_agg_call(self, func: str) -> AggCall:
        if self.peek().kind == "STAR":
            self.advance()
            self.expect("RPAREN")
            if func != "COUNT":
                raise SqlSyntaxError(f"{func}(*) is not valid")
            return AggCall("COUNT", Star())
        if self.peek().kind == "RPAREN":
            self.advance()
            if func != "COUNT":
                raise SqlSyntaxError(f"{func}() requires an argument")
            return AggCall("COUNT", Star())
        arg = self.parse_expr()
        self.expect("RPAREN")
        return AggCall(func, arg)
