"""Logical query AST produced by the parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..expr import Expr

__all__ = [
    "SelectItem",
    "TableRef",
    "NamedTable",
    "SubqueryTable",
    "JoinClause",
    "OrderItem",
    "SelectQuery",
]


@dataclass(frozen=True)
class SelectItem:
    """One projection: ``expr [AS alias]``."""

    expr: Expr
    alias: Optional[str] = None


class TableRef:
    """Base class for FROM items."""


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryTable(TableRef):
    query: "SelectQuery"
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or "__subquery__"


@dataclass(frozen=True)
class JoinClause(TableRef):
    left: TableRef
    right: TableRef
    condition: Expr  # conjunction of equalities


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectQuery:
    items: Tuple[SelectItem, ...]
    from_clause: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    with_cube: bool = False
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    ctes: Tuple[Tuple[str, "SelectQuery"], ...] = field(default=())

    @property
    def is_aggregate(self) -> bool:
        from ..expr import collect_agg_calls

        if self.group_by:
            return True
        return any(collect_agg_calls(item.expr) for item in self.items)
