"""SQL subset: lexer, parser, logical planner, physical operators.

The dialect covers everything the paper's twelve evaluation queries use:
``WITH`` common table expressions, ``SELECT`` expression lists with
aliases, ``FROM`` over tables / subqueries / inner ``JOIN ... ON``,
``WHERE`` predicates, ``GROUP BY ... [WITH CUBE]``, ``HAVING``,
``ORDER BY`` and ``LIMIT``, plus the scalar and aggregate functions of
:mod:`repro.engine.functions` and :mod:`repro.engine.aggregates`.

Execution is a three-layer pipeline: :func:`parse_query` produces the
AST, :mod:`~repro.engine.sql.planner` lowers it into a logical plan
(with rewrite passes for weighted/approximate execution), and
:mod:`~repro.engine.sql.operators` compiles the plan into vectorized
physical operators. :func:`execute_sql` wraps all three.
"""

from .parser import parse_query
from .ast import (
    JoinClause,
    NamedTable,
    SelectItem,
    SelectQuery,
    SubqueryTable,
)
from .errors import QueryExecutionError
from .executor import execute_query, execute_sql, plan_query
from .planner import (
    apply_weighting,
    bind_plan,
    format_plan,
    lower_query,
    parameterize_query,
    rename_tables,
)
from .operators import (
    PhysicalPlan,
    choose_group_strategy,
    compile_plan,
)

__all__ = [
    "parse_query",
    "execute_query",
    "execute_sql",
    "plan_query",
    "QueryExecutionError",
    "SelectQuery",
    "SelectItem",
    "NamedTable",
    "SubqueryTable",
    "JoinClause",
    "lower_query",
    "apply_weighting",
    "rename_tables",
    "parameterize_query",
    "bind_plan",
    "format_plan",
    "compile_plan",
    "choose_group_strategy",
    "PhysicalPlan",
]
