"""SQL subset: lexer, parser, logical query AST, and executor.

The dialect covers everything the paper's twelve evaluation queries use:
``WITH`` common table expressions, ``SELECT`` expression lists with
aliases, ``FROM`` over tables / subqueries / inner ``JOIN ... ON``,
``WHERE`` predicates, ``GROUP BY ... [WITH CUBE]``, ``HAVING``,
``ORDER BY`` and ``LIMIT``, plus the scalar and aggregate functions of
:mod:`repro.engine.functions` and :mod:`repro.engine.aggregates`.
"""

from .parser import parse_query
from .ast import (
    JoinClause,
    NamedTable,
    SelectItem,
    SelectQuery,
    SubqueryTable,
)
from .executor import execute_query, execute_sql

__all__ = [
    "parse_query",
    "execute_query",
    "execute_sql",
    "SelectQuery",
    "SelectItem",
    "NamedTable",
    "SubqueryTable",
    "JoinClause",
]
