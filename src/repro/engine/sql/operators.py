"""Physical operators: executable counterparts of the logical plan.

Every operator consumes and produces a :class:`Relation` — a
:class:`~repro.engine.table.Table` plus the FROM-clause bindings used to
resolve qualified column references. Operators keep the engine's
vectorized numpy kernels; the per-clause ``_execute_*`` helpers of the
old monolithic executor live on here as composable classes.

Grouping has two interchangeable physical implementations:

* :class:`HashGroupStrategy` — factorize/hash grouping via
  :func:`~repro.engine.groupby.compute_group_keys` (combined-code
  ``np.unique``), the fastest path for narrow keys;
* :class:`SortGroupStrategy` — sort-based grouping via
  :func:`~repro.engine.groupby.compute_group_keys_sorted`, which avoids
  the combined-code multiplication and is chosen by
  :func:`choose_group_strategy` when the key-space product could
  overflow or the key is wide (cf. hash- vs sort-based group-by-
  aggregate tradeoffs).

Both produce identical group ids and ordering, so the physical choice
never changes a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..aggregates import compute_aggregate
from ..expr import (
    AggCall,
    BinOp,
    ColumnRef,
    Expr,
    Star,
    collect_agg_calls,
    collect_column_refs,
    evaluate,
    evaluate_predicate,
    expr_to_sql,
    rewrite,
)
from ..groupby import (
    ALL_MARKER,
    GroupKeys,
    compute_group_keys,
    compute_group_keys_sorted,
    cube_grouping_sets,
)
from ..join import hash_join
from ..schema import DType
from ..table import Column, Table
from .ast import OrderItem, SelectItem
from .errors import QueryExecutionError
from . import planner as lp

__all__ = [
    "Relation",
    "PhysicalOperator",
    "ScanOp",
    "DualOp",
    "SubqueryOp",
    "JoinOp",
    "FilterOp",
    "ProjectOp",
    "GroupAggregateOp",
    "CubeAggregateOp",
    "OrderByOp",
    "LimitOp",
    "WithCTEOp",
    "HashGroupStrategy",
    "SortGroupStrategy",
    "choose_group_strategy",
    "compile_plan",
    "PhysicalPlan",
]


@dataclass
class Relation:
    """A table flowing between operators, plus its FROM bindings."""

    table: Table
    bindings: List[str]


class PhysicalOperator:
    """Base class: ``execute(catalog) -> Relation``."""

    def execute(self, catalog: dict) -> Relation:
        raise NotImplementedError


# ----------------------------------------------------------------------
# group-by physical strategies
# ----------------------------------------------------------------------
class HashGroupStrategy:
    """Factorize/hash grouping on a combined key code."""

    name = "hash"

    @staticmethod
    def keys(table: Table, by) -> GroupKeys:
        return compute_group_keys(table, by)


class SortGroupStrategy:
    """Sort-based grouping: lexsort per-column codes, scan boundaries."""

    name = "sort"

    @staticmethod
    def keys(table: Table, by) -> GroupKeys:
        return compute_group_keys_sorted(table, by)


#: Combined-key-space bound above which the hash path's code
#: multiplication risks int64 overflow.
_HASH_KEYSPACE_LIMIT = 2**62
#: Key widths at which sorting beats building combined codes.
_SORT_KEY_WIDTH = 4

_STRATEGIES = {"hash": HashGroupStrategy, "sort": SortGroupStrategy}


def choose_group_strategy(table: Table, key_names) -> type:
    """Cost rule picking a grouping implementation.

    Single-column keys always hash. Wide keys sort. In between, bound
    each column's cardinality (dictionary size for strings, row count
    otherwise); if the product could overflow the combined int64 code,
    sort instead of hashing.
    """
    if len(key_names) <= 1:
        return HashGroupStrategy
    if len(key_names) >= _SORT_KEY_WIDTH:
        return SortGroupStrategy
    bound = 1
    for name in key_names:
        column = table.column(name)
        if column.dtype is DType.STRING:
            cardinality = max(len(column.categories), 1)
        else:
            cardinality = max(table.num_rows, 1)
        bound *= cardinality
        if bound > _HASH_KEYSPACE_LIMIT:
            return SortGroupStrategy
    return HashGroupStrategy


def _resolve_strategy(table: Table, key_names, requested: Optional[str]):
    if requested is None or requested == "auto":
        return choose_group_strategy(table, key_names)
    try:
        return _STRATEGIES[requested]
    except KeyError:
        raise QueryExecutionError(
            f"unknown group strategy {requested!r}; "
            f"known: {', '.join(sorted(_STRATEGIES))}"
        ) from None


# ----------------------------------------------------------------------
# source operators
# ----------------------------------------------------------------------
_DUAL = Table({"__dual__": Column(DType.INT64, np.zeros(1, dtype=np.int64))})


@dataclass
class ScanOp(PhysicalOperator):
    table: str
    binding: str

    def execute(self, catalog: dict) -> Relation:
        if self.table not in catalog:
            raise QueryExecutionError(
                f"unknown table {self.table!r}; "
                f"known: {', '.join(sorted(catalog))}"
            )
        return Relation(catalog[self.table], [self.binding])


class DualOp(PhysicalOperator):
    def execute(self, catalog: dict) -> Relation:
        return Relation(_DUAL, [])


@dataclass
class SubqueryOp(PhysicalOperator):
    child: PhysicalOperator
    binding: str

    def execute(self, catalog: dict) -> Relation:
        inner = self.child.execute(catalog)
        return Relation(inner.table, [self.binding])


@dataclass
class WithCTEOp(PhysicalOperator):
    name: str
    definition: PhysicalOperator
    body: PhysicalOperator

    def execute(self, catalog: dict) -> Relation:
        extended = dict(catalog)
        extended[self.name] = self.definition.execute(catalog).table
        return self.body.execute(extended)


@dataclass
class JoinOp(PhysicalOperator):
    left: PhysicalOperator
    right: PhysicalOperator
    condition: Expr
    weight_column: Optional[str] = None

    def execute(self, catalog: dict) -> Relation:
        left = self.left.execute(catalog)
        right = self.right.execute(catalog)

        if (
            self.weight_column
            and self.weight_column in left.table
            and self.weight_column in right.table
        ):
            raise QueryExecutionError(
                "cannot join two weighted samples: sampling for joins is "
                "future work in the paper (Section 8)"
            )

        equalities, residual = _split_join_condition(self.condition)
        left_keys, right_keys = [], []
        for lhs, rhs in equalities:
            placed = _place_equality(
                lhs, rhs, left.table, left.bindings, right.table, right.bindings
            )
            if placed is None:
                residual.append(BinOp("=", lhs, rhs))
            else:
                left_keys.append(placed[0])
                right_keys.append(placed[1])
        if not left_keys:
            raise QueryExecutionError(
                "JOIN ... ON requires at least one cross-side equality"
            )

        left_alias = left.bindings[0] if len(left.bindings) == 1 else "left"
        right_alias = right.bindings[0] if len(right.bindings) == 1 else "right"
        joined = hash_join(
            left.table, right.table, left_keys, right_keys,
            left_alias=left_alias, right_alias=right_alias,
        )
        bindings = left.bindings + right.bindings
        for condition in residual:
            predicate = _resolve_expr(condition, joined, bindings)
            joined = joined.filter(evaluate_predicate(predicate, joined))
        return Relation(joined, bindings)


def _split_join_condition(condition: Expr):
    """Flatten an AND-tree into (equality pairs, residual predicates)."""
    equalities, residual = [], []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, BinOp) and node.op == "AND":
            stack.append(node.left)
            stack.append(node.right)
        elif (
            isinstance(node, BinOp)
            and node.op == "="
            and isinstance(node.left, ColumnRef)
            and isinstance(node.right, ColumnRef)
        ):
            equalities.append((node.left, node.right))
        else:
            residual.append(node)
    return equalities, residual


def _place_equality(lhs, rhs, left, left_bindings, right, right_bindings):
    """Assign an equality's two refs to the join sides, or None."""
    lhs_left = _try_resolve_name(lhs.name, left, left_bindings)
    lhs_right = _try_resolve_name(lhs.name, right, right_bindings)
    rhs_left = _try_resolve_name(rhs.name, left, left_bindings)
    rhs_right = _try_resolve_name(rhs.name, right, right_bindings)
    if lhs_left and rhs_right:
        return lhs_left, rhs_right
    if rhs_left and lhs_right:
        return rhs_left, lhs_right
    return None


# ----------------------------------------------------------------------
# column-reference resolution
# ----------------------------------------------------------------------
def _try_resolve_name(name: str, table: Table, bindings) -> Optional[str]:
    if name in table:
        return name
    if "." in name:
        prefix, rest = name.split(".", 1)
        if prefix in bindings and rest in table:
            return rest
    qualified = [c for c in table.column_names if c.endswith("." + name)]
    if qualified:
        return qualified[0]  # leftmost source wins (documented dialect rule)
    return None


def _resolve_name(name: str, table: Table, bindings) -> str:
    resolved = _try_resolve_name(name, table, bindings)
    if resolved is None:
        raise QueryExecutionError(
            f"cannot resolve column {name!r}; "
            f"available: {', '.join(table.column_names)}"
        )
    return resolved


def _resolve_expr(expr: Expr, table: Table, bindings) -> Expr:
    mapping = {}
    for ref in collect_column_refs(expr):
        if ref in mapping:
            continue
        mapping[ref] = ColumnRef(_resolve_name(ref.name, table, bindings))
    return rewrite(expr, mapping)


# ----------------------------------------------------------------------
# row-wise operators
# ----------------------------------------------------------------------
@dataclass
class FilterOp(PhysicalOperator):
    child: PhysicalOperator
    predicate: Expr

    def execute(self, catalog: dict) -> Relation:
        rel = self.child.execute(catalog)
        predicate = _resolve_expr(self.predicate, rel.table, rel.bindings)
        return Relation(
            rel.table.filter(evaluate_predicate(predicate, rel.table)),
            rel.bindings,
        )


@dataclass
class ProjectOp(PhysicalOperator):
    child: PhysicalOperator
    items: Tuple[SelectItem, ...]
    weight_column: Optional[str] = None

    def execute(self, catalog: dict) -> Relation:
        rel = self.child.execute(catalog)
        working, bindings = rel.table, rel.bindings
        out = {}
        for i, item in enumerate(self.items):
            expr = _resolve_expr(item.expr, working, bindings)
            name = item.alias or _output_name(item.expr, i)
            if isinstance(expr, ColumnRef):
                out[name] = working.column(expr.name)
            else:
                out[name] = _column_from_array(evaluate(expr, working))
        if (
            self.weight_column
            and self.weight_column in working
            and self.weight_column not in out
        ):
            out[self.weight_column] = working.column(self.weight_column)
        return Relation(Table(out), bindings)


def _output_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    return expr_to_sql(expr)


def _column_from_array(arr: np.ndarray) -> Column:
    arr = np.asarray(arr)
    if arr.dtype.kind in ("O", "U", "S"):
        return Column.from_strings(arr)
    if arr.dtype.kind == "b":
        return Column(DType.BOOL, arr)
    if arr.dtype.kind in ("i", "u"):
        return Column(DType.INT64, arr.astype(np.int64))
    return Column(DType.FLOAT64, arr.astype(np.float64))


# ----------------------------------------------------------------------
# aggregation operators
# ----------------------------------------------------------------------
@dataclass
class _AggregateState:
    """Everything the grouping kernels need, resolved from the input."""

    working: Table
    bindings: list
    key_names: list
    key_exprs: dict  # resolved group expr -> working column name
    agg_calls: list
    agg_inputs: list
    placeholders: dict
    weights: Optional[np.ndarray]
    alias_map: dict


class _AggregateBase(PhysicalOperator):
    """Shared analysis for plain and CUBE group-aggregate operators."""

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Tuple[Expr, ...],
        items: Tuple[SelectItem, ...],
        having: Optional[Expr] = None,
        weight_column: Optional[str] = None,
        strategy: Optional[str] = None,
    ) -> None:
        self.child = child
        self.group_by = tuple(group_by)
        self.items = tuple(items)
        self.having = having
        self.weight_column = weight_column
        self.strategy = strategy

    def _group_keys(self, working: Table, key_names) -> GroupKeys:
        impl = _resolve_strategy(working, key_names, self.strategy)
        return impl.keys(working, key_names)

    def _prepare(self, rel: Relation) -> _AggregateState:
        working, bindings = rel.table, rel.bindings
        alias_map = {
            item.alias: item.expr for item in self.items if item.alias
        }

        # Group keys: plain refs use the table column; computed keys
        # become derived columns.
        key_names = []
        key_exprs = {}
        derived = 0
        for expr in self.group_by:
            if isinstance(expr, ColumnRef) and expr.name in alias_map:
                expr = alias_map[expr.name]
            resolved = _resolve_expr(expr, working, bindings)
            if isinstance(resolved, ColumnRef):
                key_names.append(resolved.name)
                key_exprs[resolved] = resolved.name
            else:
                name = f"__key_{derived}"
                derived += 1
                working = working.with_column(
                    name, _column_from_array(evaluate(resolved, working))
                )
                key_names.append(name)
                key_exprs[resolved] = name

        weights = None
        if self.weight_column and self.weight_column in working:
            weights = working.column(self.weight_column).values_numeric()

        # Collect every aggregate call in SELECT + HAVING, deduplicated.
        agg_calls = []
        for item in self.items:
            agg_calls.extend(collect_agg_calls(item.expr))
        if self.having is not None:
            agg_calls.extend(collect_agg_calls(self.having))
        agg_calls = list(dict.fromkeys(agg_calls))

        agg_inputs = []
        for call in agg_calls:
            if isinstance(call.arg, Star) or call.arg is None:
                agg_inputs.append((call.func, None))
            else:
                arg = _resolve_expr(call.arg, working, bindings)
                values = evaluate(arg, working)
                if values.dtype.kind in ("O", "U", "S"):
                    raise QueryExecutionError(
                        "cannot aggregate string expression "
                        f"{expr_to_sql(call.arg)}"
                    )
                agg_inputs.append((call.func, values))

        placeholders = {
            call: ColumnRef(f"__agg_{i}") for i, call in enumerate(agg_calls)
        }
        return _AggregateState(
            working=working,
            bindings=bindings,
            key_names=key_names,
            key_exprs=key_exprs,
            agg_calls=agg_calls,
            agg_inputs=agg_inputs,
            placeholders=placeholders,
            weights=weights,
            alias_map=alias_map,
        )


class GroupAggregateOp(_AggregateBase):
    """``GROUP BY`` (or full-table) aggregation over factorized groups."""

    def execute(self, catalog: dict) -> Relation:
        state = self._prepare(self.child.execute(catalog))
        working = state.working
        keys = self._group_keys(working, state.key_names)
        num_groups = keys.num_groups
        if not state.key_names and num_groups == 0:
            # SQL semantics: a full-table aggregate over zero rows still
            # returns one row (COUNT = 0, SUM = 0, AVG = NULL/NaN).
            num_groups = 1
        if state.key_names:
            gtable = Table(
                {
                    name: keys.key_column(working, name)
                    for name in state.key_names
                }
            )
        else:
            gtable = _empty_context(num_groups)
        extra = {}
        for i, (func, values) in enumerate(state.agg_inputs):
            extra[f"__agg_{i}"] = compute_aggregate(
                func, values, keys.gids, num_groups, state.weights
            )
        return Relation(
            self._assemble_group_output(state, gtable, extra),
            state.bindings,
        )

    def _assemble_group_output(self, state, gtable, extra) -> Table:
        if self.having is not None:
            having = _resolve_group_expr(
                rewrite(self.having, state.placeholders),
                gtable,
                state.key_exprs,
                state.bindings,
            )
            mask = evaluate_predicate(having, gtable, extra)
            gtable = gtable.filter(mask)
            extra = {k: v[mask] for k, v in extra.items()}

        out = {}
        for i, item in enumerate(self.items):
            expr = _resolve_group_expr(
                rewrite(item.expr, state.placeholders),
                gtable,
                state.key_exprs,
                state.bindings,
            )
            name = item.alias or _output_name(item.expr, i)
            if isinstance(expr, ColumnRef) and expr.name in gtable:
                out[name] = gtable.column(expr.name)
            else:
                out[name] = _column_from_array(evaluate(expr, gtable, extra))
        return Table(out)


def _resolve_group_expr(expr, gtable, key_exprs, bindings) -> Expr:
    """Resolve an expression in group context.

    Aggregate calls were already replaced by ``__agg_i`` placeholder
    refs. A subtree equal to a GROUP BY expression maps to its key
    column; any other plain column reference must be a key column
    (standard SQL rule).
    """
    if expr in key_exprs:
        return ColumnRef(key_exprs[expr])
    if isinstance(expr, ColumnRef):
        if expr.name.startswith("__agg_"):
            return expr
        resolved = _try_resolve_name(expr.name, gtable, bindings)
        if resolved is None:
            raise QueryExecutionError(
                f"column {expr.name!r} must appear in GROUP BY or inside "
                "an aggregate"
            )
        return ColumnRef(resolved)
    mapping = {}
    for child_key, column in key_exprs.items():
        mapping[child_key] = ColumnRef(column)
    partially = rewrite(expr, mapping)
    # Resolve any remaining refs against the group table.
    refs = {}
    for ref in collect_column_refs(partially):
        if ref.name in gtable or ref.name.startswith("__agg_"):
            continue
        resolved = _try_resolve_name(ref.name, gtable, bindings)
        if resolved is None:
            raise QueryExecutionError(
                f"column {ref.name!r} must appear in GROUP BY or inside "
                "an aggregate"
            )
        refs[ref] = ColumnRef(resolved)
    return rewrite(partially, refs)


class CubeAggregateOp(_AggregateBase):
    """GROUP BY ... WITH CUBE: one grouping per subset, stacked.

    Key columns are stringified so that :data:`ALL_MARKER` can stand in
    for "all values" on the non-grouped attributes (Hive prints NULL).
    """

    def execute(self, catalog: dict) -> Relation:
        state = self._prepare(self.child.execute(catalog))
        working = state.working
        pieces = []
        for subset in cube_grouping_sets(state.key_names):
            keys = self._group_keys(working, list(subset))
            extra = {}
            for i, (func, values) in enumerate(state.agg_inputs):
                extra[f"__agg_{i}"] = compute_aggregate(
                    func, values, keys.gids, keys.num_groups, state.weights
                )
            out = {}
            for i, item in enumerate(self.items):
                expr = item.expr
                if isinstance(expr, ColumnRef) and expr.name in state.alias_map:
                    expr = state.alias_map[expr.name]
                resolved = (
                    _resolve_expr(expr, working, state.bindings)
                    if not isinstance(expr, AggCall)
                    else expr
                )
                name = item.alias or _output_name(item.expr, i)
                if isinstance(resolved, AggCall) or collect_agg_calls(expr):
                    rewritten = rewrite(
                        expr if isinstance(expr, AggCall) else resolved,
                        state.placeholders,
                    )
                    out[name] = _column_from_array(
                        evaluate(
                            rewritten, _empty_context(keys.num_groups), extra
                        )
                    )
                elif (
                    isinstance(resolved, ColumnRef)
                    and resolved.name in state.key_names
                ):
                    if resolved.name in subset:
                        values = keys.key_column(
                            working, resolved.name
                        ).decode()
                        out[name] = Column.from_strings(
                            np.asarray(
                                [str(v) for v in values], dtype=object
                            )
                        )
                    else:
                        out[name] = Column.from_strings(
                            np.asarray(
                                [ALL_MARKER] * keys.num_groups, dtype=object
                            )
                        )
                else:
                    raise QueryExecutionError(
                        "WITH CUBE SELECT items must be grouped columns or "
                        f"aggregates, got {expr_to_sql(item.expr)}"
                    )
            pieces.append(Table(out))
        result = pieces[0]
        for piece in pieces[1:]:
            result = result.concat(piece)
        return Relation(result, state.bindings)


def _empty_context(n: int) -> Table:
    return Table({"__rows__": Column(DType.INT64, np.zeros(n, dtype=np.int64))})


# ----------------------------------------------------------------------
# ordering / limiting
# ----------------------------------------------------------------------
@dataclass
class OrderByOp(PhysicalOperator):
    child: PhysicalOperator
    keys: Tuple[OrderItem, ...]

    def execute(self, catalog: dict) -> Relation:
        rel = self.child.execute(catalog)
        result = rel.table
        sort_keys = []
        for item in self.keys:
            expr = _resolve_expr(item.expr, result, [])
            values = evaluate(expr, result)
            if values.dtype.kind in ("O", "U", "S"):
                values = np.asarray([str(v) for v in values])
            elif values.dtype == np.bool_:
                # numpy forbids unary minus on bool; DESC needs it.
                values = values.astype(np.int8)
            sort_keys.append((values, item.ascending))
        # numpy lexsort: last key is primary.
        arrays = []
        for values, ascending in reversed(sort_keys):
            if not ascending:
                if values.dtype.kind in ("U", "S"):
                    # Invert string order via negative rank.
                    _, inverse = np.unique(values, return_inverse=True)
                    arrays.append(-inverse)
                else:
                    arrays.append(-values)
            else:
                arrays.append(values)
        order = np.lexsort(arrays)
        return Relation(result.take(order), rel.bindings)


@dataclass
class LimitOp(PhysicalOperator):
    child: PhysicalOperator
    count: int

    def execute(self, catalog: dict) -> Relation:
        rel = self.child.execute(catalog)
        return Relation(rel.table.head(self.count), rel.bindings)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
@dataclass
class PhysicalPlan:
    """A compiled operator tree, runnable against a table catalog."""

    root: PhysicalOperator
    logical: lp.LogicalPlan

    def run(self, tables: dict) -> Table:
        return self.root.execute(dict(tables)).table


def compile_plan(
    plan: lp.LogicalPlan, group_strategy: Optional[str] = None
) -> PhysicalPlan:
    """Compile a logical plan into a physical operator tree.

    ``group_strategy`` forces ``"hash"`` or ``"sort"`` grouping
    everywhere; the default defers to :func:`choose_group_strategy` per
    aggregation at run time.
    """
    return PhysicalPlan(_compile(plan, group_strategy), plan)


def _compile(plan: lp.LogicalPlan, strategy: Optional[str]) -> PhysicalOperator:
    if isinstance(plan, lp.Scan):
        return ScanOp(plan.table, plan.binding)
    if isinstance(plan, lp.Dual):
        return DualOp()
    if isinstance(plan, lp.SubqueryScan):
        return SubqueryOp(_compile(plan.plan, strategy), plan.binding)
    if isinstance(plan, lp.Join):
        return JoinOp(
            _compile(plan.left, strategy),
            _compile(plan.right, strategy),
            plan.condition,
            plan.weight_column,
        )
    if isinstance(plan, lp.Filter):
        return FilterOp(_compile(plan.child, strategy), plan.predicate)
    if isinstance(plan, lp.Project):
        return ProjectOp(
            _compile(plan.child, strategy), plan.items, plan.weight_column
        )
    if isinstance(plan, lp.GroupAggregate):
        return GroupAggregateOp(
            _compile(plan.child, strategy),
            plan.group_by,
            plan.items,
            plan.having,
            plan.weight_column,
            strategy,
        )
    if isinstance(plan, lp.CubeAggregate):
        return CubeAggregateOp(
            _compile(plan.child, strategy),
            plan.group_by,
            plan.items,
            plan.having,
            plan.weight_column,
            strategy,
        )
    if isinstance(plan, lp.OrderBy):
        return OrderByOp(_compile(plan.child, strategy), plan.keys)
    if isinstance(plan, lp.Limit):
        return LimitOp(_compile(plan.child, strategy), plan.count)
    if isinstance(plan, lp.WithCTE):
        return WithCTEOp(
            plan.name,
            _compile(plan.definition, strategy),
            _compile(plan.body, strategy),
        )
    raise TypeError(f"cannot compile plan node {type(plan).__name__}")
