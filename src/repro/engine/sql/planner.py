"""Logical planner: lowers a parsed :class:`SelectQuery` into a plan tree.

The plan is a small algebra of relational nodes — :class:`Scan`,
:class:`SubqueryScan`, :class:`Join`, :class:`Filter`, :class:`Project`,
:class:`GroupAggregate`, :class:`CubeAggregate`, :class:`OrderBy`,
:class:`Limit`, :class:`WithCTE` — that the physical layer
(:mod:`repro.engine.sql.operators`) compiles into executable operators.

Besides lowering, this module provides the plan-level rewrite passes
that make the AQP path explicit:

* :func:`apply_weighting` — the Horvitz-Thompson rewrite: every
  aggregation node is turned into its weighted variant (``SUM ->
  sum(w * x)``, ``COUNT -> sum(w)``, ``AVG`` their ratio) and every
  projection is marked to carry the weight column, so a query over a
  stratified sample estimates the full-data answer (paper Section 6.3);
* :func:`rename_tables` — redirects base-table scans to a stored
  sample (used by the AQP session's query router);
* :func:`parameterize_query` / :func:`bind_plan` — literal
  parameterization, the basis of plan caching keyed by *query shape*:
  two queries that differ only in constants share one cached plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import math

from ..expr import (
    Between,
    BinOp,
    ColumnRef,
    Expr,
    Literal,
    Parameter,
    rewrite,
)
from .ast import (
    JoinClause,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectQuery,
    SubqueryTable,
    TableRef,
)

__all__ = [
    "LogicalPlan",
    "Scan",
    "Dual",
    "SubqueryScan",
    "Join",
    "Filter",
    "Project",
    "GroupAggregate",
    "CubeAggregate",
    "OrderBy",
    "Limit",
    "WithCTE",
    "lower_query",
    "apply_weighting",
    "rename_tables",
    "transform_plan_exprs",
    "plan_column_refs",
    "parameterize_query",
    "bind_plan",
    "extract_time_bounds",
    "format_plan",
]


class LogicalPlan:
    """Base class for logical plan nodes."""


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Read a named table from the execution catalog."""

    table: str
    binding: str


@dataclass(frozen=True)
class Dual(LogicalPlan):
    """The implicit one-row table of a ``FROM``-less query."""


@dataclass(frozen=True)
class SubqueryScan(LogicalPlan):
    """A derived table: ``FROM (SELECT ...) alias``."""

    plan: LogicalPlan
    binding: str


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Inner equi-join with optional residual predicates."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Expr
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class Filter(LogicalPlan):
    child: LogicalPlan
    predicate: Expr


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Row-wise projection; carries the weight column when weighted."""

    child: LogicalPlan
    items: Tuple[SelectItem, ...]
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class GroupAggregate(LogicalPlan):
    """``GROUP BY`` aggregation (or a full-table aggregate).

    When ``weight_column`` is set, aggregates are the weighted
    Horvitz-Thompson estimators; this is where the weight column is
    consumed.
    """

    child: LogicalPlan
    group_by: Tuple[Expr, ...]
    items: Tuple[SelectItem, ...]
    having: Optional[Expr] = None
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class CubeAggregate(LogicalPlan):
    """``GROUP BY ... WITH CUBE``: one grouping per key subset."""

    child: LogicalPlan
    group_by: Tuple[Expr, ...]
    items: Tuple[SelectItem, ...]
    having: Optional[Expr] = None
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class OrderBy(LogicalPlan):
    child: LogicalPlan
    keys: Tuple[OrderItem, ...]


@dataclass(frozen=True)
class Limit(LogicalPlan):
    child: LogicalPlan
    count: int


@dataclass(frozen=True)
class WithCTE(LogicalPlan):
    """Bind ``name`` to ``definition``'s result while executing ``body``."""

    name: str
    definition: LogicalPlan
    body: LogicalPlan


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def lower_query(query: SelectQuery) -> LogicalPlan:
    """Lower a parsed query into a logical plan tree.

    The shape mirrors SQL's evaluation order: FROM (scans and joins),
    WHERE, GROUP BY / projection, ORDER BY, LIMIT, with CTEs wrapped
    outermost so they are materialized first.
    """
    plan = _lower_from(query.from_clause)
    if query.where is not None:
        plan = Filter(plan, query.where)
    if query.is_aggregate:
        node = CubeAggregate if query.with_cube else GroupAggregate
        plan = node(
            plan, tuple(query.group_by), tuple(query.items), query.having
        )
    else:
        plan = Project(plan, tuple(query.items))
    if query.order_by:
        plan = OrderBy(plan, tuple(query.order_by))
    if query.limit is not None:
        plan = Limit(plan, query.limit)
    # Earlier CTEs wrap outermost: they execute first, and each later
    # definition sees the names bound before it.
    for name, cte in reversed(query.ctes):
        plan = WithCTE(name, lower_query(cte), plan)
    return plan


def _lower_from(ref: Optional[TableRef]) -> LogicalPlan:
    if ref is None:
        return Dual()
    if isinstance(ref, NamedTable):
        return Scan(ref.name, ref.binding)
    if isinstance(ref, SubqueryTable):
        return SubqueryScan(lower_query(ref.query), ref.binding)
    if isinstance(ref, JoinClause):
        return Join(_lower_from(ref.left), _lower_from(ref.right), ref.condition)
    raise TypeError(f"unsupported FROM clause {type(ref).__name__}")


# ----------------------------------------------------------------------
# rewrite passes
# ----------------------------------------------------------------------
def apply_weighting(plan: LogicalPlan, weight_column: str) -> LogicalPlan:
    """Turn exact aggregates into weighted HT estimators.

    Projections and subqueries carry the weight column through;
    aggregation nodes consume it at the first aggregation they perform
    (the operators check at run time that the column is actually in
    scope, so joining a sample against an unweighted dimension table
    behaves exactly like the monolithic executor did).
    """
    if isinstance(plan, Scan) or isinstance(plan, Dual):
        return plan
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(apply_weighting(plan.plan, weight_column), plan.binding)
    if isinstance(plan, Join):
        return Join(
            apply_weighting(plan.left, weight_column),
            apply_weighting(plan.right, weight_column),
            plan.condition,
            weight_column=weight_column,
        )
    if isinstance(plan, Filter):
        return Filter(apply_weighting(plan.child, weight_column), plan.predicate)
    if isinstance(plan, Project):
        return Project(
            apply_weighting(plan.child, weight_column),
            plan.items,
            weight_column=weight_column,
        )
    if isinstance(plan, GroupAggregate):
        return GroupAggregate(
            apply_weighting(plan.child, weight_column),
            plan.group_by,
            plan.items,
            plan.having,
            weight_column=weight_column,
        )
    if isinstance(plan, CubeAggregate):
        return CubeAggregate(
            apply_weighting(plan.child, weight_column),
            plan.group_by,
            plan.items,
            plan.having,
            weight_column=weight_column,
        )
    if isinstance(plan, OrderBy):
        return OrderBy(apply_weighting(plan.child, weight_column), plan.keys)
    if isinstance(plan, Limit):
        return Limit(apply_weighting(plan.child, weight_column), plan.count)
    if isinstance(plan, WithCTE):
        return WithCTE(
            plan.name,
            apply_weighting(plan.definition, weight_column),
            apply_weighting(plan.body, weight_column),
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def rename_tables(plan: LogicalPlan, mapping: dict) -> LogicalPlan:
    """Redirect :class:`Scan` nodes per ``mapping`` (old -> new name).

    Bindings are preserved, so qualified column references keep
    resolving against the original alias. A CTE that shadows a renamed
    name stops the rename inside its body (the definition itself still
    sees the base table, matching catalog-shadowing semantics).
    """
    if isinstance(plan, Scan):
        if plan.table in mapping:
            return Scan(mapping[plan.table], plan.binding)
        return plan
    if isinstance(plan, Dual):
        return plan
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(rename_tables(plan.plan, mapping), plan.binding)
    if isinstance(plan, Join):
        return Join(
            rename_tables(plan.left, mapping),
            rename_tables(plan.right, mapping),
            plan.condition,
            plan.weight_column,
        )
    if isinstance(plan, Filter):
        return Filter(rename_tables(plan.child, mapping), plan.predicate)
    if isinstance(plan, Project):
        return Project(
            rename_tables(plan.child, mapping), plan.items, plan.weight_column
        )
    if isinstance(plan, GroupAggregate):
        return GroupAggregate(
            rename_tables(plan.child, mapping),
            plan.group_by,
            plan.items,
            plan.having,
            plan.weight_column,
        )
    if isinstance(plan, CubeAggregate):
        return CubeAggregate(
            rename_tables(plan.child, mapping),
            plan.group_by,
            plan.items,
            plan.having,
            plan.weight_column,
        )
    if isinstance(plan, OrderBy):
        return OrderBy(rename_tables(plan.child, mapping), plan.keys)
    if isinstance(plan, Limit):
        return Limit(rename_tables(plan.child, mapping), plan.count)
    if isinstance(plan, WithCTE):
        body_mapping = mapping
        if plan.name in mapping:
            body_mapping = {
                k: v for k, v in mapping.items() if k != plan.name
            }
        return WithCTE(
            plan.name,
            rename_tables(plan.definition, mapping),
            rename_tables(plan.body, body_mapping),
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def transform_plan_exprs(plan: LogicalPlan, fn) -> LogicalPlan:
    """Rebuild ``plan`` with ``fn`` applied to every expression."""
    if isinstance(plan, (Scan, Dual)):
        return plan
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(transform_plan_exprs(plan.plan, fn), plan.binding)
    if isinstance(plan, Join):
        return Join(
            transform_plan_exprs(plan.left, fn),
            transform_plan_exprs(plan.right, fn),
            fn(plan.condition),
            plan.weight_column,
        )
    if isinstance(plan, Filter):
        return Filter(transform_plan_exprs(plan.child, fn), fn(plan.predicate))
    if isinstance(plan, Project):
        return Project(
            transform_plan_exprs(plan.child, fn),
            _map_items(plan.items, fn),
            plan.weight_column,
        )
    if isinstance(plan, (GroupAggregate, CubeAggregate)):
        node = type(plan)
        return node(
            transform_plan_exprs(plan.child, fn),
            tuple(fn(e) for e in plan.group_by),
            _map_items(plan.items, fn),
            fn(plan.having) if plan.having is not None else None,
            plan.weight_column,
        )
    if isinstance(plan, OrderBy):
        return OrderBy(
            transform_plan_exprs(plan.child, fn),
            tuple(OrderItem(fn(k.expr), k.ascending) for k in plan.keys),
        )
    if isinstance(plan, Limit):
        return Limit(transform_plan_exprs(plan.child, fn), plan.count)
    if isinstance(plan, WithCTE):
        return WithCTE(
            plan.name,
            transform_plan_exprs(plan.definition, fn),
            transform_plan_exprs(plan.body, fn),
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def _map_items(items, fn):
    return tuple(SelectItem(fn(item.expr), item.alias) for item in items)


def plan_column_refs(plan: LogicalPlan) -> frozenset:
    """Base (unqualified) column names referenced anywhere in ``plan``.

    This is the projection pushdown's required-column set: group-by
    keys, aggregate arguments, WHERE/HAVING/ORDER BY references, join
    conditions — every expression the plan will evaluate. Qualifiers
    (``t.col``) are stripped to the base name. Output aliases that are
    re-referenced (``ORDER BY alias``) are collected too; they simply
    never match a physical column, and over-collection is harmless —
    projection keeps a superset, it must never drop a column the plan
    touches. ``COUNT(*)`` contributes nothing (``Star`` carries no
    reference).
    """
    from ..expr import collect_column_refs

    names: set = set()

    def note(expr: Expr) -> Expr:
        for ref in collect_column_refs(expr):
            names.add(ref.name.rsplit(".", 1)[-1])
        return expr

    transform_plan_exprs(plan, note)
    return frozenset(names)


# ----------------------------------------------------------------------
# literal parameterization (plan-cache keys)
# ----------------------------------------------------------------------
def parameterize_query(query: SelectQuery):
    """Replace every literal with a :class:`~repro.engine.expr.Parameter`.

    Returns ``(shape, values)``: a hashable query skeleton that
    identifies the *shape* of the query, and the tuple of literal values
    to bind back before execution. Literals that compare equal but have
    different python types (``1`` / ``1.0`` / ``True``) get distinct
    parameters so binding can never change a result's dtype.
    """
    registry: dict = {}
    values: list = []

    def convert(expr: Expr) -> Expr:
        return _parameterize_expr(expr, registry, values)

    shape = _transform_query(query, convert)
    return shape, tuple(values)


def _parameterize_expr(expr, registry, values):
    if isinstance(expr, Literal):
        key = (type(expr.value), expr.value)
        param = registry.get(key)
        if param is None:
            param = Parameter(len(values))
            registry[key] = param
            values.append(expr.value)
        return param
    from ..expr import (
        AggCall,
        Between,
        BinOp,
        FuncCall,
        InList,
        UnaryOp,
    )

    def recurse(e):
        return _parameterize_expr(e, registry, values)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, recurse(expr.left), recurse(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, recurse(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(recurse(a) for a in expr.args))
    if isinstance(expr, Between):
        return Between(
            recurse(expr.subject), recurse(expr.low), recurse(expr.high)
        )
    if isinstance(expr, InList):
        return InList(
            recurse(expr.subject), tuple(recurse(o) for o in expr.options)
        )
    if isinstance(expr, AggCall):
        arg = recurse(expr.arg) if expr.arg is not None else None
        return AggCall(expr.func, arg)
    return expr


def _transform_query(query: SelectQuery, fn) -> SelectQuery:
    return SelectQuery(
        items=tuple(SelectItem(fn(i.expr), i.alias) for i in query.items),
        from_clause=_transform_from(query.from_clause, fn),
        where=fn(query.where) if query.where is not None else None,
        group_by=tuple(fn(e) for e in query.group_by),
        with_cube=query.with_cube,
        having=fn(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(fn(o.expr), o.ascending) for o in query.order_by
        ),
        limit=query.limit,
        ctes=tuple(
            (name, _transform_query(cte, fn)) for name, cte in query.ctes
        ),
    )


def _transform_from(ref, fn):
    if ref is None:
        return None
    if isinstance(ref, NamedTable):
        return ref
    if isinstance(ref, SubqueryTable):
        return SubqueryTable(_transform_query(ref.query, fn), ref.alias)
    if isinstance(ref, JoinClause):
        return JoinClause(
            _transform_from(ref.left, fn),
            _transform_from(ref.right, fn),
            fn(ref.condition),
        )
    raise TypeError(f"unsupported FROM clause {type(ref).__name__}")


def bind_plan(plan: LogicalPlan, values) -> LogicalPlan:
    """Substitute parameter slots with concrete literal values."""
    mapping = {
        Parameter(i): Literal(value) for i, value in enumerate(values)
    }
    if not mapping:
        return plan
    return transform_plan_exprs(plan, lambda e: rewrite(e, mapping))


# ----------------------------------------------------------------------
# time-range predicate analysis (window routing)
# ----------------------------------------------------------------------
def extract_time_bounds(
    query: SelectQuery, column: str
) -> Optional[Tuple[Optional[int], Optional[int]]]:
    """The half-open ``[lo, hi)`` range ``query``'s WHERE clause implies
    for integer timestamp ``column``, or ``None`` when it implies none.

    Only predicates that *restrict* the column in every satisfying row
    count: top-level ``AND`` conjuncts of the form ``ts >= L``,
    ``ts > L``, ``ts < H``, ``ts <= H``, ``ts = X`` and
    ``ts BETWEEN a AND b`` (either operand order, numeric literals).
    Multiple conjuncts intersect. Anything else — ``OR`` branches,
    arithmetic over the column, non-literal comparands — is ignored; it
    can only narrow the row set further, so routing on the extracted
    bounds stays sound (the retained WHERE clause re-filters sample
    rows exactly). Either side of the result may be ``None``
    (unbounded); a query with no usable conjunct returns ``None``.
    """
    if query.where is None:
        return None
    lo: Optional[int] = None
    hi: Optional[int] = None

    def tighten(new_lo: Optional[int], new_hi: Optional[int]) -> None:
        nonlocal lo, hi
        if new_lo is not None:
            lo = new_lo if lo is None else max(lo, new_lo)
        if new_hi is not None:
            hi = new_hi if hi is None else min(hi, new_hi)

    for conjunct in _conjuncts(query.where):
        bounds = _conjunct_bounds(conjunct, column)
        if bounds is not None:
            tighten(*bounds)
    if lo is None and hi is None:
        return None
    return lo, hi


def _conjuncts(expr: Expr):
    if isinstance(expr, BinOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _is_column(expr: Expr, column: str) -> bool:
    return isinstance(expr, ColumnRef) and (
        expr.name == column or expr.name.rsplit(".", 1)[-1] == column
    )


def _literal_number(expr: Expr) -> Optional[float]:
    if isinstance(expr, Literal) and isinstance(
        expr.value, (int, float)
    ) and not isinstance(expr.value, bool):
        return float(expr.value)
    return None


def _conjunct_bounds(expr: Expr, column: str):
    """``(lo, hi)`` contribution of one conjunct, or None.

    Timestamps are integers, so fractional literals round inward:
    ``ts >= 3.5`` admits the same rows as ``ts >= 4``.
    """
    if isinstance(expr, Between):
        if _is_column(expr.subject, column):
            low = _literal_number(expr.low)
            high = _literal_number(expr.high)
            if low is not None and high is not None:
                return math.ceil(low), math.floor(high) + 1
        return None
    if not isinstance(expr, BinOp):
        return None
    op = expr.op
    if _is_column(expr.left, column):
        value = _literal_number(expr.right)
    elif _is_column(expr.right, column):
        value = _literal_number(expr.left)
        # Flip so the column is notionally on the left: 5 <= ts == ts >= 5.
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    else:
        return None
    if value is None:
        return None
    if op == ">=":
        return math.ceil(value), None
    if op == ">":
        return math.floor(value) + 1, None
    if op == "<":
        return None, math.ceil(value)
    if op == "<=":
        return None, math.floor(value) + 1
    if op == "=":
        if value == int(value):
            return int(value), int(value) + 1
        return None
    return None


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
def format_plan(plan: LogicalPlan, indent: int = 0) -> str:
    """Human-readable plan tree (used by ``repro-cvopt query --explain``)."""
    pad = "  " * indent
    if isinstance(plan, Scan):
        return f"{pad}Scan({plan.table} AS {plan.binding})"
    if isinstance(plan, Dual):
        return f"{pad}Dual()"
    if isinstance(plan, SubqueryScan):
        return (
            f"{pad}SubqueryScan(AS {plan.binding})\n"
            + format_plan(plan.plan, indent + 1)
        )
    if isinstance(plan, Join):
        return (
            f"{pad}Join(on {plan.condition.sql()}"
            + (f", weighted={plan.weight_column}" if plan.weight_column else "")
            + ")\n"
            + format_plan(plan.left, indent + 1)
            + "\n"
            + format_plan(plan.right, indent + 1)
        )
    if isinstance(plan, Filter):
        return (
            f"{pad}Filter({plan.predicate.sql()})\n"
            + format_plan(plan.child, indent + 1)
        )
    if isinstance(plan, Project):
        cols = ", ".join(
            i.alias or i.expr.sql() for i in plan.items
        )
        tag = f", carry={plan.weight_column}" if plan.weight_column else ""
        return f"{pad}Project({cols}{tag})\n" + format_plan(plan.child, indent + 1)
    if isinstance(plan, (GroupAggregate, CubeAggregate)):
        name = type(plan).__name__
        keys = ", ".join(e.sql() for e in plan.group_by)
        tag = f", weighted={plan.weight_column}" if plan.weight_column else ""
        having = f", having={plan.having.sql()}" if plan.having is not None else ""
        return (
            f"{pad}{name}(by [{keys}]{having}{tag})\n"
            + format_plan(plan.child, indent + 1)
        )
    if isinstance(plan, OrderBy):
        keys = ", ".join(
            k.expr.sql() + ("" if k.ascending else " DESC") for k in plan.keys
        )
        return f"{pad}OrderBy({keys})\n" + format_plan(plan.child, indent + 1)
    if isinstance(plan, Limit):
        return f"{pad}Limit({plan.count})\n" + format_plan(plan.child, indent + 1)
    if isinstance(plan, WithCTE):
        return (
            f"{pad}WithCTE({plan.name})\n"
            + format_plan(plan.definition, indent + 1)
            + "\n"
            + format_plan(plan.body, indent + 1)
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")
