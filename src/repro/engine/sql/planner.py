"""Logical planner: lowers a parsed :class:`SelectQuery` into a plan tree.

The plan is a small algebra of relational nodes — :class:`Scan`,
:class:`SubqueryScan`, :class:`Join`, :class:`Filter`, :class:`Project`,
:class:`GroupAggregate`, :class:`CubeAggregate`, :class:`OrderBy`,
:class:`Limit`, :class:`WithCTE` — that the physical layer
(:mod:`repro.engine.sql.operators`) compiles into executable operators.

Besides lowering, this module provides the plan-level rewrite passes
that make the AQP path explicit:

* :func:`apply_weighting` — the Horvitz-Thompson rewrite: every
  aggregation node is turned into its weighted variant (``SUM ->
  sum(w * x)``, ``COUNT -> sum(w)``, ``AVG`` their ratio) and every
  projection is marked to carry the weight column, so a query over a
  stratified sample estimates the full-data answer (paper Section 6.3);
* :func:`rename_tables` — redirects base-table scans to a stored
  sample (used by the AQP session's query router);
* :func:`parameterize_query` / :func:`bind_plan` — literal
  parameterization, the basis of plan caching keyed by *query shape*:
  two queries that differ only in constants share one cached plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..expr import Expr, Literal, Parameter, rewrite
from .ast import (
    JoinClause,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectQuery,
    SubqueryTable,
    TableRef,
)

__all__ = [
    "LogicalPlan",
    "Scan",
    "Dual",
    "SubqueryScan",
    "Join",
    "Filter",
    "Project",
    "GroupAggregate",
    "CubeAggregate",
    "OrderBy",
    "Limit",
    "WithCTE",
    "lower_query",
    "apply_weighting",
    "rename_tables",
    "transform_plan_exprs",
    "parameterize_query",
    "bind_plan",
    "format_plan",
]


class LogicalPlan:
    """Base class for logical plan nodes."""


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Read a named table from the execution catalog."""

    table: str
    binding: str


@dataclass(frozen=True)
class Dual(LogicalPlan):
    """The implicit one-row table of a ``FROM``-less query."""


@dataclass(frozen=True)
class SubqueryScan(LogicalPlan):
    """A derived table: ``FROM (SELECT ...) alias``."""

    plan: LogicalPlan
    binding: str


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Inner equi-join with optional residual predicates."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Expr
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class Filter(LogicalPlan):
    child: LogicalPlan
    predicate: Expr


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Row-wise projection; carries the weight column when weighted."""

    child: LogicalPlan
    items: Tuple[SelectItem, ...]
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class GroupAggregate(LogicalPlan):
    """``GROUP BY`` aggregation (or a full-table aggregate).

    When ``weight_column`` is set, aggregates are the weighted
    Horvitz-Thompson estimators; this is where the weight column is
    consumed.
    """

    child: LogicalPlan
    group_by: Tuple[Expr, ...]
    items: Tuple[SelectItem, ...]
    having: Optional[Expr] = None
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class CubeAggregate(LogicalPlan):
    """``GROUP BY ... WITH CUBE``: one grouping per key subset."""

    child: LogicalPlan
    group_by: Tuple[Expr, ...]
    items: Tuple[SelectItem, ...]
    having: Optional[Expr] = None
    weight_column: Optional[str] = None


@dataclass(frozen=True)
class OrderBy(LogicalPlan):
    child: LogicalPlan
    keys: Tuple[OrderItem, ...]


@dataclass(frozen=True)
class Limit(LogicalPlan):
    child: LogicalPlan
    count: int


@dataclass(frozen=True)
class WithCTE(LogicalPlan):
    """Bind ``name`` to ``definition``'s result while executing ``body``."""

    name: str
    definition: LogicalPlan
    body: LogicalPlan


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def lower_query(query: SelectQuery) -> LogicalPlan:
    """Lower a parsed query into a logical plan tree.

    The shape mirrors SQL's evaluation order: FROM (scans and joins),
    WHERE, GROUP BY / projection, ORDER BY, LIMIT, with CTEs wrapped
    outermost so they are materialized first.
    """
    plan = _lower_from(query.from_clause)
    if query.where is not None:
        plan = Filter(plan, query.where)
    if query.is_aggregate:
        node = CubeAggregate if query.with_cube else GroupAggregate
        plan = node(
            plan, tuple(query.group_by), tuple(query.items), query.having
        )
    else:
        plan = Project(plan, tuple(query.items))
    if query.order_by:
        plan = OrderBy(plan, tuple(query.order_by))
    if query.limit is not None:
        plan = Limit(plan, query.limit)
    # Earlier CTEs wrap outermost: they execute first, and each later
    # definition sees the names bound before it.
    for name, cte in reversed(query.ctes):
        plan = WithCTE(name, lower_query(cte), plan)
    return plan


def _lower_from(ref: Optional[TableRef]) -> LogicalPlan:
    if ref is None:
        return Dual()
    if isinstance(ref, NamedTable):
        return Scan(ref.name, ref.binding)
    if isinstance(ref, SubqueryTable):
        return SubqueryScan(lower_query(ref.query), ref.binding)
    if isinstance(ref, JoinClause):
        return Join(_lower_from(ref.left), _lower_from(ref.right), ref.condition)
    raise TypeError(f"unsupported FROM clause {type(ref).__name__}")


# ----------------------------------------------------------------------
# rewrite passes
# ----------------------------------------------------------------------
def apply_weighting(plan: LogicalPlan, weight_column: str) -> LogicalPlan:
    """Turn exact aggregates into weighted HT estimators.

    Projections and subqueries carry the weight column through;
    aggregation nodes consume it at the first aggregation they perform
    (the operators check at run time that the column is actually in
    scope, so joining a sample against an unweighted dimension table
    behaves exactly like the monolithic executor did).
    """
    if isinstance(plan, Scan) or isinstance(plan, Dual):
        return plan
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(apply_weighting(plan.plan, weight_column), plan.binding)
    if isinstance(plan, Join):
        return Join(
            apply_weighting(plan.left, weight_column),
            apply_weighting(plan.right, weight_column),
            plan.condition,
            weight_column=weight_column,
        )
    if isinstance(plan, Filter):
        return Filter(apply_weighting(plan.child, weight_column), plan.predicate)
    if isinstance(plan, Project):
        return Project(
            apply_weighting(plan.child, weight_column),
            plan.items,
            weight_column=weight_column,
        )
    if isinstance(plan, GroupAggregate):
        return GroupAggregate(
            apply_weighting(plan.child, weight_column),
            plan.group_by,
            plan.items,
            plan.having,
            weight_column=weight_column,
        )
    if isinstance(plan, CubeAggregate):
        return CubeAggregate(
            apply_weighting(plan.child, weight_column),
            plan.group_by,
            plan.items,
            plan.having,
            weight_column=weight_column,
        )
    if isinstance(plan, OrderBy):
        return OrderBy(apply_weighting(plan.child, weight_column), plan.keys)
    if isinstance(plan, Limit):
        return Limit(apply_weighting(plan.child, weight_column), plan.count)
    if isinstance(plan, WithCTE):
        return WithCTE(
            plan.name,
            apply_weighting(plan.definition, weight_column),
            apply_weighting(plan.body, weight_column),
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def rename_tables(plan: LogicalPlan, mapping: dict) -> LogicalPlan:
    """Redirect :class:`Scan` nodes per ``mapping`` (old -> new name).

    Bindings are preserved, so qualified column references keep
    resolving against the original alias. A CTE that shadows a renamed
    name stops the rename inside its body (the definition itself still
    sees the base table, matching catalog-shadowing semantics).
    """
    if isinstance(plan, Scan):
        if plan.table in mapping:
            return Scan(mapping[plan.table], plan.binding)
        return plan
    if isinstance(plan, Dual):
        return plan
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(rename_tables(plan.plan, mapping), plan.binding)
    if isinstance(plan, Join):
        return Join(
            rename_tables(plan.left, mapping),
            rename_tables(plan.right, mapping),
            plan.condition,
            plan.weight_column,
        )
    if isinstance(plan, Filter):
        return Filter(rename_tables(plan.child, mapping), plan.predicate)
    if isinstance(plan, Project):
        return Project(
            rename_tables(plan.child, mapping), plan.items, plan.weight_column
        )
    if isinstance(plan, GroupAggregate):
        return GroupAggregate(
            rename_tables(plan.child, mapping),
            plan.group_by,
            plan.items,
            plan.having,
            plan.weight_column,
        )
    if isinstance(plan, CubeAggregate):
        return CubeAggregate(
            rename_tables(plan.child, mapping),
            plan.group_by,
            plan.items,
            plan.having,
            plan.weight_column,
        )
    if isinstance(plan, OrderBy):
        return OrderBy(rename_tables(plan.child, mapping), plan.keys)
    if isinstance(plan, Limit):
        return Limit(rename_tables(plan.child, mapping), plan.count)
    if isinstance(plan, WithCTE):
        body_mapping = mapping
        if plan.name in mapping:
            body_mapping = {
                k: v for k, v in mapping.items() if k != plan.name
            }
        return WithCTE(
            plan.name,
            rename_tables(plan.definition, mapping),
            rename_tables(plan.body, body_mapping),
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def transform_plan_exprs(plan: LogicalPlan, fn) -> LogicalPlan:
    """Rebuild ``plan`` with ``fn`` applied to every expression."""
    if isinstance(plan, (Scan, Dual)):
        return plan
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(transform_plan_exprs(plan.plan, fn), plan.binding)
    if isinstance(plan, Join):
        return Join(
            transform_plan_exprs(plan.left, fn),
            transform_plan_exprs(plan.right, fn),
            fn(plan.condition),
            plan.weight_column,
        )
    if isinstance(plan, Filter):
        return Filter(transform_plan_exprs(plan.child, fn), fn(plan.predicate))
    if isinstance(plan, Project):
        return Project(
            transform_plan_exprs(plan.child, fn),
            _map_items(plan.items, fn),
            plan.weight_column,
        )
    if isinstance(plan, (GroupAggregate, CubeAggregate)):
        node = type(plan)
        return node(
            transform_plan_exprs(plan.child, fn),
            tuple(fn(e) for e in plan.group_by),
            _map_items(plan.items, fn),
            fn(plan.having) if plan.having is not None else None,
            plan.weight_column,
        )
    if isinstance(plan, OrderBy):
        return OrderBy(
            transform_plan_exprs(plan.child, fn),
            tuple(OrderItem(fn(k.expr), k.ascending) for k in plan.keys),
        )
    if isinstance(plan, Limit):
        return Limit(transform_plan_exprs(plan.child, fn), plan.count)
    if isinstance(plan, WithCTE):
        return WithCTE(
            plan.name,
            transform_plan_exprs(plan.definition, fn),
            transform_plan_exprs(plan.body, fn),
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def _map_items(items, fn):
    return tuple(SelectItem(fn(item.expr), item.alias) for item in items)


# ----------------------------------------------------------------------
# literal parameterization (plan-cache keys)
# ----------------------------------------------------------------------
def parameterize_query(query: SelectQuery):
    """Replace every literal with a :class:`~repro.engine.expr.Parameter`.

    Returns ``(shape, values)``: a hashable query skeleton that
    identifies the *shape* of the query, and the tuple of literal values
    to bind back before execution. Literals that compare equal but have
    different python types (``1`` / ``1.0`` / ``True``) get distinct
    parameters so binding can never change a result's dtype.
    """
    registry: dict = {}
    values: list = []

    def convert(expr: Expr) -> Expr:
        return _parameterize_expr(expr, registry, values)

    shape = _transform_query(query, convert)
    return shape, tuple(values)


def _parameterize_expr(expr, registry, values):
    if isinstance(expr, Literal):
        key = (type(expr.value), expr.value)
        param = registry.get(key)
        if param is None:
            param = Parameter(len(values))
            registry[key] = param
            values.append(expr.value)
        return param
    from ..expr import (
        AggCall,
        Between,
        BinOp,
        FuncCall,
        InList,
        UnaryOp,
    )

    def recurse(e):
        return _parameterize_expr(e, registry, values)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, recurse(expr.left), recurse(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, recurse(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(recurse(a) for a in expr.args))
    if isinstance(expr, Between):
        return Between(
            recurse(expr.subject), recurse(expr.low), recurse(expr.high)
        )
    if isinstance(expr, InList):
        return InList(
            recurse(expr.subject), tuple(recurse(o) for o in expr.options)
        )
    if isinstance(expr, AggCall):
        arg = recurse(expr.arg) if expr.arg is not None else None
        return AggCall(expr.func, arg)
    return expr


def _transform_query(query: SelectQuery, fn) -> SelectQuery:
    return SelectQuery(
        items=tuple(SelectItem(fn(i.expr), i.alias) for i in query.items),
        from_clause=_transform_from(query.from_clause, fn),
        where=fn(query.where) if query.where is not None else None,
        group_by=tuple(fn(e) for e in query.group_by),
        with_cube=query.with_cube,
        having=fn(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(fn(o.expr), o.ascending) for o in query.order_by
        ),
        limit=query.limit,
        ctes=tuple(
            (name, _transform_query(cte, fn)) for name, cte in query.ctes
        ),
    )


def _transform_from(ref, fn):
    if ref is None:
        return None
    if isinstance(ref, NamedTable):
        return ref
    if isinstance(ref, SubqueryTable):
        return SubqueryTable(_transform_query(ref.query, fn), ref.alias)
    if isinstance(ref, JoinClause):
        return JoinClause(
            _transform_from(ref.left, fn),
            _transform_from(ref.right, fn),
            fn(ref.condition),
        )
    raise TypeError(f"unsupported FROM clause {type(ref).__name__}")


def bind_plan(plan: LogicalPlan, values) -> LogicalPlan:
    """Substitute parameter slots with concrete literal values."""
    mapping = {
        Parameter(i): Literal(value) for i, value in enumerate(values)
    }
    if not mapping:
        return plan
    return transform_plan_exprs(plan, lambda e: rewrite(e, mapping))


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
def format_plan(plan: LogicalPlan, indent: int = 0) -> str:
    """Human-readable plan tree (used by ``repro-cvopt query --explain``)."""
    pad = "  " * indent
    if isinstance(plan, Scan):
        return f"{pad}Scan({plan.table} AS {plan.binding})"
    if isinstance(plan, Dual):
        return f"{pad}Dual()"
    if isinstance(plan, SubqueryScan):
        return (
            f"{pad}SubqueryScan(AS {plan.binding})\n"
            + format_plan(plan.plan, indent + 1)
        )
    if isinstance(plan, Join):
        return (
            f"{pad}Join(on {plan.condition.sql()}"
            + (f", weighted={plan.weight_column}" if plan.weight_column else "")
            + ")\n"
            + format_plan(plan.left, indent + 1)
            + "\n"
            + format_plan(plan.right, indent + 1)
        )
    if isinstance(plan, Filter):
        return (
            f"{pad}Filter({plan.predicate.sql()})\n"
            + format_plan(plan.child, indent + 1)
        )
    if isinstance(plan, Project):
        cols = ", ".join(
            i.alias or i.expr.sql() for i in plan.items
        )
        tag = f", carry={plan.weight_column}" if plan.weight_column else ""
        return f"{pad}Project({cols}{tag})\n" + format_plan(plan.child, indent + 1)
    if isinstance(plan, (GroupAggregate, CubeAggregate)):
        name = type(plan).__name__
        keys = ", ".join(e.sql() for e in plan.group_by)
        tag = f", weighted={plan.weight_column}" if plan.weight_column else ""
        having = f", having={plan.having.sql()}" if plan.having is not None else ""
        return (
            f"{pad}{name}(by [{keys}]{having}{tag})\n"
            + format_plan(plan.child, indent + 1)
        )
    if isinstance(plan, OrderBy):
        keys = ", ".join(
            k.expr.sql() + ("" if k.ascending else " DESC") for k in plan.keys
        )
        return f"{pad}OrderBy({keys})\n" + format_plan(plan.child, indent + 1)
    if isinstance(plan, Limit):
        return f"{pad}Limit({plan.count})\n" + format_plan(plan.child, indent + 1)
    if isinstance(plan, WithCTE):
        return (
            f"{pad}WithCTE({plan.name})\n"
            + format_plan(plan.definition, indent + 1)
            + "\n"
            + format_plan(plan.body, indent + 1)
        )
    raise TypeError(f"unknown plan node {type(plan).__name__}")
