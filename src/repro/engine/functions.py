"""Scalar SQL functions, vectorized over numpy arrays.

Timestamps are int64 epoch seconds; the calendar functions convert through
``datetime64`` so leap years and month lengths are exact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SCALAR_FUNCTIONS", "register_scalar_function"]


def _coerce(arr, dtype) -> np.ndarray:
    """Numeric coercion that reports ill-typed input as a TypeError.

    ``np.asarray('x', dtype=float)`` raises ValueError; evaluation
    treats TypeError as the well-defined "ill-typed expression" signal,
    so normalize to that.
    """
    try:
        return np.asarray(arr, dtype=dtype)
    except ValueError as exc:
        raise TypeError(f"expected a numeric argument: {exc}") from exc


def _as_datetime64(seconds: np.ndarray) -> np.ndarray:
    return _coerce(seconds, np.int64).astype("datetime64[s]")


def sql_year(ts: np.ndarray) -> np.ndarray:
    dt = _as_datetime64(ts)
    return dt.astype("datetime64[Y]").astype(np.int64) + 1970


def sql_month(ts: np.ndarray) -> np.ndarray:
    dt = _as_datetime64(ts)
    return dt.astype("datetime64[M]").astype(np.int64) % 12 + 1


def sql_day(ts: np.ndarray) -> np.ndarray:
    dt = _as_datetime64(ts)
    days = dt.astype("datetime64[D]") - dt.astype("datetime64[M]")
    return days.astype(np.int64) + 1


def sql_hour(ts: np.ndarray) -> np.ndarray:
    secs = _coerce(ts, np.int64)
    return (secs // 3600) % 24


def sql_minute(ts: np.ndarray) -> np.ndarray:
    secs = _coerce(ts, np.int64)
    return (secs // 60) % 60


def sql_dayofweek(ts: np.ndarray) -> np.ndarray:
    """1=Sunday .. 7=Saturday (MySQL/Hive convention)."""
    days = _coerce(ts, np.int64) // 86400
    # 1970-01-01 was a Thursday (index 4 with Sunday=0).
    return (days + 4) % 7 + 1


def sql_concat(*parts: np.ndarray) -> np.ndarray:
    if not parts:
        raise ValueError("CONCAT requires at least one argument")
    out = _stringify(parts[0])
    for part in parts[1:]:
        out = np.char.add(out, _stringify(part))
    return out.astype(object)


def _stringify(arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.dtype.kind in ("U", "S"):
        return arr.astype(str)
    if arr.dtype.kind == "O":
        return np.asarray([str(v) for v in arr], dtype=str)
    if arr.dtype.kind == "f":
        # Render integral floats without the trailing .0 (Hive-like).
        as_int = arr.astype(np.int64)
        if np.all(arr == as_int):
            return as_int.astype(str)
        return arr.astype(str)
    return arr.astype(str)


def sql_if(cond: np.ndarray, then: np.ndarray, otherwise: np.ndarray) -> np.ndarray:
    return np.where(_coerce(cond, np.bool_), then, otherwise)


def sql_coalesce(*args: np.ndarray) -> np.ndarray:
    out = _coerce(args[0], np.float64)
    for arr in args[1:]:
        out = np.where(np.isnan(out), _coerce(arr, np.float64), out)
    return out


def sql_upper(arr: np.ndarray) -> np.ndarray:
    return np.asarray([str(v).upper() for v in arr], dtype=object)


def sql_lower(arr: np.ndarray) -> np.ndarray:
    return np.asarray([str(v).lower() for v in arr], dtype=object)


def sql_least(*args: np.ndarray) -> np.ndarray:
    out = np.asarray(args[0])
    for arr in args[1:]:
        out = np.minimum(out, arr)
    return out


def sql_greatest(*args: np.ndarray) -> np.ndarray:
    out = np.asarray(args[0])
    for arr in args[1:]:
        out = np.maximum(out, arr)
    return out


def sql_sqrt(arr: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.sqrt(_coerce(arr, np.float64))


def sql_ln(arr: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(_coerce(arr, np.float64))


def sql_round(arr: np.ndarray, digits: np.ndarray | None = None) -> np.ndarray:
    if digits is None:
        return np.round(arr)
    d = int(_coerce(np.asarray(digits).flat[0], np.float64))
    return np.round(arr, d)


def sql_floor(arr: np.ndarray) -> np.ndarray:
    return np.floor(arr)


def sql_ceil(arr: np.ndarray) -> np.ndarray:
    return np.ceil(arr)


def sql_power(base: np.ndarray, exponent: np.ndarray) -> np.ndarray:
    return np.power(_coerce(base, np.float64), exponent)


SCALAR_FUNCTIONS = {
    "YEAR": sql_year,
    "MONTH": sql_month,
    "DAY": sql_day,
    "HOUR": sql_hour,
    "MINUTE": sql_minute,
    "DAYOFWEEK": sql_dayofweek,
    "CONCAT": sql_concat,
    "IF": sql_if,
    "COALESCE": sql_coalesce,
    "ABS": np.abs,
    "UPPER": sql_upper,
    "LOWER": sql_lower,
    "LEAST": sql_least,
    "GREATEST": sql_greatest,
    "SQRT": sql_sqrt,
    "LN": sql_ln,
    "ROUND": sql_round,
    "FLOOR": sql_floor,
    "CEIL": sql_ceil,
    "POWER": sql_power,
    "SIGN": np.sign,
}


def register_scalar_function(name: str, fn) -> None:
    """Extension hook: add a scalar function usable from SQL."""
    key = name.upper()
    if key in SCALAR_FUNCTIONS:
        raise ValueError(f"scalar function {key} already registered")
    SCALAR_FUNCTIONS[key] = fn
