"""Column types and schema for the columnar engine.

The engine supports five logical types. Strings are dictionary-encoded
(int32 codes into a category list) which keeps group-by and comparisons
vectorized. Timestamps are int64 epoch seconds (UTC) — the scalar
functions YEAR/MONTH/DAY/HOUR operate on this representation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["DType", "ColumnSpec", "Schema", "numpy_dtype_for"]


class DType(enum.Enum):
    """Logical column type."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"
    TIMESTAMP = "timestamp"

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT64, DType.FLOAT64, DType.TIMESTAMP)

    @property
    def storage_dtype(self) -> np.dtype:
        return numpy_dtype_for(self)


def numpy_dtype_for(dtype: DType) -> np.dtype:
    """Physical numpy dtype backing a logical type."""
    if dtype is DType.INT64:
        return np.dtype(np.int64)
    if dtype is DType.FLOAT64:
        return np.dtype(np.float64)
    if dtype is DType.BOOL:
        return np.dtype(np.bool_)
    if dtype is DType.STRING:
        return np.dtype(np.int32)  # dictionary codes
    if dtype is DType.TIMESTAMP:
        return np.dtype(np.int64)  # epoch seconds
    raise ValueError(f"unknown dtype: {dtype!r}")


def infer_dtype(values) -> DType:
    """Infer a logical type from a python sequence or numpy array."""
    arr = np.asarray(values)
    if arr.dtype.kind in ("U", "S", "O"):
        return DType.STRING
    if arr.dtype.kind == "b":
        return DType.BOOL
    if arr.dtype.kind in ("i", "u"):
        return DType.INT64
    if arr.dtype.kind == "f":
        return DType.FLOAT64
    if arr.dtype.kind == "M":
        return DType.TIMESTAMP
    raise TypeError(f"cannot infer engine dtype from numpy dtype {arr.dtype}")


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of one column."""

    name: str
    dtype: DType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")


class Schema:
    """Ordered collection of :class:`ColumnSpec` with name lookup."""

    def __init__(self, columns) -> None:
        self._columns = tuple(columns)
        self._index = {}
        for i, col in enumerate(self._columns):
            if col.name in self._index:
                raise ValueError(f"duplicate column name: {col.name!r}")
            self._index[col.name] = i

    @property
    def columns(self) -> tuple:
        return self._columns

    @property
    def names(self) -> tuple:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self.names)}"
            ) from None

    def index_of(self, name: str) -> int:
        if name not in self._index:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self.names)}"
            )
        return self._index[name]

    def dtype_of(self, name: str) -> DType:
        return self[name].dtype

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({cols})"
