"""Per-group aggregate kernels, with optional row weights.

All kernels take pre-computed group ids (``gids``, dense ``0..n_groups-1``
int64 per row) and return one float64 value per group.

Weights implement Horvitz-Thompson scale-up for approximate query
processing: a sampled row from stratum ``c`` carries weight ``n_c / s_c``.
``SUM`` becomes the weighted sum, ``COUNT`` the weighted count, and ``AVG``
their ratio. ``MIN``/``MAX`` are the sample extrema (weights cannot
unbias them; this matches how AQP systems report them). ``VAR``/``STD``
are population moments; ``MEDIAN`` is the weighted median.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "compute_aggregate",
    "group_sums",
    "group_counts",
]

_EMPTY = np.nan


def group_counts(gids: np.ndarray, n_groups: int, weights=None) -> np.ndarray:
    if weights is None:
        return np.bincount(gids, minlength=n_groups).astype(np.float64)
    return np.bincount(gids, weights=weights, minlength=n_groups)


def group_sums(
    values: np.ndarray, gids: np.ndarray, n_groups: int, weights=None
) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if weights is not None:
        values = values * weights
    return np.bincount(gids, weights=values, minlength=n_groups)


def _agg_count(values, gids, n_groups, weights):
    return group_counts(gids, n_groups, weights)


def _agg_sum(values, gids, n_groups, weights):
    return group_sums(values, gids, n_groups, weights)


def _agg_avg(values, gids, n_groups, weights):
    totals = group_sums(values, gids, n_groups, weights)
    counts = group_counts(gids, n_groups, weights)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(counts > 0, totals / counts, _EMPTY)


def _agg_min(values, gids, n_groups, weights):
    out = np.full(n_groups, np.inf)
    np.minimum.at(out, gids, np.asarray(values, dtype=np.float64))
    out[np.isinf(out)] = _EMPTY
    return out


def _agg_max(values, gids, n_groups, weights):
    out = np.full(n_groups, -np.inf)
    np.maximum.at(out, gids, np.asarray(values, dtype=np.float64))
    out[np.isinf(out)] = _EMPTY
    return out


def _agg_var(values, gids, n_groups, weights):
    """Population variance (ddof=0), weighted when weights are given."""
    counts = group_counts(gids, n_groups, weights)
    sums = group_sums(values, gids, n_groups, weights)
    sq = np.asarray(values, dtype=np.float64) ** 2
    sums_sq = group_sums(sq, gids, n_groups, weights)
    with np.errstate(divide="ignore", invalid="ignore"):
        mean = np.where(counts > 0, sums / counts, _EMPTY)
        ex2 = np.where(counts > 0, sums_sq / counts, _EMPTY)
    var = ex2 - mean**2
    # Clamp tiny negatives from floating-point cancellation.
    return np.where(var < 0, 0.0, var)


def _agg_std(values, gids, n_groups, weights):
    return np.sqrt(_agg_var(values, gids, n_groups, weights))


def _agg_median(values, gids, n_groups, weights):
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.full(n_groups, _EMPTY)
    order = np.lexsort((values, gids))
    sorted_gids = gids[order]
    sorted_vals = values[order]
    sorted_w = (
        np.ones(len(values)) if weights is None else np.asarray(weights)[order]
    )
    starts = np.searchsorted(sorted_gids, np.arange(n_groups), side="left")
    ends = np.searchsorted(sorted_gids, np.arange(n_groups), side="right")
    out = np.full(n_groups, _EMPTY)
    for g in range(n_groups):
        lo, hi = starts[g], ends[g]
        if lo == hi:
            continue
        vals = sorted_vals[lo:hi]
        wts = sorted_w[lo:hi]
        cum = np.cumsum(wts)
        half = cum[-1] / 2.0
        idx = int(np.searchsorted(cum, half, side="left"))
        if weights is None and (hi - lo) % 2 == 0 and np.isclose(cum[idx], half):
            # Unweighted even count: average the two middle values.
            out[g] = 0.5 * (vals[idx] + vals[min(idx + 1, hi - lo - 1)])
        else:
            out[g] = vals[min(idx, hi - lo - 1)]
    return out


def _agg_count_if(values, gids, n_groups, weights):
    """COUNT_IF(cond): weighted count of rows where cond holds."""
    cond = np.asarray(values, dtype=np.float64)
    if weights is not None:
        cond = cond * weights
    return np.bincount(gids, weights=cond, minlength=n_groups)


AGGREGATE_FUNCTIONS = {
    "COUNT": _agg_count,
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MEAN": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "VAR": _agg_var,
    "VARIANCE": _agg_var,
    "STD": _agg_std,
    "STDDEV": _agg_std,
    "MEDIAN": _agg_median,
    "COUNT_IF": _agg_count_if,
}


def compute_aggregate(
    func: str,
    values: np.ndarray | None,
    gids: np.ndarray,
    n_groups: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch one aggregate over pre-factorized groups."""
    kernel = AGGREGATE_FUNCTIONS.get(func.upper())
    if kernel is None:
        raise ValueError(
            f"unknown aggregate {func!r}; "
            f"supported: {', '.join(sorted(AGGREGATE_FUNCTIONS))}"
        )
    if func.upper() != "COUNT" and values is None:
        raise ValueError(f"{func} requires an argument")
    if values is not None:
        values = np.asarray(values)
        if values.dtype == np.bool_:
            values = values.astype(np.float64)
    return kernel(values, gids, n_groups, weights)
