"""Expression AST and vectorized evaluator.

Expressions cover everything the paper's queries need: column references,
literals, arithmetic, comparisons, boolean logic, ``BETWEEN``/``IN``, and
scalar function calls (``YEAR``, ``HOUR``, ``CONCAT``, ``IF``, ...).

Aggregate calls (:class:`AggCall`) are AST-only: the planner extracts them
and replaces them with column references to computed per-group arrays, so
:func:`evaluate` never sees one.

String columns are dictionary-encoded; equality against a string literal
is evaluated on the codes (no decode). Other string operations decode to
object arrays, which numpy compares element-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .functions import SCALAR_FUNCTIONS
from .schema import DType
from .table import Table

__all__ = [
    "Expr",
    "Literal",
    "ColumnRef",
    "Star",
    "Parameter",
    "BinOp",
    "UnaryOp",
    "FuncCall",
    "Between",
    "InList",
    "AggCall",
    "evaluate",
    "evaluate_predicate",
    "collect_column_refs",
    "collect_agg_calls",
    "rewrite",
    "expr_to_sql",
]

COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
ARITHMETIC_OPS = {"+", "-", "*", "/", "%"}
BOOLEAN_OPS = {"AND", "OR"}


class Expr:
    """Base class for all expression nodes."""

    def sql(self) -> str:
        return expr_to_sql(self)


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int, float, str, or bool


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str


@dataclass(frozen=True)
class Star(Expr):
    """``*`` — only valid inside COUNT(*)."""


@dataclass(frozen=True)
class Parameter(Expr):
    """A literal slot in a parameterized (plan-cache) query shape.

    Parameters never reach evaluation: the planner binds them back to
    :class:`Literal` values before a plan is compiled.
    """

    index: int


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if (
            self.op not in COMPARISON_OPS
            and self.op not in ARITHMETIC_OPS
            and self.op not in BOOLEAN_OPS
        ):
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "NOT" or "-"
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("NOT", "-"):
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())
        object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class Between(Expr):
    subject: Expr
    low: Expr
    high: Expr


@dataclass(frozen=True)
class InList(Expr):
    subject: Expr
    options: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", tuple(self.options))


@dataclass(frozen=True)
class AggCall(Expr):
    """Aggregate function call, e.g. ``AVG(gpa)`` or ``COUNT(*)``.

    ``COUNT_IF(cond)`` keeps its condition in ``arg``.
    """

    func: str
    arg: Optional[Expr]  # None only for COUNT()

    def __post_init__(self) -> None:
        object.__setattr__(self, "func", self.func.upper())


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def evaluate(expr: Expr, table: Table, extra: dict | None = None) -> np.ndarray:
    """Evaluate ``expr`` over every row of ``table``.

    ``extra`` maps synthetic names (aggregate placeholders) to
    pre-computed arrays checked before the table's own columns.
    Returns a numpy array: bool for predicates, float/int for arithmetic,
    object for string-valued expressions.
    """
    if isinstance(expr, Literal):
        return np.full(table.num_rows, expr.value)
    if isinstance(expr, ColumnRef):
        if extra is not None and expr.name in extra:
            return extra[expr.name]
        return table.column(expr.name).decode()
    if isinstance(expr, Star):
        raise TypeError("'*' is only valid inside COUNT(*)")
    if isinstance(expr, Parameter):
        raise TypeError(
            f"unbound parameter ${expr.index}; bind literals before execution"
        )
    if isinstance(expr, UnaryOp):
        inner = evaluate(expr.operand, table, extra)
        if expr.op == "NOT":
            return ~inner.astype(np.bool_)
        return -inner
    if isinstance(expr, BinOp):
        return _evaluate_binop(expr, table, extra)
    if isinstance(expr, Between):
        subject = evaluate(expr.subject, table, extra)
        low = evaluate(expr.low, table, extra)
        high = evaluate(expr.high, table, extra)
        return (subject >= low) & (subject <= high)
    if isinstance(expr, InList):
        subject = evaluate(expr.subject, table, extra)
        mask = np.zeros(len(subject), dtype=np.bool_)
        for option in expr.options:
            mask |= subject == _literal_value(option)
        return mask
    if isinstance(expr, FuncCall):
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise ValueError(f"unknown scalar function {expr.name!r}")
        args = [evaluate(a, table, extra) for a in expr.args]
        return fn(*args)
    if isinstance(expr, AggCall):
        raise TypeError(
            f"aggregate {expr.func} cannot be evaluated row-wise; "
            "the planner must extract it first"
        )
    raise TypeError(f"cannot evaluate expression node {type(expr).__name__}")


def _literal_value(expr: Expr):
    if not isinstance(expr, Literal):
        raise TypeError("IN list members must be literals")
    return expr.value


def _evaluate_binop(expr: BinOp, table: Table, extra: dict | None) -> np.ndarray:
    if expr.op in BOOLEAN_OPS:
        left = evaluate(expr.left, table, extra).astype(np.bool_)
        right = evaluate(expr.right, table, extra).astype(np.bool_)
        return (left & right) if expr.op == "AND" else (left | right)

    # Fast path: dictionary-coded string (in)equality against a literal.
    if expr.op in ("=", "<>"):
        fast = _string_code_comparison(expr, table, extra)
        if fast is not None:
            return fast

    left = evaluate(expr.left, table, extra)
    right = evaluate(expr.right, table, extra)
    if expr.op in ARITHMETIC_OPS:
        # SQL treats booleans as 0/1 in arithmetic; numpy refuses
        # boolean "-" outright.
        if left.dtype == np.bool_:
            left = left.astype(np.int64)
        if right.dtype == np.bool_:
            right = right.astype(np.int64)
    if expr.op in COMPARISON_OPS:
        ops = {
            "=": np.equal,
            "<>": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        return ops[expr.op](left, right)
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if expr.op == "/":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.true_divide(left, right)
    if expr.op == "%":
        return np.mod(left, right)
    raise AssertionError(f"unhandled op {expr.op}")


def _string_code_comparison(
    expr: BinOp, table: Table, extra: dict | None
) -> np.ndarray | None:
    """Compare dictionary codes instead of decoding, when possible."""
    ref, lit = None, None
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        ref, lit = expr.left, expr.right
    elif isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        ref, lit = expr.right, expr.left
    if ref is None or not isinstance(lit.value, str):
        return None
    if extra is not None and ref.name in extra:
        return None
    if ref.name not in table:
        return None
    col = table.column(ref.name)
    if col.dtype is not DType.STRING:
        return None
    code = col.code_for(lit.value)
    eq = col.data == code if code >= 0 else np.zeros(len(col), dtype=np.bool_)
    return eq if expr.op == "=" else ~eq


def evaluate_predicate(expr: Expr, table: Table, extra: dict | None = None) -> np.ndarray:
    """Evaluate ``expr`` and coerce the result to a boolean mask."""
    result = evaluate(expr, table, extra)
    if result.dtype != np.bool_:
        result = result.astype(np.bool_)
    return result


# ----------------------------------------------------------------------
# traversal utilities
# ----------------------------------------------------------------------
def _children(expr: Expr) -> tuple:
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, FuncCall):
        return expr.args
    if isinstance(expr, Between):
        return (expr.subject, expr.low, expr.high)
    if isinstance(expr, InList):
        return (expr.subject, *expr.options)
    if isinstance(expr, AggCall):
        return (expr.arg,) if expr.arg is not None else ()
    return ()


def collect_column_refs(expr: Expr) -> list:
    """All :class:`ColumnRef` nodes in ``expr``, in visit order."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ColumnRef):
            out.append(node)
        stack.extend(reversed(_children(node)))
    return out


def collect_agg_calls(expr: Expr) -> list:
    """All :class:`AggCall` nodes in ``expr`` (not descending into them)."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, AggCall):
            out.append(node)
            continue
        stack.extend(reversed(_children(node)))
    return out


def rewrite(expr: Expr, mapping: dict) -> Expr:
    """Return a copy of ``expr`` with nodes replaced per ``mapping``.

    ``mapping`` keys are expression nodes (frozen dataclasses hash by
    value); any subtree equal to a key is replaced by its value.
    """
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rewrite(expr.left, mapping), rewrite(expr.right, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rewrite(expr.operand, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(rewrite(a, mapping) for a in expr.args))
    if isinstance(expr, Between):
        return Between(
            rewrite(expr.subject, mapping),
            rewrite(expr.low, mapping),
            rewrite(expr.high, mapping),
        )
    if isinstance(expr, InList):
        return InList(
            rewrite(expr.subject, mapping),
            tuple(rewrite(o, mapping) for o in expr.options),
        )
    if isinstance(expr, AggCall):
        arg = rewrite(expr.arg, mapping) if expr.arg is not None else None
        return AggCall(expr.func, arg)
    return expr


# ----------------------------------------------------------------------
# SQL rendering (used by tests for parser round-trips and by __repr__)
# ----------------------------------------------------------------------
def expr_to_sql(expr: Expr) -> str:
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, Parameter):
        return f"${expr.index}"
    if isinstance(expr, BinOp):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {expr_to_sql(expr.operand)})"
        return f"(-{expr_to_sql(expr.operand)})"
    if isinstance(expr, FuncCall):
        args = ", ".join(expr_to_sql(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Between):
        return (
            f"({expr_to_sql(expr.subject)} BETWEEN "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, InList):
        opts = ", ".join(expr_to_sql(o) for o in expr.options)
        return f"({expr_to_sql(expr.subject)} IN ({opts}))"
    if isinstance(expr, AggCall):
        inner = "*" if isinstance(expr.arg, Star) else (
            expr_to_sql(expr.arg) if expr.arg is not None else ""
        )
        return f"{expr.func}({inner})"
    raise TypeError(f"cannot render {type(expr).__name__}")
