"""Workload-to-weights derivation (paper Section 4.3)."""

from .model import (
    AggregationGroup,
    Workload,
    WorkloadQuery,
    derive_aggregation_groups,
    specs_from_workload,
)

__all__ = [
    "AggregationGroup",
    "Workload",
    "WorkloadQuery",
    "derive_aggregation_groups",
    "specs_from_workload",
]
