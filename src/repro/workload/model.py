"""Workload-driven weights (paper Section 4.3).

A query workload — queries with occurrence counts, from logs or user
expectation — is preprocessed into *aggregation groups*: each group-by
query stratifies its aggregation columns into groups identified by
``(aggregation column, assignment of the group-by attributes)``, with
selection predicates applied first (the paper's query C only yields
groups from the Science college). One aggregation group may be produced
by several queries; its frequency is the total number of occurrences of
queries producing it, and that frequency becomes its weight in the
CVOPT optimization.

Note: the paper's Table 3 prints frequency 25 for groups produced only
by query A (20 repeats); the derivation defined in the text gives 20
(and 35 = 20 + 15 for the groups shared by A and C, and 10 for B's).
We implement the text's semantics; the unit tests pin 20/35/10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.spec import GroupByQuerySpec, apply_derived_columns, specs_from_sql
from ..engine.expr import evaluate_predicate
from ..engine.groupby import compute_group_keys
from ..engine.sql.parser import parse_query
from ..engine.table import Table

__all__ = [
    "WorkloadQuery",
    "Workload",
    "AggregationGroup",
    "derive_aggregation_groups",
    "specs_from_workload",
]


@dataclass(frozen=True)
class WorkloadQuery:
    """One distinct query and how often it occurs."""

    sql: str
    repeats: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")


@dataclass
class Workload:
    """A bag of queries with frequencies."""

    queries: List[WorkloadQuery] = field(default_factory=list)

    def add(self, sql: str, repeats: int = 1, name: str = "") -> "Workload":
        self.queries.append(WorkloadQuery(sql=sql, repeats=repeats, name=name))
        return self

    @property
    def total_queries(self) -> int:
        return sum(q.repeats for q in self.queries)

    @classmethod
    def from_log(cls, source) -> "Workload":
        """Parse a query log into a workload.

        ``source`` is a path, a multi-line log string, or an iterable
        of lines. Two line formats are accepted (blank lines and ``--``
        comments are skipped):

        * a JSON object ``{"sql": ..., "repeats": N, "name": ...}``
          (repeats and name optional);
        * a raw SQL statement — repeated identical statements are
          aggregated into one :class:`WorkloadQuery` with the total
          count, which is how the paper turns a log into frequencies.

        A single-line string is treated as a path unless it plainly is
        a query (starts with SELECT/WITH or a JSON object), so a
        mistyped log path raises ``FileNotFoundError`` instead of being
        silently parsed as SQL.
        """
        import json
        import pathlib
        import re

        if isinstance(source, pathlib.Path):
            lines = source.read_text().splitlines()
        elif isinstance(source, str):
            if "\n" in source:
                lines = source.splitlines()
            elif re.match(r"\s*(\{|(?i:select|with)\b)", source):
                lines = [source]
            else:
                lines = pathlib.Path(source).read_text().splitlines()
        else:
            lines = list(source)

        workload = cls()
        raw_counts: Dict[str, int] = {}
        for line in lines:
            line = line.strip()
            if not line or line.startswith("--"):
                continue
            if line.startswith("{"):
                entry = json.loads(line)
                workload.add(
                    entry["sql"],
                    repeats=int(entry.get("repeats", 1)),
                    name=str(entry.get("name", "")),
                )
            else:
                sql = line.rstrip(";")
                raw_counts[sql] = raw_counts.get(sql, 0) + 1
        for sql, repeats in raw_counts.items():
            workload.add(sql, repeats=repeats)
        return workload

    @classmethod
    def from_query_log(cls, path) -> "Workload":
        """Build a workload from the structured JSONL query log that
        ``warehouse serve --query-log`` writes.

        Reads the active file plus any rotated siblings (``.1``,
        ``.2``, ...) oldest-first, aggregates identical SQL texts into
        one :class:`WorkloadQuery` with the observed frequency, and
        skips records for queries that never parsed (``outcome ==
        "error"``). Contract-rejected queries are kept — they are
        exactly the queries better samples would rescue. This closes
        the loop: the log the server writes is the advisor's input
        format.
        """
        from ..obs import iter_query_log

        raw_counts: Dict[str, int] = {}
        for record in iter_query_log(path):
            sql = record.get("sql")
            if not sql or not isinstance(sql, str):
                continue
            if record.get("outcome") == "error":
                continue
            sql = sql.strip().rstrip(";")
            raw_counts[sql] = raw_counts.get(sql, 0) + 1
        workload = cls()
        for sql, repeats in raw_counts.items():
            workload.add(sql, repeats=repeats)
        return workload


@dataclass(frozen=True)
class AggregationGroup:
    """(aggregation column, group-by assignment) with its frequency."""

    agg_column: str
    assignment: Tuple[Tuple[str, object], ...]  # ((attr, value), ...) sorted
    frequency: int

    def describe(self) -> str:
        parts = ", ".join(f"{a}={v}" for a, v in self.assignment)
        return f"({self.agg_column}, {parts})"


def derive_aggregation_groups(
    workload: Workload, table: Table
) -> List[AggregationGroup]:
    """Preprocess a workload into aggregation groups + frequencies."""
    freq: Dict[tuple, int] = {}
    for wq in workload.queries:
        for agg_column, attrs, key in _groups_of_query(wq.sql, table):
            assignment = tuple(sorted(zip(attrs, key)))
            identity = (agg_column, assignment)
            freq[identity] = freq.get(identity, 0) + wq.repeats
    return [
        AggregationGroup(agg_column=col, assignment=assignment, frequency=f)
        for (col, assignment), f in freq.items()
    ]


def _groups_of_query(sql: str, table: Table):
    """Yield (agg_column, group_by_attrs, key_tuple) for one query,
    with its selection predicate applied."""
    specs, derived = specs_from_sql(sql)
    parsed = parse_query(sql)
    working = apply_derived_columns(table, derived)
    if parsed.where is not None:
        mask = evaluate_predicate(parsed.where, working)
        working = working.filter(mask)
    for spec in specs:
        keys = compute_group_keys(working, spec.group_by)
        tuples = keys.key_tuples(working)
        for key in tuples:
            for agg in spec.aggregates:
                yield agg.column, spec.group_by, key


def specs_from_workload(
    workload: Workload, table: Table
) -> Tuple[List[GroupByQuerySpec], list]:
    """Build CVOPT specs whose cell weights are workload frequencies.

    For every distinct group-by attribute set in the workload, one spec
    is produced over the union of its aggregation columns; the weight of
    cell ``(group, column)`` is the aggregation group's frequency, and 0
    for data groups the workload never touches (they still receive the
    representation floor during allocation).
    """
    all_derived: list = []
    by_attrs: Dict[tuple, Dict] = {}
    for wq in workload.queries:
        specs, derived = specs_from_sql(wq.sql)
        for dc in derived:
            if all(existing.name != dc.name for existing in all_derived):
                all_derived.append(dc)
        parsed = parse_query(wq.sql)
        working = apply_derived_columns(table, derived)
        if parsed.where is not None:
            working = working.filter(
                evaluate_predicate(parsed.where, working)
            )
        for spec in specs:
            attrs = tuple(sorted(spec.group_by))
            entry = by_attrs.setdefault(
                attrs, {"columns": [], "weights": {}}
            )
            for agg in spec.aggregates:
                if agg.column not in entry["columns"]:
                    entry["columns"].append(agg.column)
            positions = [spec.group_by.index(a) for a in attrs]
            keys = compute_group_keys(working, spec.group_by)
            for key in keys.key_tuples(working):
                canonical = tuple(key[p] for p in positions)
                for agg in spec.aggregates:
                    cell = (canonical, agg.column)
                    entry["weights"][cell] = (
                        entry["weights"].get(cell, 0) + wq.repeats
                    )

    specs_out: List[GroupByQuerySpec] = []
    prepared = apply_derived_columns(table, all_derived)
    for attrs, entry in by_attrs.items():
        keys = compute_group_keys(prepared, attrs)
        cell_weights: Dict[tuple, float] = {}
        for key in keys.key_tuples(prepared):
            for column in entry["columns"]:
                cell_weights[(key, column)] = float(
                    entry["weights"].get((key, column), 0)
                )
        specs_out.append(
            GroupByQuerySpec(
                group_by=attrs,
                aggregates=tuple(entry["columns"]),
                cell_weights=cell_weights,
            )
        )
    return specs_out, all_derived
