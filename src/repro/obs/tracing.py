"""Cross-process trace spans with context-propagated trace ids.

One trace = one `/query` request. The HTTP front opens a **root span**
(:func:`Tracer.trace`) and stores the active trace in a
:class:`contextvars.ContextVar`, so child spans opened anywhere below —
routing, plan compile, factorize, merge, contract build — attach to the
right trace without any plumbing through call signatures. Context
propagation follows Python's rules:

* ``asyncio.to_thread`` **does** carry the context, so spans opened
  inside the blocking service call land in the request's trace.
* ``ThreadPoolExecutor.submit`` does **not** — the sharded front's
  scatter path therefore submits fan-out work via
  ``contextvars.copy_context().run(...)`` (see
  ``warehouse/sharded_service.py``).
* Process boundaries carry nothing — the pipe protocol ships the
  ``trace_id`` in the ``partials`` payload, the worker records spans
  against that id with :func:`remote_span`, returns them as dicts in
  the response, and the front :meth:`Tracer.graft`\\ s them into the
  live trace. Graft dedupes by ``span_id`` because the in-process shard
  client shares the front's tracer and would otherwise double-record.

Everything is a no-op when no trace is active: :func:`Tracer.span`
checks the contextvar once and hands back a shared null span, so
library use (tests, benchmarks, direct ``AQPSession`` calls) pays one
dict-free attribute check per instrumented site.

Finished traces land in a bounded ring (default 256) served by
``GET /debug/traces``.
"""

from __future__ import annotations

import collections
import contextvars
import os
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "default_tracer",
    "current_trace_id",
]


def _new_id(nbytes: int = 8) -> str:
    return uuid.uuid4().hex[: nbytes * 2]


class Span:
    """One timed operation inside a trace.

    Used as a context manager; ``tags`` may be set at open time or via
    :meth:`set_tag` while open. Records wall-clock start plus a
    monotonic duration.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_time",
        "duration",
        "tags",
        "_t0",
        "_trace",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        tags: Optional[Dict[str, Any]] = None,
        trace: Optional["Trace"] = None,
        span_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id or _new_id()
        self.parent_id = parent_id
        self.name = name
        self.start_time = time.time()
        self.duration: Optional[float] = None
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self._t0 = time.perf_counter()
        self._trace = trace

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def finish(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._t0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self.finish()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration": self.duration,
            "tags": dict(self.tags),
        }


class _NullSpan:
    """Shared do-nothing span returned when no trace is active."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Trace:
    """A root span plus every child recorded under one trace id."""

    def __init__(self, trace_id: str, root: Span) -> None:
        self.trace_id = trace_id
        self.root = root
        self._spans: List[Span] = [root]
        self._remote: List[Dict[str, Any]] = []
        self._seen: set = {root.span_id}
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            if span.span_id in self._seen:
                return
            self._seen.add(span.span_id)
            self._spans.append(span)

    def add_remote(self, span_dict: Dict[str, Any]) -> None:
        span_id = span_dict.get("span_id")
        with self._lock:
            if span_id is not None and span_id in self._seen:
                return
            if span_id is not None:
                self._seen.add(span_id)
            self._remote.append(dict(span_dict))

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            spans = [s.to_dict() for s in self._spans]
            spans.extend(dict(r) for r in self._remote)
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "start_time": self.root.start_time,
            "duration": self.root.duration,
            "tags": dict(self.root.tags),
            "spans": spans,
        }


class _ActiveTrace:
    """Contextvar payload: the trace plus the innermost open span."""

    __slots__ = ("trace", "span")

    def __init__(self, trace: Trace, span: Span) -> None:
        self.trace = trace
        self.span = span


_current: contextvars.ContextVar[Optional[_ActiveTrace]] = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)


def current_trace_id() -> Optional[str]:
    """Trace id of the active trace in this context, if any."""
    active = _current.get()
    return active.trace.trace_id if active is not None else None


class _TraceContext:
    """Context manager for a root span; pushes/pops the contextvar."""

    __slots__ = ("_tracer", "_trace", "_token")

    def __init__(self, tracer: "Tracer", trace: Trace) -> None:
        self._tracer = tracer
        self._trace = trace
        self._token: Optional[contextvars.Token] = None

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def trace_id(self) -> str:
        return self._trace.trace_id

    @property
    def root(self) -> Span:
        return self._trace.root

    def __enter__(self) -> "_TraceContext":
        self._token = _current.set(
            _ActiveTrace(self._trace, self._trace.root)
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._trace.root.tags.setdefault("error", exc_type.__name__)
        self._trace.root.finish()
        if self._token is not None:
            _current.reset(self._token)
        self._tracer._record(self._trace)


class _SpanContext:
    """Context manager for a child span; nests via the contextvar."""

    __slots__ = ("_span", "_active", "_token")

    def __init__(self, span: Span, active: _ActiveTrace) -> None:
        self._span = span
        self._active = active
        self._token: Optional[contextvars.Token] = None

    def set_tag(self, key: str, value: Any) -> None:
        self._span.set_tag(key, value)

    def finish(self) -> None:
        self._span.finish()

    def __enter__(self) -> "_SpanContext":
        self._token = _current.set(
            _ActiveTrace(self._active.trace, self._span)
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._span.finish()
        if self._token is not None:
            _current.reset(self._token)


class Tracer:
    """Opens spans against the context-active trace; keeps a ring of
    finished traces for ``GET /debug/traces``."""

    def __init__(self, max_traces: int = 256) -> None:
        self._ring: collections.deque = collections.deque(
            maxlen=max_traces
        )
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------
    def trace(self, name: str, **tags) -> _TraceContext:
        """Open a root span / new trace (the front calls this per query)."""
        trace_id = _new_id()
        root = Span(trace_id, name, parent_id=None, tags=tags or None)
        return _TraceContext(self, Trace(trace_id, root))

    def span(self, name: str, **tags):
        """Open a child span under the active trace, or a shared no-op
        span when no trace is active (the common library-use case)."""
        active = _current.get()
        if active is None:
            return _NULL_SPAN
        span = Span(
            active.trace.trace_id,
            name,
            parent_id=active.span.span_id,
            tags=tags or None,
        )
        active.trace.add(span)
        return _SpanContext(span, active)

    def annotate(self, **tags) -> None:
        """Tag the innermost open span of the active trace (no-op
        otherwise). Lets deep layers report facts — answer-cache hit,
        route decision — without owning a span."""
        active = _current.get()
        if active is not None:
            active.span.tags.update(tags)

    # ------------------------------------------------------------------
    # cross-process grafting
    # ------------------------------------------------------------------
    def remote_span(
        self, trace_id: Optional[str], name: str, **tags
    ) -> Span:
        """A standalone span recorded in a *worker* process against the
        front's trace id. Always real (never null) so the worker can
        return it over the pipe; tagged with the worker ``pid`` so
        tests and humans can see it crossed a process boundary."""
        span = Span(trace_id or "-", name, parent_id=None, tags=tags)
        span.set_tag("pid", os.getpid())
        return span

    def graft(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Attach worker-returned span dicts to the active trace.

        Dedupes by span_id — the in-process shard client lives in the
        front's process, so its spans may arrive twice."""
        active = _current.get()
        if active is None or not span_dicts:
            return
        root_id = active.trace.root.span_id
        for d in span_dicts:
            if not isinstance(d, dict):
                continue
            d = dict(d)
            d["trace_id"] = active.trace.trace_id
            d.setdefault("parent_id", root_id)
            if d["parent_id"] is None:
                d["parent_id"] = root_id
            active.trace.add_remote(d)

    # ------------------------------------------------------------------
    # ring access
    # ------------------------------------------------------------------
    def _record(self, trace: Trace) -> None:
        with self._lock:
            self._ring.append(trace)

    def recent_traces(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Most-recent-first list of finished traces as dicts."""
        with self._lock:
            traces = list(self._ring)
        return [t.to_dict() for t in reversed(traces[-limit:])]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer the serving layers share."""
    return _DEFAULT
