"""Thread-safe metrics registry with Prometheus text exposition.

Dependency-free (stdlib only) so every layer of the warehouse — engine
hot paths included — can record counters, gauges and histograms without
pulling a client library into the serving processes. Design goals, in
order:

1. **Cheap on the hot path.** Recording is one dict lookup plus an add
   under a per-metric lock; label resolution is a tuple build. A
   disabled registry (``set_enabled(False)``) short-circuits before the
   lock, which is what ``benchmarks/bench_obs.py`` uses to measure the
   instrumentation overhead itself.
2. **Safe under concurrency.** Every mutation happens under the owning
   metric's lock; ``render()`` and ``snapshot()`` take consistent
   per-metric snapshots, so a scrape during a hot-swap never sees torn
   counts.
3. **Prometheus-compatible output.** :meth:`MetricsRegistry.render`
   emits the v0.0.4 text format (``# HELP`` / ``# TYPE`` + samples,
   histograms as cumulative ``_bucket``/``_sum``/``_count`` series)
   that ``GET /metrics`` serves and any Prometheus scraper ingests.

Histograms use **fixed log-scale buckets** (default: powers of two from
100 µs to ~100 s) rather than adaptive ones: fixed bounds make series
from different processes — the scatter-gather front and its shard
workers — mergeable by simple addition.

Metrics are registered once, at module import of the layer that owns
them, against the process-wide :func:`default_registry`; registration
is idempotent (same name + same type returns the existing metric), so
re-imports and multiple service instances share one set of series.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "log_buckets",
]


def log_buckets(
    start: float = 1e-4, factor: float = 2.0, count: int = 21
) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds: ``start * factor**i``.

    The defaults span 100 µs to ~105 s in factor-of-two steps — wide
    enough for both an answer-cache dictionary hit and a full-table
    exact fallback on one axis.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


_NO_LABELS: Tuple[str, ...] = ()


def _label_values(
    labelnames: Tuple[str, ...], labels: Mapping[str, object]
) -> Tuple[str, ...]:
    if not labelnames and not labels:  # hot path: unlabelled metric
        return _NO_LABELS
    if len(labelnames) == 1 and len(labels) == 1:
        try:  # hot path: single label, no set building
            return (str(labels[labelnames[0]]),)
        except KeyError:
            pass  # fall through to the diagnostic error below
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_labels(
    labelnames: Sequence[str], values: Sequence[str], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape(value)}"'
        for name, value in zip(labelnames, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared plumbing: name, labels, per-metric lock, enable check."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def _enabled(self) -> bool:
        return self._registry is None or self._registry.enabled


class Counter(_Metric):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_values(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}"
            f"{_format_labels(self.labelnames, values)}"
            f" {_format_value(v)}"
            for values, v in items
        ]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                ",".join(values) if values else "": v
                for values, v in sorted(self._values.items())
            }


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, pending work)."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        if not self._enabled:
            return
        key = _label_values(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._enabled:
            return
        key = _label_values(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}"
            f"{_format_labels(self.labelnames, values)}"
            f" {_format_value(v)}"
            for values, v in items
        ]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                ",".join(values) if values else "": v
                for values, v in sorted(self._values.items())
            }


class _HistogramState:
    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets  # per-bucket (non-cumulative)
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram (log-scale bounds by default).

    ``observe`` finds the first bucket whose upper bound holds the
    value (linear scan — the bucket list is ~20 long and the common
    values land early); values beyond the last bound count only toward
    the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames, registry)
        bounds = tuple(buckets) if buckets is not None else log_buckets()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._states: Dict[Tuple[str, ...], _HistogramState] = {}

    def observe(self, value: float, **labels) -> None:
        if not self._enabled:
            return
        key = _label_values(self.labelnames, labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(
                    len(self.bounds)
                )
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    state.counts[i] += 1
                    break
            state.total += value
            state.count += 1

    def count(self, **labels) -> int:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            state = self._states.get(key)
            return state.count if state else 0

    def sum(self, **labels) -> float:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            state = self._states.get(key)
            return state.total if state else 0.0

    def collect(self) -> List[str]:
        with self._lock:
            items = [
                (values, list(state.counts), state.total, state.count)
                for values, state in sorted(self._states.items())
            ]
        if not items and not self.labelnames:
            items = [((), [0] * len(self.bounds), 0.0, 0)]
        lines: List[str] = []
        for values, counts, total, count in items:
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, counts):
                cumulative += bucket_count
                le = _format_labels(
                    self.labelnames, values,
                    extra=f'le="{_format_value(bound)}"',
                )
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            inf = _format_labels(
                self.labelnames, values, extra='le="+Inf"'
            )
            lines.append(f"{self.name}_bucket{inf} {count}")
            plain = _format_labels(self.labelnames, values)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                ",".join(values) if values else "": {
                    "count": state.count,
                    "sum": state.total,
                }
                for values, state in sorted(self._states.items())
            }


class MetricsRegistry:
    """Named metrics with idempotent registration and one render pass.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered with the same type and label
    names (so module-level registration is re-import safe) and raise
    :class:`ValueError` on a conflicting re-registration.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self.enabled = True

    def set_enabled(self, enabled: bool) -> None:
        """Globally enable/disable recording (collection still works).

        Used by the overhead benchmark to measure the uninstrumented
        baseline without unwiring any call sites.
        """
        self.enabled = bool(enabled)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    _NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

    def _register(self, cls, name, help_text, labelnames, **kwargs):
        if not self._NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(
                name, help_text, labelnames, registry=self, **kwargs
            )
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition (v0.0.4) of every metric."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help_text:
                lines.append(
                    f"# HELP {metric.name} {_escape(metric.help_text)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.collect())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready ``{name: {kind, values}}`` of every metric."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {
            metric.name: {
                "kind": metric.kind,
                "values": metric.snapshot(),
            }
            for metric in metrics
        }


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry that ``GET /metrics`` serves."""
    return _DEFAULT
