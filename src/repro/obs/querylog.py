"""Structured JSONL query log with size-based rotation.

One JSON object per line, one line per served query. The record schema
(see ``docs/OBSERVABILITY.md``) is deliberately the input format for
the workload advisor: ``Workload.from_query_log`` replays these files,
and ``warehouse advise --query-log`` closes the serve → advise loop.

Rotation is size-based: when the active file would exceed
``max_bytes`` after a write, it is renamed to ``<path>.1`` (existing
``.1`` → ``.2`` and so on), the oldest file beyond ``backups`` is
dropped, and a fresh active file is started. Writes are line-atomic
under a lock and flushed immediately so a concurrently running
``advise`` sees every completed query.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

__all__ = ["QueryLog", "iter_query_log", "query_log_files"]


class QueryLog:
    """Append-only JSONL writer with ``logrotate``-style rotation."""

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: int = 10 * 1024 * 1024,
        backups: int = 3,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._fh = None
        self._size = 0
        self.records_written = 0

    # ------------------------------------------------------------------
    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(
                f"{self.path.name}.{self.backups}"
            )
            oldest.unlink(missing_ok=True)
            for i in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    src.replace(
                        self.path.with_name(f"{self.path.name}.{i + 1}")
                    )
            if self.path.exists():
                self.path.replace(
                    self.path.with_name(f"{self.path.name}.1")
                )
        self._open()

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record (adds ``ts`` if absent); flushes per line."""
        record = dict(record)
        record.setdefault("ts", time.time())
        line = json.dumps(record, separators=(",", ":"), default=str)
        data = line + "\n"
        with self._lock:
            if self._fh is None:
                self._open()
            if self._size > 0 and self._size + len(data) > self.max_bytes:
                self._rotate()
            self._fh.write(data)
            self._fh.flush()
            self._size += len(data)
            self.records_written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": str(self.path),
                "max_bytes": self.max_bytes,
                "backups": self.backups,
                "records_written": self.records_written,
                "active_bytes": self._size,
            }

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def query_log_files(path: Union[str, Path]) -> Iterator[Path]:
    """Yield the rotated chain oldest-first: ``.N`` … ``.1``, active."""
    path = Path(path)
    rotated = []
    for sibling in path.parent.glob(f"{path.name}.*"):
        suffix = sibling.name[len(path.name) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), sibling))
    for _, sibling in sorted(rotated, reverse=True):
        yield sibling
    if path.exists():
        yield path


def iter_query_log(
    path: Union[str, Path],
    include_rotated: bool = True,
) -> Iterator[Dict[str, Any]]:
    """Yield records oldest-first across the rotated chain.

    Skips blank and torn/non-JSON lines (a crash mid-write leaves at
    most one) rather than failing the whole replay.
    """
    path = Path(path)
    files = (
        list(query_log_files(path))
        if include_rotated
        else ([path] if path.exists() else [])
    )
    for file in files:
        with open(file, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
