"""Dependency-free observability: metrics, tracing, query log.

Three independent pieces, shared by every serving layer:

- :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms in
  a process-wide registry with Prometheus text exposition
  (``GET /metrics``).
- :mod:`repro.obs.tracing` — contextvar-propagated trace spans with a
  pipe-protocol hand-off into shard-worker processes and a bounded
  ring of recent traces (``GET /debug/traces``).
- :mod:`repro.obs.querylog` — rotating JSONL query log whose record
  schema feeds ``Workload.from_query_log`` / ``warehouse advise``.

This package imports nothing from the rest of ``repro`` so any layer —
including ``engine`` hot paths — can depend on it without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    log_buckets,
)
from repro.obs.querylog import QueryLog, iter_query_log, query_log_files
from repro.obs.tracing import (
    Span,
    Trace,
    Tracer,
    current_trace_id,
    default_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryLog",
    "Span",
    "Trace",
    "Tracer",
    "current_trace_id",
    "default_registry",
    "default_tracer",
    "iter_query_log",
    "log_buckets",
    "query_log_files",
]
