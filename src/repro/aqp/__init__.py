"""Approximate query processing layer: estimation, errors, experiments."""

from .catalog import SampleCatalog
from .session import AQPResult, AQPSession, RouteDecision
from .errors import (
    GroupErrors,
    compare_results,
    result_cells,
    split_key_value_columns,
    summarize_many,
)
from .estimator import GroupEstimate, estimate_groups
from .planning import (
    chebyshev_error_bound,
    expected_l2_norm,
    plan_sample_rate,
    predict_group_cvs,
    required_budget,
)
from .runner import (
    ExperimentResult,
    MethodQueryResult,
    QueryTask,
    ground_truth,
    run_experiment,
)

__all__ = [
    "SampleCatalog",
    "AQPSession",
    "AQPResult",
    "RouteDecision",
    "GroupErrors",
    "compare_results",
    "result_cells",
    "split_key_value_columns",
    "summarize_many",
    "GroupEstimate",
    "estimate_groups",
    "predict_group_cvs",
    "chebyshev_error_bound",
    "expected_l2_norm",
    "required_budget",
    "plan_sample_rate",
    "QueryTask",
    "MethodQueryResult",
    "ExperimentResult",
    "ground_truth",
    "run_experiment",
]
