"""Experiment runner: method x query sweeps with repetitions.

Mirrors the paper's protocol: every experiment is repeated (default 5
identical independent repetitions, seeded rng streams) and the reported
numbers are averages of the per-repetition summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..core.sample import StratifiedSample, StratifiedSampler
from ..engine.sql.executor import execute_sql
from ..engine.table import Table
from .errors import GroupErrors, compare_results, summarize_many

__all__ = ["QueryTask", "MethodQueryResult", "ExperimentResult", "run_experiment", "ground_truth"]


@dataclass(frozen=True)
class QueryTask:
    """One SQL query evaluated against ground truth."""

    name: str
    sql: str
    table_name: str


def ground_truth(task: QueryTask, table: Table) -> Table:
    """Exact answer from the full data."""
    return execute_sql(task.sql, {task.table_name: table})


@dataclass
class MethodQueryResult:
    """Per-repetition error records of one (method, query) pair."""

    method: str
    query: str
    runs: list = field(default_factory=list)  # GroupErrors per repetition
    answer_seconds: list = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        out = summarize_many(self.runs)
        if self.answer_seconds:
            out["answer_seconds"] = float(np.mean(self.answer_seconds))
        return out

    def mean_error(self) -> float:
        return self.summary().get("mean_error", float("nan"))

    def max_error(self) -> float:
        return self.summary().get("max_error", float("nan"))


@dataclass
class ExperimentResult:
    """All (method, query) results of one experiment."""

    results: Dict[tuple, MethodQueryResult] = field(default_factory=dict)
    precompute_seconds: Dict[str, float] = field(default_factory=dict)

    def get(self, method: str, query: str) -> MethodQueryResult:
        return self.results[(method, query)]

    def methods(self) -> list:
        return list(dict.fromkeys(m for m, _ in self.results))

    def queries(self) -> list:
        return list(dict.fromkeys(q for _, q in self.results))

    def table(self, metric: str = "mean_error") -> str:
        """Plain-text table, queries as columns (paper Table 4 layout)."""
        queries = self.queries()
        lines = []
        header = ["method".ljust(12)] + [q.rjust(12) for q in queries]
        lines.append(" ".join(header))
        for method in self.methods():
            cells = [method.ljust(12)]
            for query in queries:
                result = self.results.get((method, query))
                value = (
                    result.summary().get(metric, float("nan"))
                    if result
                    else float("nan")
                )
                cells.append(f"{value * 100:11.2f}%")
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def to_dict(self, metric: str = "mean_error") -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for (method, query), result in self.results.items():
            out.setdefault(method, {})[query] = result.summary().get(
                metric, float("nan")
            )
        return out


def run_experiment(
    table: Table,
    tasks: Sequence[QueryTask],
    samplers: Mapping[str, StratifiedSampler],
    rate: float,
    repetitions: int = 5,
    seed: int = 0,
    truths: Optional[Mapping[str, Table]] = None,
    missing_error: float = 1.0,
) -> ExperimentResult:
    """Evaluate every sampler on every query at one sampling rate.

    A sampler builds one sample per repetition (seeded independently);
    every query is answered from that same sample — this is what makes
    the reuse experiments (paper Table 5) meaningful.
    """
    if truths is None:
        truths = {task.name: ground_truth(task, table) for task in tasks}
    experiment = ExperimentResult()
    for method, sampler in samplers.items():
        precompute = 0.0
        for rep in range(repetitions):
            rng = np.random.default_rng(seed + 1000 * rep + _stable_hash(method))
            start = time.perf_counter()
            sample = sampler.sample_rate(table, rate, seed=rng)
            precompute += time.perf_counter() - start
            _answer_all(
                experiment, sample, tasks, truths, method, missing_error
            )
        experiment.precompute_seconds[method] = precompute / max(repetitions, 1)
    return experiment


def _answer_all(experiment, sample, tasks, truths, method, missing_error):
    for task in tasks:
        key = (method, task.name)
        if key not in experiment.results:
            experiment.results[key] = MethodQueryResult(
                method=method, query=task.name
            )
        record = experiment.results[key]
        start = time.perf_counter()
        estimate = sample.answer(task.sql, task.table_name)
        record.answer_seconds.append(time.perf_counter() - start)
        record.runs.append(
            compare_results(
                truths[task.name], estimate, missing_error=missing_error
            )
        )


def _stable_hash(text: str) -> int:
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value
