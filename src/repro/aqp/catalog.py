"""Materialized-sample catalog.

A warehouse keeps precomputed samples and routes incoming queries to
them (paper Section 6: one sample optimized for AQ3 answers AQ3.a-c,
AQ5 and AQ6 too). The catalog stores samples by name, persists them to a
directory, and picks a sample for a query by matching the query's
group-by attributes against each sample's stratification — any sample
whose stratification is a superset of the query's grouping can answer it
(coarsening of the finest stratification).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional

import numpy as np

from ..core.sample import Allocation, StratifiedSample
from ..core.spec import specs_from_sql
from ..engine.table import Table

__all__ = ["SampleCatalog"]


class SampleCatalog:
    """Named collection of materialized samples."""

    def __init__(self) -> None:
        self._samples: Dict[str, StratifiedSample] = {}

    def add(
        self, name: str, sample: StratifiedSample, replace: bool = False
    ) -> None:
        """Register a sample; ``replace=True`` makes re-registration
        idempotent (the warehouse swaps refreshed versions in place)."""
        if name in self._samples and not replace:
            raise ValueError(
                f"sample {name!r} already registered; "
                "pass replace=True to swap it"
            )
        self._samples[name] = sample

    def remove(self, name: str) -> None:
        if name not in self._samples:
            raise KeyError(f"no sample {name!r}")
        del self._samples[name]

    def get(self, name: str) -> StratifiedSample:
        if name not in self._samples:
            raise KeyError(
                f"no sample {name!r}; available: {', '.join(self._samples)}"
            )
        return self._samples[name]

    def names(self) -> list:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def route(self, sql: str) -> Optional[str]:
        """Pick a sample able to answer ``sql``.

        A sample qualifies when its stratification attributes contain
        every group-by attribute of the query. Among qualifying samples
        the one with the fewest extra attributes wins (tightest fit).
        """
        try:
            specs, _ = specs_from_sql(sql)
        except ValueError:
            specs = []
        needed = set()
        for spec in specs:
            needed.update(spec.group_by)
        best: Optional[str] = None
        best_extra = None
        for name, sample in self._samples.items():
            attrs = set(sample.allocation.by)
            if needed <= attrs:
                extra = len(attrs - needed)
                if best_extra is None or extra < best_extra:
                    best, best_extra = name, extra
        return best

    def answer(self, sql: str, table_name: str) -> Table:
        """Route and answer; raises if no sample qualifies."""
        name = self.route(sql)
        if name is None:
            raise LookupError(
                "no materialized sample covers this query's group-by "
                f"attributes; catalog has: {', '.join(self._samples) or '-'}"
            )
        return self.get(name).answer(sql, table_name)

    # ------------------------------------------------------------------
    # persistence (routed through the warehouse store)
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist every sample as a versioned warehouse store.

        A catalog save is a checkpoint, not a maintenance history, so
        only the newest version of each sample is kept on disk.
        """
        from ..warehouse.store import SampleStore  # lazy: avoids a cycle

        store = SampleStore(directory)
        for name, sample in self._samples.items():
            store.put(name, sample)
            store.prune(name, keep=1)
        for name in store.names():
            if name not in self._samples:
                store.delete(name)  # mirror the catalog exactly

    @classmethod
    def load(cls, directory) -> "SampleCatalog":
        """Load a catalog from a warehouse store directory.

        Directories written by pre-warehouse versions (a flat
        ``manifest.json``) are still readable.
        """
        directory = pathlib.Path(directory)
        if (directory / "manifest.json").exists():
            return cls._load_legacy(directory)
        from ..warehouse.store import SampleStore  # lazy: avoids a cycle

        store = SampleStore(directory)
        catalog = cls()
        for name in store.names():
            catalog.add(name, store.get(name).sample)
        return catalog

    @classmethod
    def _load_legacy(cls, directory: pathlib.Path) -> "SampleCatalog":
        manifest = json.loads((directory / "manifest.json").read_text())
        catalog = cls()
        for name, meta in manifest.items():
            table = Table.load(directory / f"{meta['stem']}.rows.npz")
            allocation = Allocation(
                by=tuple(meta["by"]),
                keys=[tuple(k) for k in meta["keys"]],
                populations=np.asarray(meta["populations"], dtype=np.int64),
                sizes=np.asarray(meta["sizes"], dtype=np.int64),
            )
            catalog.add(
                name,
                StratifiedSample(
                    table=table,
                    allocation=allocation,
                    method=meta["method"],
                    source_rows=meta["source_rows"],
                    budget=meta["budget"],
                ),
            )
        return catalog
