"""Materialized-sample catalog.

A warehouse keeps precomputed samples and routes incoming queries to
them (paper Section 6: one sample optimized for AQ3 answers AQ3.a-c,
AQ5 and AQ6 too). The catalog stores samples by name, persists them to a
directory, and picks a sample for a query by matching the query's
group-by attributes against each sample's stratification — any sample
whose stratification is a superset of the query's grouping can answer it
(coarsening of the finest stratification).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional

import numpy as np

from ..core.sample import Allocation, StratifiedSample
from ..core.spec import specs_from_sql
from ..engine.table import Table

__all__ = ["SampleCatalog"]


class SampleCatalog:
    """Named collection of materialized samples."""

    def __init__(self) -> None:
        self._samples: Dict[str, StratifiedSample] = {}

    def add(self, name: str, sample: StratifiedSample) -> None:
        if name in self._samples:
            raise ValueError(f"sample {name!r} already registered")
        self._samples[name] = sample

    def get(self, name: str) -> StratifiedSample:
        if name not in self._samples:
            raise KeyError(
                f"no sample {name!r}; available: {', '.join(self._samples)}"
            )
        return self._samples[name]

    def names(self) -> list:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def route(self, sql: str) -> Optional[str]:
        """Pick a sample able to answer ``sql``.

        A sample qualifies when its stratification attributes contain
        every group-by attribute of the query. Among qualifying samples
        the one with the fewest extra attributes wins (tightest fit).
        """
        try:
            specs, _ = specs_from_sql(sql)
        except ValueError:
            specs = []
        needed = set()
        for spec in specs:
            needed.update(spec.group_by)
        best: Optional[str] = None
        best_extra = None
        for name, sample in self._samples.items():
            attrs = set(sample.allocation.by)
            if needed <= attrs:
                extra = len(attrs - needed)
                if best_extra is None or extra < best_extra:
                    best, best_extra = name, extra
        return best

    def answer(self, sql: str, table_name: str) -> Table:
        """Route and answer; raises if no sample qualifies."""
        name = self.route(sql)
        if name is None:
            raise LookupError(
                "no materialized sample covers this query's group-by "
                f"attributes; catalog has: {', '.join(self._samples) or '-'}"
            )
        return self.get(name).answer(sql, table_name)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {}
        for name, sample in self._samples.items():
            stem = f"sample_{len(manifest)}"
            sample.table.save(directory / f"{stem}.rows.npz")
            manifest[name] = {
                "stem": stem,
                "method": sample.method,
                "by": list(sample.allocation.by),
                "keys": [list(k) for k in sample.allocation.keys],
                "populations": [int(x) for x in sample.allocation.populations],
                "sizes": [int(x) for x in sample.allocation.sizes],
                "source_rows": sample.source_rows,
                "budget": sample.budget,
            }
        (directory / "manifest.json").write_text(json.dumps(manifest))

    @classmethod
    def load(cls, directory) -> "SampleCatalog":
        directory = pathlib.Path(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        catalog = cls()
        for name, meta in manifest.items():
            table = Table.load(directory / f"{meta['stem']}.rows.npz")
            allocation = Allocation(
                by=tuple(meta["by"]),
                keys=[tuple(k) for k in meta["keys"]],
                populations=np.asarray(meta["populations"], dtype=np.int64),
                sizes=np.asarray(meta["sizes"], dtype=np.int64),
            )
            catalog.add(
                name,
                StratifiedSample(
                    table=table,
                    allocation=allocation,
                    method=meta["method"],
                    source_rows=meta["source_rows"],
                    budget=meta["budget"],
                ),
            )
        return catalog
