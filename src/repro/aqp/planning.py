"""A-priori accuracy planning.

The CV math that drives CVOPT's allocation also *predicts* accuracy
before any sample is drawn: for stratum/group ``i`` with ``s_i``
allocated rows,

    CV[y_i] = (sigma_i / mu_i) * sqrt((n_i - s_i) / (n_i * s_i))

and by Chebyshev (paper Section 1),
``Pr[relative error > eps] <= (CV / eps)^2``. This module exposes that
as a planning API:

* :func:`predict_group_cvs` — per-group estimate CVs for a given
  allocation;
* :func:`chebyshev_error_bound` — the relative-error level guaranteed
  with a given confidence;
* :func:`required_budget` — the smallest budget whose *optimal*
  allocation meets a target (l2 norm of CVs, or max CV), found by
  bisection — "how many rows do I need for ~5% error?";
* :func:`plan_sample_rate` — the same, as a fraction of the table.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.allocation import box_constrained_allocation
from ..core.sample import Allocation
from ..engine.statistics import StrataStatistics, collect_strata_statistics
from ..engine.table import Table

__all__ = [
    "predict_group_cvs",
    "chebyshev_error_bound",
    "expected_l2_norm",
    "required_budget",
    "plan_sample_rate",
]


def predict_group_cvs(
    populations: np.ndarray,
    data_cvs: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Estimate CV per group for a concrete allocation.

    Groups with no allocated rows get ``inf`` (they cannot be
    estimated); groups sampled exhaustively get exactly 0.
    """
    populations = np.asarray(populations, dtype=np.float64)
    data_cvs = np.asarray(data_cvs, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    out = np.full(len(populations), np.inf)
    drawn = sizes > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        fpc = (populations[drawn] - sizes[drawn]) / (
            populations[drawn] * sizes[drawn]
        )
    out[drawn] = data_cvs[drawn] * np.sqrt(np.maximum(fpc, 0.0))
    return out


def chebyshev_error_bound(cv: float, confidence: float = 0.95) -> float:
    """Relative-error level not exceeded with probability >= confidence.

    From ``Pr[r > eps] <= (CV/eps)^2``: ``eps = CV / sqrt(1 - conf)``.
    Chebyshev is distribution-free and therefore loose; for roughly
    normal estimators ``~2 * CV`` is the practical 95% figure.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    return float(cv) / float(np.sqrt(1.0 - confidence))


def expected_l2_norm(
    populations: np.ndarray,
    data_cvs: np.ndarray,
    sizes: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """The paper's objective value for a concrete allocation."""
    cvs = predict_group_cvs(populations, data_cvs, sizes)
    if weights is None:
        weights = np.ones(len(cvs))
    finite = np.isfinite(cvs)
    if not finite.all():
        return float("inf")
    return float(np.sqrt((np.asarray(weights) * cvs**2).sum()))


def _optimal_cvs_for_budget(populations, data_cvs, budget):
    alphas = np.asarray(data_cvs, dtype=np.float64) ** 2
    lower = np.minimum(1.0, populations.astype(np.float64))
    sizes = box_constrained_allocation(
        alphas, budget, lower, populations.astype(np.float64)
    )
    return predict_group_cvs(populations, data_cvs, sizes)


def required_budget(
    table_or_stats,
    group_by: Sequence[str] | None = None,
    column: str | None = None,
    target: float = 0.05,
    criterion: str = "max_cv",
    mean_floor: float = 1e-9,
) -> int:
    """Smallest budget whose optimal allocation meets ``target``.

    ``criterion`` is ``"max_cv"`` (every group's estimate CV at most
    ``target``) or ``"l2"`` (the l2 norm of the CVs at most ``target``).
    Accepts either a Table (plus ``group_by``/``column``) or a
    pre-collected :class:`StrataStatistics`.

    Returns the table size if even a census cannot meet the target
    (impossible only for l2 with pathological inputs — a census gives
    CV 0 everywhere).
    """
    if isinstance(table_or_stats, Table):
        if group_by is None or column is None:
            raise ValueError("group_by and column are required with a Table")
        stats = collect_strata_statistics(
            table_or_stats, tuple(group_by), [column]
        )
    elif isinstance(table_or_stats, StrataStatistics):
        if column is None:
            raise ValueError("column is required")
        stats = table_or_stats
    else:
        raise TypeError("expected a Table or StrataStatistics")
    if criterion not in ("max_cv", "l2"):
        raise ValueError("criterion must be 'max_cv' or 'l2'")
    if target <= 0:
        raise ValueError("target must be positive")

    populations = stats.sizes
    cs = stats.stats_for(column)
    data_cvs = np.nan_to_num(cs.cv(mean_floor=mean_floor))
    total = int(populations.sum())

    def meets(budget: int) -> bool:
        cvs = _optimal_cvs_for_budget(populations, data_cvs, budget)
        if criterion == "max_cv":
            return bool(cvs.max() <= target)
        finite = np.isfinite(cvs)
        if not finite.all():
            return False
        return bool(np.sqrt((cvs**2).sum()) <= target)

    lo, hi = min(len(populations), total), total
    if lo >= hi or meets(lo):
        return lo
    if not meets(hi):
        return total
    while lo < hi - 1:
        mid = (lo + hi) // 2
        if meets(mid):
            hi = mid
        else:
            lo = mid
    return hi


def plan_sample_rate(
    table: Table,
    group_by: Sequence[str],
    column: str,
    target: float = 0.05,
    criterion: str = "max_cv",
) -> float:
    """``required_budget`` expressed as a sampling rate of the table."""
    budget = required_budget(
        table, group_by=group_by, column=column,
        target=target, criterion=criterion,
    )
    if table.num_rows == 0:
        return 0.0
    return budget / table.num_rows


def predicted_cvs_for_allocation(
    allocation: Allocation, stats: StrataStatistics, column: str
) -> np.ndarray:
    """Predicted per-stratum estimate CVs for a materialized allocation."""
    cs = stats.stats_for(column)
    data_cvs = np.nan_to_num(cs.cv())
    return predict_group_cvs(
        allocation.populations, data_cvs, allocation.sizes
    )
